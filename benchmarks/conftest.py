"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper's evaluation has a bench module in
this directory.  Heavy computations (the Table 1/2/5 sweep) are cached
at session scope so each experiment is run once and re-read by every
table that reports a different column of it.

Each bench writes its reproduction of the paper's table to
``benchmarks/results/<name>.txt`` *and* prints it (visible with
``pytest -s`` or in the saved files).  Record counts are scaled-down
synthetic analogues (see DESIGN.md §2); set ``REPRO_BENCH_SCALE`` to
grow or shrink them, e.g. ``REPRO_BENCH_SCALE=4`` for a longer run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

import pytest

from repro.datasets import make_dataset
from repro.discovery import Jxplain, JxplainNaive, KReduce, LReduce
from repro.metrics.recall import SweepResult, run_sweep

#: Baseline record counts per dataset (multiplied by REPRO_BENCH_SCALE).
BENCH_SIZES = {
    "nyt": 800,
    "synapse": 1000,
    "twitter": 600,
    "github": 1000,
    "pharma": 800,
    "wikidata": 150,
    "yelp-merged": 1200,
    "yelp-business": 800,
    "yelp-checkin": 800,
    "yelp-photos": 800,
    "yelp-review": 800,
    "yelp-tip": 800,
    "yelp-user": 800,
}

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Training fractions and trials used by the sweep benches.  The paper
#: uses (0.01, 0.10, 0.50, 0.90) x 5 trials on corpora of 10^5-10^6
#: records; at bench scale a 1% sample of ~800 records is only a few
#: records, so the grid starts at 5%.
BENCH_FRACTIONS = (0.05, 0.10, 0.50, 0.90)
BENCH_TRIALS = 2

RESULTS_DIR = Path(__file__).parent / "results"


def bench_size(name: str) -> int:
    return max(30, int(BENCH_SIZES[name] * SCALE))


def bench_records(name: str, seed: int = 0) -> list:
    """The bench-scale record sample for one dataset."""
    return make_dataset(name).generate(bench_size(name), seed=seed)


def sweep_discoverers() -> list:
    """The four algorithms of Tables 1, 2 and 5, in paper order."""
    return [KReduce(), Jxplain(), JxplainNaive(), LReduce()]


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


class SweepCache:
    """Session-scoped memo of the Table 1/2/5 sweep per dataset."""

    def __init__(self) -> None:
        self._sweeps: Dict[str, SweepResult] = {}

    def sweep(self, dataset: str) -> SweepResult:
        if dataset not in self._sweeps:
            records = bench_records(dataset)
            self._sweeps[dataset] = run_sweep(
                dataset,
                records,
                sweep_discoverers(),
                fractions=BENCH_FRACTIONS,
                trials=BENCH_TRIALS,
                seed=13,
            )
        return self._sweeps[dataset]


@pytest.fixture(scope="session")
def sweep_cache() -> SweepCache:
    return SweepCache()


#: Datasets included in the sweep benches.  Wikidata is excluded from
#: the full four-algorithm sweep (as in the paper, where L-reduce and
#: Bimax-Naive exhaust resources on it) and benched separately.
SWEEP_DATASETS = [
    "nyt",
    "synapse",
    "twitter",
    "github",
    "pharma",
    "yelp-merged",
    "yelp-business",
    "yelp-checkin",
    "yelp-photos",
    "yelp-review",
    "yelp-tip",
    "yelp-user",
]
