"""Tables 1 & 2, Wikidata rows (K-reduce vs Bimax-Merge only).

The paper's Wikidata rows carry † for L-reduce and Bimax-Naive (out of
resources); only K-reduce and Bimax-Merge complete.  This bench runs
exactly those two — Bimax-Merge with the depth-bounded similarity that
reproduces the paper's behaviour (see bench_wikidata_resources) — and
asserts the paper's shape: JXPLAIN's recall dominates (collections
generalize to unseen properties/languages/sites) with lower entropy.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_TRIALS, emit
from repro.datasets import make_dataset
from repro.discovery import Jxplain, JxplainConfig, KReduce
from repro.metrics.recall import format_sweep_table, run_sweep

FRACTIONS = (0.10, 0.50, 0.90)


def test_wikidata_sweep(benchmark):
    records = make_dataset("wikidata").generate(250, seed=121)
    bounded = JxplainConfig(similarity_depth=3)

    def run():
        return run_sweep(
            "wikidata",
            records,
            [KReduce(), Jxplain(bounded)],
            fractions=FRACTIONS,
            trials=BENCH_TRIALS,
            seed=17,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table1_recall_wikidata",
        format_sweep_table(sweep, "recall"),
    )
    emit(
        "table2_entropy_wikidata",
        format_sweep_table(sweep, "entropy", precision=1),
    )

    for fraction in FRACTIONS:
        jx_recall = sweep.cell("bimax-merge", fraction, "recall").mean
        kr_recall = sweep.cell("k-reduce", fraction, "recall").mean
        assert jx_recall >= kr_recall, fraction
    largest = max(FRACTIONS)
    jx_entropy = sweep.cell("bimax-merge", largest, "entropy").mean
    kr_entropy = sweep.cell("k-reduce", largest, "entropy").mean
    # Paper Table 2: Bimax-Merge 5037 vs K-reduce 6890 at 90%.
    assert jx_entropy < kr_entropy
