"""Table 3 — Entity detection accuracy (min symmetric difference).

On the two datasets with (inferrable) ground truth — Yelp-Merged (six
tables by construction) and GitHub (the ``type`` attribute) — compare
Bimax-Merge, K-reduce (one fat cluster), and k-means given the
ground-truth k.  Expected shape (§7.3):

* Bimax-Merge describes nearly every entity exactly (≈ 0);
* K-reduce over-describes every entity while describing none well;
* k-means nails a handful of entities and butchers the rest, despite
  being handed k.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_size, emit
from repro.datasets import make_dataset
from repro.discovery import JxplainConfig
from repro.discovery.jxplain import cluster_key_sets
from repro.metrics.entity_accuracy import (
    evaluate_entity_detection,
    format_entity_table,
    record_features,
)


@pytest.mark.parametrize("dataset", ["yelp-merged", "github"])
def test_table3_entity_detection(benchmark, dataset):
    labeled = make_dataset(dataset).generate_labeled(
        bench_size(dataset), seed=21
    )
    results = benchmark.pedantic(
        evaluate_entity_detection, args=(labeled,), rounds=1, iterations=1
    )
    emit(
        f"table3_entities_{dataset}",
        format_entity_table(results, dataset=dataset),
    )
    by_method = {accuracy.method: accuracy for accuracy in results}
    bimax = by_method["bimax-merge"]
    kreduce = by_method["k-reduce"]
    kmeans = by_method["k-means"]

    # Bimax-Merge: near-perfect per-entity reconstruction.
    perfect = sum(1 for v in bimax.per_entity.values() if v == 0)
    assert perfect >= 0.6 * len(bimax.per_entity)
    # K-reduce's single cluster misses every entity by a wide margin.
    assert kreduce.total > 5 * max(bimax.total, 1)
    # Bimax beats k-means even with k-means given the true k.
    assert bimax.total <= kmeans.total


def test_table3_bimax_clustering_speed(benchmark):
    """Micro-benchmark: the Bimax-Merge clustering step itself."""
    labeled = make_dataset("yelp-merged").generate_labeled(
        bench_size("yelp-merged"), seed=22
    )
    config = JxplainConfig()
    features, _ = record_features(labeled, config)

    def cluster():
        return cluster_key_sets(features, config)

    clusters = benchmark(cluster)
    assert 4 <= len(clusters) <= 10
