"""Figure 5 — Feature-vector memory: encodings and pruning.

Measures the estimated memory of the entity-discovery preprocessing
under four regimes: sparse / dense, each with and without the
nested-collection path-pruning optimisation of §6.4.  Expected shape:

* on Yelp, pruning shrinks the feature store substantially (the
  checkin pivot multiplies distinct vectors otherwise);
* on Pharma, *nearly all* structural complexity lives inside the
  collection, so pruning reduces the requirement to almost nothing.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_records, emit
from repro.discovery import JxplainConfig
from repro.discovery.stat_tree import (
    StatTree,
    collection_paths,
    decide_collections,
)
from repro.entities.features import feature_memory_profile
from repro.jsontypes.types import type_of


def _profile(dataset: str):
    records = bench_records(dataset, seed=61)
    types = [type_of(r) for r in records]
    tree = StatTree.from_types(types)
    decisions = decide_collections(tree, JxplainConfig())
    return feature_memory_profile(types, collection_paths(decisions))


@pytest.mark.parametrize("dataset", ["yelp-merged", "yelp-checkin", "pharma"])
def test_fig5_memory(benchmark, dataset):
    profile = benchmark.pedantic(
        _profile, args=(dataset,), rounds=1, iterations=1
    )
    lines = [f"[{dataset}] feature-vector memory (bytes)"]
    for label, size in profile.rows():
        lines.append(f"  {label:16s} {size:>12,d}")
    lines.append(
        f"  distinct vectors: {profile.distinct_vectors} -> "
        f"{profile.pruned_distinct_vectors} after pruning"
    )
    emit(f"fig5_memory_{dataset}", "\n".join(lines))

    assert profile.pruned_sparse_bytes <= profile.sparse_bytes
    assert profile.pruned_distinct_vectors <= profile.distinct_vectors


def test_fig5_pharma_pruning_dominates(benchmark):
    """Pharma's complexity is almost entirely the drug collection:
    pruning removes nearly everything."""
    profile = _profile("pharma")
    assert profile.pruned_sparse_bytes < 0.1 * profile.sparse_bytes
    assert profile.pruned_distinct_vectors <= 3


def test_fig5_yelp_pruning_substantial(benchmark):
    """On the Yelp pivot table, pruning collapses the distinct-vector
    blow-up caused by the nested checkin collection."""
    profile = _profile("yelp-checkin")
    assert profile.pruned_distinct_vectors < 0.1 * profile.distinct_vectors
