"""Self-hosting lint bench: cold vs warm cache, per-rule cost, backends.

The analyzer lints a scratch copy of the repo's own ``src/`` tree (the
self-hosting corpus — the largest honest input available offline) and
reports:

* **cold vs warm**: a fresh-cache run against a rerun served entirely
  from the content-hash cache, plus the incremental case — one file
  edited, asserting only its transitive dependents re-resolve their
  interprocedural summaries (the PR-10 acceptance);
* **per-rule timings**: each of R1–R10 run alone, cold, so regressions
  in a single rule are attributable;
* **executor backends**: the per-file fan-out under serial, threads
  and processes, asserting byte-identical findings.

Results go machine-readably to ``BENCH_PR10.json`` at the repo root
and as text under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import rule_ids, run_lint
from repro.engine.instrument import counters

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PR10.json"

#: Executor backends for the per-file fan-out comparison.
BACKENDS = ("serial", "threads:4", "processes:4")

#: The file edited for the incremental measurement: a mid-graph module
#: with real callers, so the dependent set is neither 1 nor everything.
EDIT_TARGET = "src/repro/jsontypes/types.py"


def _timed_lint(root: Path, **kwargs):
    start = time.perf_counter()
    result = run_lint([str(root / "src")], root=str(root), **kwargs)
    return time.perf_counter() - start, result


def _fingerprints(result):
    return [(f.file, f.line, f.rule_id, f.message) for f in result.findings]


def test_lint_bench():
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cache": {},
        "per_rule": {},
        "executors": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as tmp:
        scratch = Path(tmp)
        shutil.copytree(REPO_ROOT / "src", scratch / "src")
        cache = str(scratch / "lint-cache.json")

        cold_s, cold = _timed_lint(scratch, cache_path=cache)
        warm_s, warm = _timed_lint(scratch, cache_path=cache)
        assert _fingerprints(warm) == _fingerprints(cold)
        assert warm.analyzed_count == 0, "warm run must be all cache hits"
        report["files"] = len(cold.files)
        report["cache"]["cold"] = {
            "seconds": round(cold_s, 3),
            "files_analyzed": cold.analyzed_count,
        }
        report["cache"]["warm"] = {
            "seconds": round(warm_s, 3),
            "cache_hits": warm.cache_hit_count,
            "speedup": round(cold_s / warm_s, 1),
        }

        # Incremental: append a harmless statement to one mid-graph
        # file; only it and its transitive callers re-resolve.
        target = scratch / EDIT_TARGET
        target.write_text(target.read_text() + "\n_BENCH_TOUCH = 1\n")
        counters.reset()
        edit_s, edited = _timed_lint(scratch, cache_path=cache)
        recomputed = int(counters.get("lint.summary_files_recomputed"))
        assert edited.analyzed_count == 1, "only the edited file re-parses"
        assert 1 <= recomputed < len(cold.files), (
            f"expected a proper dependent subset, got {recomputed} "
            f"of {len(cold.files)} files"
        )
        assert _fingerprints(edited) == _fingerprints(cold)
        report["cache"]["incremental_one_edit"] = {
            "seconds": round(edit_s, 3),
            "edited_file": EDIT_TARGET,
            "summary_files_recomputed": recomputed,
            "summary_functions_recomputed": int(
                counters.get("lint.summary_functions_recomputed")
            ),
        }

        for rule in rule_ids():
            rule_s, _ = _timed_lint(scratch, cache_path=None, rules=[rule])
            report["per_rule"][rule] = round(rule_s, 3)

        for backend in BACKENDS:
            backend_s, backend_result = _timed_lint(
                scratch, cache_path=None, executor=backend
            )
            assert _fingerprints(backend_result) == _fingerprints(cold), (
                f"{backend}: findings diverged from the serial run"
            )
            report["executors"][backend] = {"seconds": round(backend_s, 3)}

    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"lint self-host: {report['files']} files",
        f"  cold {report['cache']['cold']['seconds']}s"
        f"  warm {report['cache']['warm']['seconds']}s"
        f"  (x{report['cache']['warm']['speedup']})"
        f"  one-edit {report['cache']['incremental_one_edit']['seconds']}s"
        f" ({report['cache']['incremental_one_edit']['summary_files_recomputed']}"
        f" summaries recomputed)",
        "  per rule: "
        + "  ".join(
            f"{rule}={seconds}s"
            for rule, seconds in report["per_rule"].items()
        ),
        "  backends: "
        + "  ".join(
            f"{backend}={data['seconds']}s"
            for backend, data in report["executors"].items()
        ),
    ]
    emit("bench_lint", "\n".join(lines))
