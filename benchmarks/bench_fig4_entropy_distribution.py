"""Figure 4 — Distribution of key-space entropy across complex paths.

For every complex-kinded path with self-similar nested elements,
compute its key-space (or length) entropy and print the histogram the
paper plots.  Expected shape (§5.3): strongly bimodal — nearly all
candidate collections sit near zero entropy (tuples) or well above the
threshold (collections), so the designation is minimally sensitive to
the exact threshold.  A companion check sweeps the threshold and
verifies the decisions barely move.
"""

from __future__ import annotations

from typing import List

from benchmarks.conftest import bench_records, emit
from repro.discovery import JxplainConfig
from repro.discovery.stat_tree import (
    StatTree,
    decide_collections,
    entropy_profile,
)
from repro.jsontypes.paths import render_path
from repro.jsontypes.types import type_of

#: The figure uses Yelp; we combine the Yelp tables like the paper's
#: dataset-wide profile and add pharma (a high-entropy mode) and
#: twitter (fixed-length tuple arrays populate the near-zero mode).
PROFILE_DATASETS = ("yelp-merged", "yelp-checkin", "pharma", "twitter")

_BUCKETS = (
    (0.0, 0.1),
    (0.1, 0.5),
    (0.5, 1.0),
    (1.0, 2.0),
    (2.0, 4.0),
    (4.0, float("inf")),
)


def _profile_points() -> List:
    points = []
    for dataset in PROFILE_DATASETS:
        records = bench_records(dataset, seed=51)
        tree = StatTree.from_types([type_of(r) for r in records])
        points.extend(entropy_profile(tree))
    return points


def test_fig4_entropy_distribution(benchmark):
    points = benchmark.pedantic(_profile_points, rounds=1, iterations=1)
    lines = ["key-space entropy histogram (self-similar complex paths)"]
    for low, high in _BUCKETS:
        count = sum(1 for p in points if low <= p.entropy < high)
        label = f"[{low:.1f}, {'inf' if high == float('inf') else f'{high:.1f}'})"
        lines.append(f"{label:>12}  {'#' * min(count, 60)} {count}")
    lines.append("")
    lines.append("highest-entropy paths:")
    for point in sorted(points, key=lambda p: -p.entropy)[:5]:
        lines.append(
            f"  {render_path(point.path):40s} {point.kind.value:6s} "
            f"E_K={point.entropy:7.3f} n={point.instances}"
        )
    emit("fig4_entropy_distribution", "\n".join(lines))

    # Bimodality: most mass at the extremes, little near the threshold.
    near_threshold = sum(1 for p in points if 0.5 <= p.entropy < 2.0)
    extremes = sum(
        1 for p in points if p.entropy < 0.5 or p.entropy >= 2.0
    )
    assert extremes > 2 * near_threshold


def test_fig4_threshold_insensitivity(benchmark):
    """The designation flips for almost no path as the threshold moves
    across [0.75, 1.25] — the paper's justification for "arbitrarily"
    picking 1: the entropy distribution is bimodal, so few paths sit
    near the threshold."""
    total_paths = 0
    total_flips = 0
    for dataset in ("yelp-merged", "twitter", "github", "pharma"):
        records = bench_records(dataset, seed=52)
        tree = StatTree.from_types([type_of(r) for r in records])
        low = decide_collections(
            tree, JxplainConfig(entropy_threshold=0.75)
        )
        mid = decide_collections(
            tree, JxplainConfig(entropy_threshold=1.0)
        )
        high = decide_collections(
            tree, JxplainConfig(entropy_threshold=1.25)
        )
        # Compare only paths that exist under all three thresholds: a
        # genuine flip at a path re-labels every descendant key (keyed
        # children become ``*`` children), which would otherwise count
        # one borderline decision dozens of times.
        shared = set(low) & set(mid) & set(high)
        total_paths += len(shared)
        total_flips += sum(
            1
            for key in shared
            if not (low[key] == mid[key] == high[key])
        )
    assert total_paths > 20
    assert total_flips <= max(3, 0.1 * total_paths)
