"""Table 2 — Schema entropy: log2 number of types admitted.

Same sweep as Table 1, reporting the precision proxy.  Expected shape
(§7.2):

* L-reduce is the lower bound everywhere (it admits only what it saw);
* Bimax variants sit at or below K-reduce wherever entities or
  collections exist (GitHub, Twitter, NYT, Yelp-Merged, Synapse);
* on a collection of primitives (Pharma) the decision-counting
  convention makes all extractors score identically — exactly as the
  paper's Pharma rows are identical across columns;
* on single-entity, collection-free tables (Yelp-Photos) JXPLAIN's
  output is identical to K-reduce's;
* entropy is stable across sample sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_DATASETS, emit
from repro.metrics.recall import format_sweep_table
from repro.schema.entropy import schema_entropy


@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_table2_entropy(benchmark, sweep_cache, dataset):
    sweep = sweep_cache.sweep(dataset)
    emit(
        f"table2_entropy_{dataset}",
        format_sweep_table(sweep, "entropy", precision=2),
    )
    # Benchmark the entropy computation itself on the largest schema.
    from repro.discovery import Jxplain
    from benchmarks.conftest import bench_records

    schema = Jxplain().discover(bench_records(dataset))
    benchmark.pedantic(schema_entropy, args=(schema,), rounds=3, iterations=1)

    largest = max(sweep.fractions())
    lreduce = sweep.cell("l-reduce", largest, "entropy").mean
    kreduce = sweep.cell("k-reduce", largest, "entropy").mean
    bimax = sweep.cell("bimax-merge", largest, "entropy").mean
    assert lreduce <= kreduce + 1e-6
    assert lreduce <= bimax + 1e-6


def test_table2_precision_shape(benchmark, sweep_cache):
    """Claim (i): JXPLAIN is significantly more precise than K-reduce
    on multi-entity and collection-heavy datasets."""
    largest = max(BENCH := sweep_cache.sweep("github").fractions())
    for dataset in ("github", "twitter", "nyt", "yelp-merged", "synapse"):
        sweep = sweep_cache.sweep(dataset)
        bimax = sweep.cell("bimax-merge", largest, "entropy").mean
        kreduce = sweep.cell("k-reduce", largest, "entropy").mean
        assert bimax < kreduce, dataset


def test_table2_identical_on_clean_single_entity(benchmark, sweep_cache):
    """On Yelp-Photos (one clean entity) JXPLAIN output equals
    K-reduce's, as the paper notes."""
    sweep = sweep_cache.sweep("yelp-photos")
    for fraction in sweep.fractions():
        bimax = sweep.cell("bimax-merge", fraction, "entropy").mean
        kreduce = sweep.cell("k-reduce", fraction, "entropy").mean
        assert bimax == pytest.approx(kreduce, abs=1e-9)


def test_table2_stability_across_samples(benchmark, sweep_cache):
    """Entropy is stable across sample sizes (the paper's closing
    observation for Table 2)."""
    sweep = sweep_cache.sweep("yelp-merged")
    fractions = sweep.fractions()
    at_10 = sweep.cell("bimax-merge", 0.10, "entropy").mean
    at_90 = sweep.cell("bimax-merge", 0.90, "entropy").mean
    assert at_10 == pytest.approx(at_90, rel=0.25)
