"""Ablation benches for the design choices DESIGN.md calls out.

Not a table from the paper; these quantify the individual decisions:

* feature mode (KEYS vs PATHS) — PATHS is required to split entities
  that share an envelope (GitHub);
* entity strategy ladder (SINGLE / KMEANS / BIMAX_NAIVE / BIMAX_MERGE /
  EXACT) — precision/recall trade-off along §6's continuum;
* fold-based versus in-memory pass ③ — identical schemas, comparable
  cost;
* literal versus decision-counting collection entropy — the literal
  count compounds nested collections astronomically.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_records, emit
from repro.discovery import (
    EntityStrategy,
    Jxplain,
    JxplainConfig,
    JxplainPipeline,
)
from repro.discovery.config import FeatureMode
from repro.io.sampling import train_test_split
from repro.jsontypes.types import type_of
from repro.schema.entropy import schema_entropy
from repro.validation.validator import recall_against


def test_ablation_feature_mode(benchmark):
    """KEYS features cannot split GitHub's envelope-sharing entities;
    PATHS features can — measured as schema entropy."""
    records = bench_records("github", seed=81)
    types = [type_of(r) for r in records]

    def run(mode):
        config = JxplainConfig(feature_mode=mode)
        return schema_entropy(Jxplain(config).merge_types(types))

    paths_entropy = benchmark.pedantic(
        run, args=(FeatureMode.PATHS,), rounds=1, iterations=1
    )
    keys_entropy = run(FeatureMode.KEYS)
    emit(
        "ablation_feature_mode",
        "github schema entropy by feature mode\n"
        f"  PATHS (paper §6.4): {paths_entropy:10.2f}\n"
        f"  KEYS  (simplified): {keys_entropy:10.2f}",
    )
    assert paths_entropy < keys_entropy


def test_ablation_entity_strategy_ladder(benchmark):
    """Recall/precision along the §6 continuum on Yelp-Merged."""
    records = bench_records("yelp-merged", seed=82)
    split = train_test_split(records, seed=82)
    test_types = [type_of(r) for r in split.test]
    ladder = (
        EntityStrategy.SINGLE,
        EntityStrategy.KMEANS,
        EntityStrategy.BIMAX_NAIVE,
        EntityStrategy.BIMAX_MERGE,
        EntityStrategy.EXACT,
    )

    def run():
        rows = {}
        for strategy in ladder:
            config = JxplainConfig(entity_strategy=strategy)
            schema = Jxplain(config).discover(split.train)
            rows[strategy.value] = (
                recall_against(schema, test_types),
                schema_entropy(schema),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["yelp-merged: strategy ladder (recall, entropy)"]
    for name, (recall, entropy) in rows.items():
        lines.append(f"  {name:12s} recall={recall:.4f} H={entropy:9.2f}")
    emit("ablation_entity_strategy", "\n".join(lines))

    # The two extremes of §6.1.
    assert rows["single"][0] >= rows["exact"][0]       # recall
    assert rows["exact"][1] <= rows["single"][1]       # precision
    # Bimax-Merge sits between: near-SINGLE recall, near-EXACT entropy.
    assert rows["bimax-merge"][0] >= rows["exact"][0]
    assert rows["bimax-merge"][1] <= rows["single"][1]


def test_ablation_fold_vs_in_memory(benchmark):
    """Pass ③ as an associative fold produces the identical schema."""
    records = bench_records("github", seed=83)

    def run_fold():
        return JxplainPipeline(use_fold=True).discover(records)

    fold_schema = benchmark.pedantic(run_fold, rounds=1, iterations=1)
    merger_schema = JxplainPipeline(use_fold=False).discover(records)
    assert fold_schema == merger_schema


def test_ablation_literal_collection_entropy(benchmark):
    """The literal counting convention compounds nested collections;
    decision counting (the paper's) does not."""
    records = bench_records("synapse", seed=84)
    schema = Jxplain().discover(records)
    decision = benchmark.pedantic(
        schema_entropy, args=(schema,), rounds=3, iterations=1
    )
    literal = schema_entropy(schema, literal_collections=True)
    emit(
        "ablation_entropy_convention",
        "synapse schema entropy by counting convention\n"
        f"  decision counting (paper): {decision:12.1f}\n"
        f"  literal counting:          {literal:12.1f}",
    )
    assert literal > decision


def test_ablation_threshold_extremes(benchmark):
    """Degenerate thresholds break the heuristic in the expected
    directions: 0 marks everything varying a collection, +inf nothing."""
    records = bench_records("pharma", seed=85)
    types = [type_of(r) for r in records]
    never = JxplainConfig(entropy_threshold=float("inf"))
    schema_never = Jxplain(never).merge_types(types)
    assert not schema_never.admits_value(
        {"npi": 1, "provider_variables": {}, "cms_prescription_counts": {"NEW": 1}}
    )
    default = Jxplain().merge_types(types)
    # With the default threshold the drug map is a collection and new
    # drugs are admitted (full record shape preserved).
    sample_record = bench_records("pharma", seed=86)[0]
    sample_record["cms_prescription_counts"] = {"BRAND NEW DRUG": 12}
    assert default.admits_value(sample_record)
