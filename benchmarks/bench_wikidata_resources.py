"""Wikidata's resource-exhaustion pattern (the † cells of Tables 1-4).

In the paper, L-reduce and Bimax-Naive *run out of resources* on
Wikidata — deeply nested, integer-keyed linked data gives nearly every
record a unique type — while Bimax-Merge completes with ~31 entities.

This reproduction surfaces a subtlety the paper leaves implicit: under
the **literal** §5.2 similarity rule, Wikidata's ``claims`` can never
be a collection (``datavalue.value`` is a string or an object depending
on the property datatype, and one dissimilar pair at any depth vetoes
the whole path), so even Bimax-Merge degenerates toward type
enumeration.  With the similarity check **depth-bounded**
(``similarity_depth=3``), kind-mixing buried deep inside statement
values is tolerated, ``claims``/``labels``/``sitelinks`` become
collections, and the schema collapses to one compact entity with
perfect held-out recall — the behaviour the paper reports.  Both
configurations are measured here.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_records, emit
from repro.datasets import make_dataset
from repro.discovery import Jxplain, JxplainConfig, LReduce
from repro.engine.instrument import deep_size_bytes
from repro.schema.nodes import top_level_entity_count

SAMPLE_SIZES = (50, 100, 200)

#: The depth bound that reproduces the paper's Wikidata behaviour.
WIKIDATA_SIMILARITY_DEPTH = 3


def test_wikidata_resource_divergence(benchmark):
    records = make_dataset("wikidata").generate(
        max(SAMPLE_SIZES), seed=111
    )
    bounded = JxplainConfig(similarity_depth=WIKIDATA_SIMILARITY_DEPTH)

    def measure():
        rows = []
        for size in SAMPLE_SIZES:
            sample = records[:size]
            rows.append(
                (
                    size,
                    deep_size_bytes(LReduce().discover(sample)),
                    deep_size_bytes(Jxplain().discover(sample)),
                    deep_size_bytes(Jxplain(bounded).discover(sample)),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["wikidata schema representation size (bytes)"]
    lines.append(
        f"{'records':>8s} {'l-reduce':>12s} {'jx-literal':>12s} "
        f"{'jx-depth3':>12s}"
    )
    for size, lreduce_bytes, literal_bytes, bounded_bytes in rows:
        lines.append(
            f"{size:>8d} {lreduce_bytes:>12,d} {literal_bytes:>12,d} "
            f"{bounded_bytes:>12,d}"
        )
    emit("wikidata_resources", "\n".join(lines))

    first, last = rows[0], rows[-1]
    # Type enumeration grows with the data (the paper's † pattern) ...
    assert last[1] > 2.0 * first[1]
    # ... the literal similarity rule drags JXPLAIN into the same
    # regime ...
    assert last[2] > 0.5 * last[1]
    # ... while the depth-bounded rule keeps the schema compact.
    assert last[3] < 0.2 * last[1]


def test_wikidata_bounded_similarity_generalizes(benchmark):
    """The depth-bounded configuration reproduces the paper's Wikidata
    recall: one compact entity that accepts unseen dumps."""
    train = make_dataset("wikidata").generate(150, seed=112)
    test = make_dataset("wikidata").generate(80, seed=113)
    bounded = JxplainConfig(similarity_depth=WIKIDATA_SIMILARITY_DEPTH)

    schema = benchmark.pedantic(
        Jxplain(bounded).discover, args=(train,), rounds=1, iterations=1
    )
    assert top_level_entity_count(schema) <= 3
    accepted = sum(1 for record in test if schema.admits_value(record))
    assert accepted / len(test) >= 0.95

    literal = Jxplain().discover(train)
    literal_accept = sum(
        1 for record in test if literal.admits_value(record)
    )
    assert accepted > literal_accept
