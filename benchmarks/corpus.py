"""Seeded, streamed benchmark corpora.

Every scaling benchmark needs the same thing: a large, realistic
``.jsonl`` file that is (a) deterministic for a given seed, so runs
are comparable across machines and commits, and (b) generated without
ever materializing the whole corpus in driver memory, so a 1M-record
file costs no more RAM than one chunk.  ``bench_ingest`` and
``bench_sharding`` both build their inputs here instead of duplicating
generation code.

The generators in :mod:`repro.datasets` produce a full list per call,
so we stream in fixed-size chunks: chunk ``i`` is
``make_dataset(name).generate(chunk, seed=chunk_seed(seed, i))``.
Each chunk is an independent, seeded sample of the same record
distribution; the concatenation is fully determined by
``(dataset, records, seed, chunk_records)``.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.datasets import dataset_names, make_dataset
from repro.io.jsonlines import write_jsonlines
from repro.jsontypes.types import JsonValue

#: Records generated (and held in memory) per chunk.  50k github-style
#: records is a few tens of MB — small enough for CI, large enough
#: that per-chunk overhead is noise.
DEFAULT_CHUNK_RECORDS = 50_000

#: Multiplier decorrelating per-chunk seeds; any odd constant works,
#: it only has to be fixed forever so corpora stay reproducible.
_CHUNK_SEED_STRIDE = 1_000_003


def chunk_seed(seed: int, index: int) -> int:
    """The seed for chunk ``index`` of a corpus seeded with ``seed``."""
    return seed * _CHUNK_SEED_STRIDE + index


def iter_corpus(
    dataset: str = "github",
    records: int = DEFAULT_CHUNK_RECORDS,
    *,
    seed: int = 0,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[JsonValue]:
    """Yield ``records`` seeded records, materializing one chunk at a
    time."""
    if records < 0:
        raise ValueError(f"records must be >= 0, got {records}")
    if chunk_records < 1:
        raise ValueError(
            f"chunk_records must be >= 1, got {chunk_records}"
        )
    if dataset not in dataset_names():
        known = ", ".join(dataset_names())
        raise ValueError(f"unknown dataset {dataset!r}; known: {known}")
    generator = make_dataset(dataset)
    produced = 0
    index = 0
    while produced < records:
        take = min(chunk_records, records - produced)
        for record in generator.generate(take, seed=chunk_seed(seed, index)):
            yield record
        produced += take
        index += 1


def write_corpus(
    path,
    dataset: str = "github",
    records: int = DEFAULT_CHUNK_RECORDS,
    *,
    seed: int = 0,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> dict:
    """Stream a seeded corpus to ``path``; returns its vital stats.

    The writer consumes :func:`iter_corpus` lazily, so peak memory is
    one chunk regardless of ``records``.
    """
    count = write_jsonlines(
        path,
        iter_corpus(
            dataset, records, seed=seed, chunk_records=chunk_records
        ),
    )
    return {
        "path": str(path),
        "dataset": dataset,
        "records": count,
        "bytes": os.stat(path).st_size,
        "seed": seed,
        "chunk_records": chunk_records,
    }
