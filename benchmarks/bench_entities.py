"""Entity-discovery bench: frozenset vs bitset vs bitset+parallel.

Times the full Section 6 entity stage — Bimax-Naive, GreedyMerge to
fixpoint, partitioner construction, and record→entity assignment — on
wide synthetic key-set corpora shaped like the two workloads where
entity discovery dominates:

* **github-style** — a shared event envelope plus per-entity payload
  key pools (entities share many keys, so GreedyMerge works hard);
* **pharma-style** — wide, sparse records: large per-entity cores with
  many independent optional columns (Bimax ordering works hard).

Each corpus spans several tuple-typed paths; every path's bag clusters
independently, which is exactly the fan-out the pipeline's pass ②
exploits.  Three configurations run over the same corpora:

* ``frozenset``       — the seed representation, serial;
* ``bitset``          — interned integer masks, serial;
* ``bitset+parallel`` — masks, paths fanned out on a process pool.

Clusters must be byte-identical across all three (same maximals, same
members, same emission order, same record assignments); the run fails
otherwise.  Results go to ``BENCH_PR2.json`` at the repo root and
``benchmarks/results/entities.txt``.  At full scale (>= 2000 records
per path, >= 64 distinct keys) the bitset representation must be
>= 3x faster than frozensets on at least one corpus.

Scale with ``REPRO_BENCH_SCALE`` (CI smoke uses a small fraction; the
speedup gate only applies at full scale).
"""

from __future__ import annotations

import json
import os
import random
import time
import zlib
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from repro.engine import resolve_executor
from repro.engine.instrument import counters, reset_perf_counters
from repro.entities import (
    EntityPartitioner,
    bimax_merge,
    entity_representation,
    set_entity_representation,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Records per path at full scale; the gate needs >= 2000.
RECORDS_PER_PATH = 2400

#: Independent tuple-typed paths per corpus (the parallel fan-out).
PATHS_PER_CORPUS = 6

#: (corpus name, distinct keys, entities, optional pool, optional p)
CORPORA = [
    ("github-style", 96, 10, 16, 0.45),
    ("pharma-style", 160, 8, 22, 0.35),
]

PARALLEL_SPEC = "processes:4"

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PR2.json"


def synthesize_path_bag(
    *, keys: int, entities: int, optional_pool: int, optional_p: float,
    records: int, seed: int,
) -> list:
    """One path's bag of key-sets: per-entity cores plus independent
    optional fields, over a shared key vocabulary."""
    rng = random.Random(seed)
    vocabulary = [f"k{i:03d}" for i in range(keys)]
    shared = rng.sample(vocabulary, 6)  # the corpus's envelope keys
    shapes = []
    for _ in range(entities):
        core = shared + rng.sample(vocabulary, rng.randint(8, 14))
        optional = rng.sample(vocabulary, optional_pool)
        shapes.append((core, optional))
    bag = []
    for _ in range(records):
        core, optional = rng.choice(shapes)
        key_set = set(core)
        for key in optional:
            if rng.random() < optional_p:
                key_set.add(key)
        bag.append(frozenset(key_set))
    return bag


def synthesize_corpus(name: str, records_per_path: int) -> list:
    """``[(path label, bag of key-sets), ...]`` for one corpus."""
    (keys, entities, optional_pool, optional_p) = next(
        spec[1:] for spec in CORPORA if spec[0] == name
    )
    return [
        (
            f"{name}/path{i}",
            synthesize_path_bag(
                keys=keys,
                entities=entities,
                optional_pool=optional_pool,
                optional_p=optional_p,
                records=records_per_path,
                seed=100 * i + zlib.crc32(name.encode()) % 97,
            ),
        )
        for i in range(PATHS_PER_CORPUS)
    ]


def discover_path(task):
    """The entity stage for one path: cluster, build the partitioner,
    assign every record.  Module-level and picklable for the process
    backend; worker processes start on the default (bitset)
    representation, which is the mode that ships them work."""
    label, key_sets = task
    clusters = bimax_merge(key_sets)
    partitioner = EntityPartitioner(clusters)
    labels = partitioner.partition(range(len(key_sets)), key_sets)
    return (
        label,
        [
            (cluster.maximal, cluster.members, cluster.synthesized)
            for cluster in clusters
        ],
        labels,
    )


def _run_serial(corpus):
    return [discover_path(task) for task in corpus]


def _run_parallel(corpus, executor):
    return executor.map_list(discover_path, corpus)


def _bench_corpus(name: str, records_per_path: int) -> dict:
    corpus = synthesize_corpus(name, records_per_path)
    distinct_keys = len({key for _, bag in corpus for ks in bag for key in ks})
    distinct_sets = max(len(set(bag)) for _, bag in corpus)

    results = {}
    timings = {}
    counter_snapshots = {}

    previous = entity_representation()
    try:
        for mode in ("frozenset", "bitset"):
            set_entity_representation(mode)
            reset_perf_counters()
            start = time.perf_counter()
            results[mode] = _run_serial(corpus)
            timings[mode] = time.perf_counter() - start
            counter_snapshots[mode] = {
                key: value
                for key, value in sorted(counters.snapshot().items())
                if key.startswith("entities.")
            }
        set_entity_representation("bitset")
        executor = resolve_executor(PARALLEL_SPEC)
        try:
            start = time.perf_counter()
            results["bitset+parallel"] = _run_parallel(corpus, executor)
            timings["bitset+parallel"] = time.perf_counter() - start
        finally:
            executor.close()
    finally:
        set_entity_representation(previous)

    reference = results["frozenset"]
    for mode, outcome in results.items():
        assert outcome == reference, (
            f"{name}: clusters diverged between frozenset and {mode}"
        )

    bitset_speedup = timings["frozenset"] / timings["bitset"]
    parallel_speedup = timings["frozenset"] / timings["bitset+parallel"]
    return {
        "paths": len(corpus),
        "records_per_path": records_per_path,
        "distinct_keys": distinct_keys,
        "max_distinct_key_sets_per_path": distinct_sets,
        "clusters_per_path": [len(clusters) for _, clusters, _ in reference],
        "timings_s": {m: round(t, 4) for m, t in timings.items()},
        "bitset_speedup": round(bitset_speedup, 2),
        "parallel_speedup": round(parallel_speedup, 2),
        "clusters_identical": True,
        "counters": counter_snapshots,
    }


def test_entities_bench():
    records_per_path = max(60, int(RECORDS_PER_PATH * SCALE))
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": SCALE,
        "cpu_count": os.cpu_count(),
        "parallel_executor": PARALLEL_SPEC,
        "corpora": {},
    }
    for name, *_ in CORPORA:
        report["corpora"][name] = _bench_corpus(name, records_per_path)

    best = max(d["bitset_speedup"] for d in report["corpora"].values())
    full_scale = records_per_path >= 2000 and all(
        d["distinct_keys"] >= 64 for d in report["corpora"].values()
    )
    report["acceptance"] = {
        "bitset_best_speedup": best,
        "gate_applies": full_scale,
        "met": best >= 3.0,
        "clusters_identical": all(
            d["clusters_identical"] for d in report["corpora"].values()
        ),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        "corpus         mode              stage_s  speedup",
    ]
    for name, data in report["corpora"].items():
        for mode, seconds in data["timings_s"].items():
            speedup = data["timings_s"]["frozenset"] / seconds
            lines.append(
                f"{name:<14} {mode:<17} {seconds:>7.3f}  {speedup:>6.2f}x"
            )
        lines.append(
            f"{name:<14} distinct_keys={data['distinct_keys']} "
            f"max_distinct_sets={data['max_distinct_key_sets_per_path']} "
            f"records/path={data['records_per_path']}"
        )
    lines.append(f"best bitset speedup: {best}x (gate {'on' if full_scale else 'off'})")
    emit("entities", "\n".join(lines))

    if full_scale:
        assert best >= 3.0, f"bitset speedup {best} < 3.0"
