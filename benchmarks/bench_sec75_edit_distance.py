"""§7.5 — Greedy upper bound on schema edits to reach 100% recall.

Trains each extractor on a small sample and counts the edits the
greedy repair needs to make the schema accept every remaining record.
Expected shape (§7.5):

* Bimax-Merge needs (far) fewer edits on collection-like datasets
  (Pharma, Synapse): new keys inside a detected collection are free,
  while K-reduce pays one edit per new key;
* on datasets with rare shared attributes across entities, the gap
  narrows or reverses — Bimax-Merge must see the attribute once per
  entity, K-reduce once overall.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import bench_records, emit
from repro.discovery import Jxplain, KReduce
from repro.io.sampling import uniform_sample
from repro.jsontypes.types import type_of
from repro.validation.edits import edits_to_full_recall

DATASETS = ("pharma", "synapse", "github", "yelp-merged", "nyt")

#: Training fraction for the edit experiment (the paper uses 1% of
#: much larger corpora; 5% of the bench-scale data is comparable).
TRAIN_FRACTION = 0.05


def _edits(dataset: str) -> Dict[str, int]:
    records = bench_records(dataset, seed=71)
    sample = uniform_sample(records, TRAIN_FRACTION, seed=5)
    rest_types = [type_of(r) for r in records if r not in sample]
    counts = {}
    for discoverer in (KReduce(), Jxplain()):
        schema = discoverer.discover(sample)
        report = edits_to_full_recall(schema, rest_types)
        counts[discoverer.name] = report.edit_count
        # The repaired schema must actually reach 100% recall.
        for tau in rest_types:
            assert report.schema.admits_type(tau)
    return counts


def test_sec75_edit_counts(benchmark):
    results = benchmark.pedantic(
        lambda: {dataset: _edits(dataset) for dataset in DATASETS},
        rounds=1,
        iterations=1,
    )
    lines = ["edits to 100% recall (greedy upper bound, 5% training)"]
    lines.append(f"{'dataset':14s} {'k-reduce':>10s} {'bimax-merge':>12s}")
    for dataset, counts in results.items():
        lines.append(
            f"{dataset:14s} {counts['k-reduce']:>10d} "
            f"{counts['bimax-merge']:>12d}"
        )
    emit("sec75_edit_distance", "\n".join(lines))

    # Collection-heavy datasets: Bimax-Merge needs far fewer edits.
    for dataset in ("pharma", "synapse"):
        assert (
            results[dataset]["bimax-merge"]
            < results[dataset]["k-reduce"]
        ), dataset


@pytest.mark.parametrize("dataset", ["pharma"])
def test_sec75_repair_throughput(benchmark, dataset):
    """Micro-benchmark: repairing one rejected record."""
    records = bench_records(dataset, seed=72)
    schema = KReduce().discover(records[:20])
    target = type_of(records[-1])

    from repro.validation.edits import repair_schema

    benchmark(lambda: repair_schema(schema, target))
