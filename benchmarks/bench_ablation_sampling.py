"""Ablation — §4.2's sampling mitigation for the heuristic passes.

The paper: "entropy-based collection detection is surprisingly robust
(even a 1% sample is often almost perfect)"; the exception is rare
fields/keys, mopped up by iterative refinement.  This bench sweeps the
heuristic sample fraction and reports the recall/runtime trade-off,
plus the refinement loop's convergence behaviour.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_records, emit
from repro.discovery import Jxplain, JxplainPipeline
from repro.io.sampling import train_test_split
from repro.jsontypes.types import type_of
from repro.validation.refine import iterative_refinement
from repro.validation.validator import recall_against

FRACTIONS = (0.05, 0.25, 1.0)


def test_ablation_heuristic_sampling(benchmark):
    records = bench_records("synapse", seed=91)
    split = train_test_split(records, seed=91)
    test_types = [type_of(r) for r in split.test]

    def sweep():
        rows = {}
        for fraction in FRACTIONS:
            pipeline = JxplainPipeline(
                heuristic_sample=fraction if fraction < 1.0 else None,
                sample_seed=7,
            )
            start = time.perf_counter()
            schema = pipeline.discover(split.train)
            elapsed_ms = 1000.0 * (time.perf_counter() - start)
            rows[fraction] = (
                recall_against(schema, test_types),
                elapsed_ms,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["synapse: heuristic-pass sampling (recall, runtime ms)"]
    for fraction, (recall, elapsed_ms) in rows.items():
        lines.append(
            f"  sample={int(fraction * 100):3d}%  recall={recall:.4f}  "
            f"t={elapsed_ms:8.1f}ms"
        )
    emit("ablation_sampling", "\n".join(lines))

    full_recall = rows[1.0][0]
    # The paper's robustness claim: a heavily sampled heuristic pass
    # loses little recall.
    assert rows[0.25][0] >= full_recall - 0.1
    assert rows[0.05][0] >= full_recall - 0.25


def test_ablation_iterative_refinement(benchmark):
    """The sample→validate→augment loop converges with a sample far
    smaller than the data (§4.2)."""
    records = bench_records("yelp-business", seed=92)

    def run():
        return iterative_refinement(
            Jxplain(), records, initial_fraction=0.05, seed=3
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["yelp-business: iterative refinement rounds"]
    for round_ in result.rounds:
        lines.append(
            f"  round {round_.round_index}: sample={round_.sample_size:4d} "
            f"failures={round_.failures:4d} "
            f"recall_on_rest={round_.recall_on_rest:.4f}"
        )
    emit("ablation_refinement", "\n".join(lines))

    assert result.converged
    assert result.final_sample_size < 0.8 * len(records)
