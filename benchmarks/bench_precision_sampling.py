"""Precision via schema sampling — the direct view of claim (i).

Table 2 proxies precision with the admitted-type count.  The value
sampler inverts validation, so precision can also be measured head-on:
draw records *from* each discovered schema and ask a ground-truth
oracle how many are structurally valid.  A schema that admits
arbitrary mixtures of entity fields (K-reduce's) emits many records no
real entity could produce; an entity-partitioned schema (JXPLAIN's)
emits far fewer.

The oracle is the L-reduction of a large reference corpus *by feature
shape*: a sampled record is "real" when its feature vector matches an
entity observed in the reference stream.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_records, emit
from repro.discovery import Jxplain, JxplainConfig, KReduce
from repro.discovery.jxplain import JxplainMerger
from repro.jsontypes.types import ObjectType, type_of
from repro.schema.sample import estimate_false_positive_rate

DATASETS = ("yelp-merged", "github", "figure1")
SAMPLES = 300


def _feature_oracle(reference_records):
    """Accepts values whose pruned feature vector appeared in the
    reference stream."""
    merger = JxplainMerger(JxplainConfig())
    reference_types = [
        tau
        for tau in (type_of(r) for r in reference_records)
        if isinstance(tau, ObjectType)
    ]
    known = set(merger.object_features(reference_types, path=()))

    def accepts(value) -> bool:
        tau = type_of(value)
        if not isinstance(tau, ObjectType):
            return False
        features = merger.object_features([tau], path=())[0]
        return features in known

    return accepts


@pytest.mark.parametrize("dataset", DATASETS)
def test_precision_by_sampling(benchmark, dataset):
    if dataset == "figure1":
        from repro.datasets import make_dataset

        train = make_dataset(dataset).generate(400, seed=101)
        reference = make_dataset(dataset).generate(4000, seed=102)
    else:
        train = bench_records(dataset, seed=101)
        reference = bench_records(dataset, seed=102) + bench_records(
            dataset, seed=103
        )
    oracle = _feature_oracle(reference)

    def run():
        rates = {}
        for discoverer in (KReduce(), Jxplain()):
            schema = discoverer.discover(train)
            rates[discoverer.name] = estimate_false_positive_rate(
                schema, oracle, samples=SAMPLES, seed=7
            )
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"precision_sampling_{dataset}",
        f"[{dataset}] false-positive rate of sampled records "
        f"({SAMPLES} draws)\n"
        f"  k-reduce:    {rates['k-reduce']:.3f}\n"
        f"  bimax-merge: {rates['bimax-merge']:.3f}",
    )
    # Claim (i), head-on: JXPLAIN's schema fabricates fewer impossible
    # records than K-reduce's.
    assert rates["bimax-merge"] <= rates["k-reduce"] + 0.02
