"""Incremental-append bench: resume a checkpoint vs. re-run from scratch.

The monitoring scenario the states exist for: a corpus was already
discovered (and checkpointed); 10% more records arrive.  The naive
path re-runs the full three-pass pipeline over the concatenated input;
the incremental path loads the checkpoint, absorbs only the new
records, and re-synthesizes from the accumulated statistics.  Both
must produce byte-identical schemas (asserted); the incremental path
must win on wall clock.

Results go machine-readably to ``BENCH_PR4.json`` at the repo root and
as text under ``benchmarks/results/``.  Scale with
``REPRO_BENCH_SCALE``; the speedup gate applies only at full scale
(>= 2000 base records), smoke runs just assert schema identity.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from repro.datasets import make_dataset
from repro.discovery import JxplainPipeline, load_state
from repro.io.jsonlines import write_jsonlines
from repro.schema import to_json_schema

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Base corpus sizes (scaled); 10% more records arrive afterwards.
APPEND_SIZES = {"github": 4000, "yelp-merged": 4000}
APPEND_FRACTION = 0.10

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PR4.json"


def _schema_bytes(schema) -> bytes:
    return json.dumps(to_json_schema(schema), sort_keys=True).encode()


def _bench_dataset(name: str, base_size: int, workdir: Path) -> dict:
    append_size = max(5, int(base_size * APPEND_FRACTION))
    records = make_dataset(name).generate(base_size + append_size, seed=17)
    base_path = workdir / f"{name}-base.jsonl"
    append_path = workdir / f"{name}-append.jsonl"
    full_path = workdir / f"{name}-full.jsonl"
    write_jsonlines(base_path, records[:base_size])
    write_jsonlines(append_path, records[base_size:])
    write_jsonlines(full_path, records)
    checkpoint = workdir / f"{name}.ckpt"

    # The original run, checkpointed (amortized; timed for context).
    start = time.perf_counter()
    JxplainPipeline().run_file(base_path, checkpoint=checkpoint)
    base_run_s = time.perf_counter() - start

    # Naive: full re-run over base + append.
    start = time.perf_counter()
    full = JxplainPipeline().run_file(full_path)
    full_rerun_s = time.perf_counter() - start

    # Incremental: load the checkpoint, absorb only the append file,
    # re-synthesize.
    start = time.perf_counter()
    resumed = JxplainPipeline().run_file(
        checkpoint=checkpoint, resume=True, append=[append_path]
    )
    resume_s = time.perf_counter() - start

    assert _schema_bytes(resumed.schema) == _schema_bytes(full.schema), (
        f"{name}: resumed schema diverged from the full re-run"
    )
    assert resumed.record_count == base_size + append_size

    return {
        "base_records": base_size,
        "append_records": append_size,
        "checkpoint_bytes": checkpoint.stat().st_size,
        "distinct_types": resumed.state.distinct_count,
        "base_run_s": round(base_run_s, 4),
        "full_rerun_s": round(full_rerun_s, 4),
        "resume_s": round(resume_s, 4),
        "speedup": round(full_rerun_s / resume_s, 2),
    }


def test_incremental_append():
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": SCALE,
        "append_fraction": APPEND_FRACTION,
        "datasets": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench-incremental-") as tmp:
        workdir = Path(tmp)
        for name, size in APPEND_SIZES.items():
            scaled = max(50, int(size * SCALE))
            report["datasets"][name] = _bench_dataset(name, scaled, workdir)

    best = max(d["speedup"] for d in report["datasets"].values())
    full_scale = min(
        d["base_records"] for d in report["datasets"].values()
    ) >= 2000
    report["acceptance"] = {
        "best_speedup": best,
        "gate_applies": full_scale,
        "met": best > 1.0,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        "dataset        base  append  ckpt_KiB  full_rerun_s  resume_s"
        "  speedup",
    ]
    for name, data in report["datasets"].items():
        lines.append(
            f"{name:<14} {data['base_records']:>4}  {data['append_records']:>6}"
            f"  {data['checkpoint_bytes'] / 1024:>8.1f}"
            f"  {data['full_rerun_s']:>12.3f}  {data['resume_s']:>8.3f}"
            f"  {data['speedup']:>6.2f}x"
        )
    lines.append(f"best resume speedup over full re-run: {best}x")
    emit("incremental", "\n".join(lines))

    if full_scale:
        assert best > 1.0, (
            f"resume ({best}x) did not beat the full re-run at full scale"
        )
