"""Table 1 — Recall: fraction of the held-out 10% test set accepted.

Reproduces the paper's protocol per dataset: reserve a uniform 10%
test set, train each algorithm on uniform samples of the remainder,
and report mean/std/max recall over trials.  Expected shape (§7.1):

* Bimax-Merge ≥ Bimax-Naive ≫ L-reduce everywhere;
* Bimax-Merge beats K-reduce on Pharma and Synapse, where nested
  collections let it generalize to unseen keys;
* recall rises toward 1.0 with the training fraction for everyone.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_DATASETS, emit
from repro.metrics.recall import format_sweep_table


@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_table1_recall(benchmark, sweep_cache, dataset):
    sweep = benchmark.pedantic(
        sweep_cache.sweep, args=(dataset,), rounds=1, iterations=1
    )
    emit(
        f"table1_recall_{dataset}",
        format_sweep_table(sweep, "recall", include_max=True),
    )

    largest = max(sweep.fractions())
    bimax = sweep.cell("bimax-merge", largest, "recall").mean
    naive = sweep.cell("bimax-naive", largest, "recall").mean
    lreduce = sweep.cell("l-reduce", largest, "recall").mean
    # The paper's headline recall ordering at the largest sample.
    assert bimax >= naive - 0.02
    # L-reduce only matches Bimax-Merge when its exact types already
    # cover the whole test set (single-type tables).
    assert bimax >= lreduce
    assert bimax >= 0.9


def test_table1_collection_generalization(benchmark, sweep_cache):
    """The §7.1 outliers: JXPLAIN beats K-reduce on Pharma and Synapse
    at every sample size, because it generalizes collections."""
    for dataset in ("pharma", "synapse"):
        sweep = sweep_cache.sweep(dataset)
        for fraction in sweep.fractions():
            bimax = sweep.cell("bimax-merge", fraction, "recall").mean
            kreduce = sweep.cell("k-reduce", fraction, "recall").mean
            assert bimax >= kreduce, (dataset, fraction)
