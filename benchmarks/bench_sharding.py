"""Sharded multi-process discovery bench: scaling to 1M+ records.

A seeded github-style corpus (1M records at full scale; see
``benchmarks/corpus.py``) is discovered four ways: by an *optimized
serial* baseline — the fused sequential scan, i.e. the fastest
single-process path this repo has — and by the shard coordinator over
warm-started process pools of 2, 4, and 8 workers.  Before any timing,
sharded state bytes are asserted identical to the serial run for all
three algorithms — the speedup is only meaningful because the answer
is provably the same.

Results go machine-readably to ``BENCH_PR7.json`` at the repo root and
as text under ``benchmarks/results/``.  Scale with
``REPRO_BENCH_SCALE``.

Gates are **hardware-conditional** and recorded in the report: process
parallelism cannot beat serial on a single core, so each worker
count's speedup gate applies only when ``os.cpu_count()`` provides at
least that many cores (the CI smoke job runs on multi-core runners
and enforces >= 1.5x at 4 workers; the full-scale target is >= 3x at
4 workers on a >= 1M-record corpus).  On smaller machines the bench
still runs — correctness is asserted unconditionally — and reports
the gates as not applicable rather than fabricating a speedup.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from benchmarks.corpus import write_corpus
from repro.discovery.state import state_for_algorithm
from repro.engine import ProcessExecutor
from repro.engine.sharding import discover_sharded
from repro.io.fastpath import read_jsonlines_fused

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Full-scale corpus size — the acceptance criterion's 1M records.
CORPUS_RECORDS = 1_000_000
CORPUS_SEED = 17

#: Worker counts swept by the scaling section.
WORKER_COUNTS = (2, 4, 8)

ALGORITHMS = ("l-reduce", "k-reduce", "jxplain")

#: Speedup gates at 4 workers, enforced only when the host has the
#: cores to make them physically possible.
SMOKE_SPEEDUP = 1.5
FULL_SCALE_SPEEDUP = 3.0
FULL_SCALE_RECORDS = 1_000_000
GATE_WORKERS = 4

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PR7.json"


def _serial_scan(path, algorithm: str):
    """The optimized serial baseline: fused scan -> state."""
    start = time.perf_counter()
    state = state_for_algorithm(algorithm, None)
    for tau in read_jsonlines_fused(path):
        state.absorb_type(tau)
    return state, time.perf_counter() - start


def _hardware() -> dict:
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def test_sharded_scaling():
    cores = os.cpu_count() or 1
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": SCALE,
        "hardware": _hardware(),
        "corpus": {},
        "byte_identity": {},
        "scaling": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench-sharding-") as tmp:
        path = Path(tmp) / "corpus.jsonl"
        records = max(2_000, int(CORPUS_RECORDS * SCALE))
        report["corpus"] = write_corpus(
            path, "github", records, seed=CORPUS_SEED
        )

        # -- correctness first: sharded bytes == serial bytes, all
        # three algorithms, on a process pool.
        serial_states = {}
        serial_times = {}
        for algorithm in ALGORITHMS:
            state, elapsed = _serial_scan(path, algorithm)
            serial_states[algorithm] = state.to_bytes()
            serial_times[algorithm] = elapsed
        executor = ProcessExecutor(2)
        try:
            for algorithm in ALGORITHMS:
                sharded = discover_sharded(
                    path, algorithm, executor=executor, shards=4
                )
                identical = (
                    sharded.state.to_bytes() == serial_states[algorithm]
                )
                report["byte_identity"][algorithm] = identical
                assert identical, (
                    f"{algorithm}: sharded state bytes diverged from "
                    "the serial scan"
                )
        finally:
            executor.close()

        # -- scaling sweep (jxplain, the paper's algorithm).  A second
        # serial baseline — the sharded code path on one in-driver
        # shard (fused read + counted-bag fold, no pool) — separates
        # the bag-fold's algorithmic gain from actual parallelism.
        serial_s = serial_times["jxplain"]
        report["serial_s"] = round(serial_s, 4)
        start = time.perf_counter()
        bagfold = discover_sharded(
            path, "jxplain", executor="serial", shards=1
        )
        bagfold_s = time.perf_counter() - start
        assert bagfold.state.to_bytes() == serial_states["jxplain"]
        report["serial_bagfold_s"] = round(bagfold_s, 4)
        for workers in WORKER_COUNTS:
            executor = ProcessExecutor(workers)
            try:
                # Warm the pool so fork/import cost is not billed to
                # the timed run (the coordinator's intended usage).
                discover_sharded(
                    path, "jxplain", executor=executor, shards=workers * 2
                )
                start = time.perf_counter()
                result = discover_sharded(
                    path, "jxplain", executor=executor, shards=workers * 2
                )
                elapsed = time.perf_counter() - start
            finally:
                executor.close()
            assert result.state.to_bytes() == serial_states["jxplain"]
            report["scaling"][str(workers)] = {
                "workers": workers,
                "shards": workers * 2,
                "sharded_s": round(elapsed, 4),
                "speedup": round(serial_s / elapsed, 2),
                "records_per_s": round(records / elapsed),
                "partial_bytes": result.partial_bytes,
                "cores_available": cores >= workers,
            }

    gate_row = report["scaling"][str(GATE_WORKERS)]
    full_scale = records >= FULL_SCALE_RECORDS
    gate = FULL_SCALE_SPEEDUP if full_scale else SMOKE_SPEEDUP
    gate_applicable = cores >= GATE_WORKERS
    report["acceptance"] = {
        "byte_identity": all(report["byte_identity"].values()),
        "gate_workers": GATE_WORKERS,
        "gate": gate,
        "full_scale": full_scale,
        "gate_applicable": gate_applicable,
        "speedup_at_gate": gate_row["speedup"],
        "met": (not gate_applicable) or gate_row["speedup"] >= gate,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"corpus: {records:,} github records "
        f"({report['corpus']['bytes']:,} bytes), "
        f"host: {cores} core(s)",
        f"serial fused scan (jxplain): {serial_s:.3f}s; "
        f"serial bag-fold (1 shard, no pool): "
        f"{report['serial_bagfold_s']:.3f}s",
        "",
        "workers  shards  sharded_s  records/s   speedup  gate",
    ]
    for workers in WORKER_COUNTS:
        row = report["scaling"][str(workers)]
        note = "" if row["cores_available"] else "  (insufficient cores)"
        lines.append(
            f"{workers:>7}  {row['shards']:>6}  {row['sharded_s']:>9.3f}"
            f"  {row['records_per_s']:>9,}  {row['speedup']:>6.2f}x"
            f"{note}"
        )
    lines.append("")
    lines.append(
        "state bytes identical to serial for: "
        + ", ".join(a for a in ALGORITHMS if report["byte_identity"][a])
    )
    emit("sharding", "\n".join(lines))

    if gate_applicable:
        assert gate_row["speedup"] >= gate, (
            f"sharded discovery ({gate_row['speedup']}x at "
            f"{GATE_WORKERS} workers) under the {gate}x gate"
        )
