"""Enrichment bench: sketch overhead and tagged-union accuracy (PR 8).

Two questions, answered on seeded synthetic corpora:

* **What do the sketches cost?**  Enriched discovery must read values
  (the typed scan), so it forfeits the fused reader's structural-hash
  shape cache — the honest price of value-domain enrichment.  A
  github-style corpus (200k records at full scale) is discovered plain
  (fused scan, the fastest serial path) and enriched
  (``sketches,unions`` over the typed scan); the ratio is the
  overhead.  Before any timing, the clone-strip oracle is asserted:
  the enriched state's bytes, with the sidecar nulled, equal the plain
  run's bytes — and a sharded enriched run lands on the serial
  enriched bytes.
* **Does tagged-union extraction find real entities?**  The twelve
  labelled datasets (``PAPER_DATASETS`` minus wikidata) are scored via
  :func:`repro.metrics.union_accuracy.evaluate_tagged_union_detection`
  — the same helper the accuracy suite pins — reporting pair
  precision/recall next to the Bimax/GreedyMerge baselines.  The
  planted github discriminant (``type``) is asserted recovered.

Results go machine-readably to ``BENCH_PR8.json`` at the repo root and
as text under ``benchmarks/results/``.  Scale the overhead corpus with
``REPRO_BENCH_SCALE``; the accuracy table is fixed at the suite's
(n=600, seed=3) so the bench and the pinned fixture never diverge.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from benchmarks.corpus import write_corpus
from repro.datasets import PAPER_DATASETS
from repro.discovery.state import state_for_algorithm
from repro.engine import SerialExecutor
from repro.engine.sharding import discover_sharded
from repro.io.fastpath import read_jsonlines_fused, read_jsonlines_typed
from repro.metrics.union_accuracy import evaluate_tagged_union_detection

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Overhead corpus size at full scale.
CORPUS_RECORDS = 200_000
CORPUS_SEED = 23

ENRICH = "sketches,unions"
ACCURACY_DATASETS = tuple(
    name for name in PAPER_DATASETS if name != "wikidata"
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PR8.json"


def _hardware() -> dict:
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def test_enrichment_overhead_and_accuracy():
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": SCALE,
        "hardware": _hardware(),
        "corpus": {},
        "byte_identity": {},
        "overhead": {},
        "accuracy": [],
    }

    with tempfile.TemporaryDirectory(prefix="bench-enrich-") as tmp:
        path = Path(tmp) / "corpus.jsonl"
        records = max(2_000, int(CORPUS_RECORDS * SCALE))
        report["corpus"] = write_corpus(
            path, "github", records, seed=CORPUS_SEED
        )

        # -- plain baseline: the fused scan (shape-cached fast path).
        start = time.perf_counter()
        plain = state_for_algorithm("jxplain")
        for tau in read_jsonlines_fused(path):
            plain.absorb_type(tau)
        plain_s = time.perf_counter() - start

        # -- enriched: the typed scan (values must be materialized, so
        # no shape cache — this IS the sketch overhead).
        start = time.perf_counter()
        rich = state_for_algorithm("jxplain", enrich=ENRICH)
        for tau, value in read_jsonlines_typed(path):
            rich.absorb_typed(tau, value)
        rich_s = time.perf_counter() - start

        # -- correctness before timing is reported: stripping the
        # sidecar recovers the plain bytes exactly.
        clone = type(plain).from_bytes(rich.to_bytes())
        clone.enrichment = None
        identical = clone.to_bytes() == plain.to_bytes()
        report["byte_identity"]["strip_equals_plain"] = identical
        assert identical, "enriched state diverged structurally from plain"

        # -- and a sharded enriched run equals the serial enriched run.
        sharded = discover_sharded(
            path,
            "jxplain",
            executor=SerialExecutor(),
            shards=4,
            enrich=ENRICH,
        )
        sharded_identical = sharded.state.to_bytes() == rich.to_bytes()
        report["byte_identity"]["sharded_equals_serial"] = sharded_identical
        assert sharded_identical, "sharded enriched bytes diverged"

        report["overhead"] = {
            "records": records,
            "plain_fused_s": round(plain_s, 4),
            "enriched_typed_s": round(rich_s, 4),
            "ratio": round(rich_s / plain_s, 2),
            "plain_records_per_s": round(records / plain_s),
            "enriched_records_per_s": round(records / rich_s),
        }

    # -- accuracy table (fixed n/seed; matches the pinned fixture).
    for name in ACCURACY_DATASETS:
        report["accuracy"].append(evaluate_tagged_union_detection(name))

    by_name = {row["dataset"]: row for row in report["accuracy"]}
    github = by_name["github"]["discriminant"]
    assert github is not None and github["key"] == "type", (
        f"github planted discriminant not recovered: {github}"
    )
    synapse = by_name["synapse"]["discriminant"]
    assert synapse is not None and synapse["key"] == "type"

    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    overhead = report["overhead"]
    lines = [
        f"corpus: {overhead['records']:,} github records; "
        f"host: {report['hardware']['cpu_count']} core(s)",
        f"plain fused scan:    {overhead['plain_fused_s']:>8.3f}s  "
        f"({overhead['plain_records_per_s']:,} rec/s)",
        f"enriched typed scan: {overhead['enriched_typed_s']:>8.3f}s  "
        f"({overhead['enriched_records_per_s']:,} rec/s)",
        f"sketch overhead: {overhead['ratio']:.2f}x  "
        "(byte-identical structural schema, serial and sharded)",
        "",
        "dataset         discriminant  union P/R      bimax-merge P/R",
    ]
    for row in report["accuracy"]:
        disc = row["discriminant"]
        key = disc["key"] if disc else "-"
        union = row["scores"][0]
        merge = row["scores"][2]
        lines.append(
            f"{row['dataset']:<15} {key:<13} "
            f"{union['precision']:.2f}/{union['recall']:.2f}      "
            f"{merge['precision']:.2f}/{merge['recall']:.2f}"
        )
    emit("enrich", "\n".join(lines))
