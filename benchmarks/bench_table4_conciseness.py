"""Table 4 — Entity predictions with 90% training data.

Counts the root-level entities each strategy proposes: L-reduce (one
per distinct feature vector), Bimax-Naive (Algorithm 7), Bimax-Merge
(Algorithm 8).  Expected shape (§7.3 "Conciseness"):

* Bimax-Merge ≤ Bimax-Naive everywhere;
* a large reduction on Yelp-Merged and on Pharma-without-collection-
  detection (optional-field fragmentation);
* no reduction on GitHub (few optional fields);
* single-entity tables (Yelp-Photos/Review/Tip) report exactly 1.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import BENCH_TRIALS, bench_records, emit
from repro.io.sampling import uniform_sample
from repro.metrics.conciseness import (
    ConcisenessRow,
    count_entities,
    format_conciseness_table,
)

DATASETS = [
    "twitter",
    "nyt",
    "synapse",
    "github",
    "pharma",
    "yelp-merged",
    "yelp-business",
    "yelp-checkin",
    "yelp-photos",
    "yelp-review",
    "yelp-tip",
    "yelp-user",
]


def _row(dataset: str) -> ConcisenessRow:
    records = bench_records(dataset, seed=31)
    row = ConcisenessRow(dataset=dataset)
    for trial in range(BENCH_TRIALS):
        sample = uniform_sample(records, 0.9, seed=100 + trial)
        counts = count_entities(sample)
        row.l_reduce.append(counts["l-reduce"])
        row.bimax_naive.append(counts["bimax-naive"])
        row.bimax_merge.append(counts["bimax-merge"])
    return row


def test_table4_conciseness(benchmark):
    rows = benchmark.pedantic(
        lambda: [_row(dataset) for dataset in DATASETS],
        rounds=1,
        iterations=1,
    )
    emit("table4_conciseness", format_conciseness_table(rows))

    by_name = {row.dataset: row.summary() for row in rows}
    for name, summary in by_name.items():
        assert (
            summary["bimax_merge_mean"] <= summary["bimax_naive_mean"]
        ), name
        assert (
            summary["bimax_naive_mean"] <= summary["l_reduce_mean"]
        ), name

    # Pharma: nearly every record has a unique type (L-reduce
    # explodes); collection pruning collapses the Bimax view to one
    # entity — the paper's 141177 -> 1.0 row, at bench scale.
    assert by_name["pharma"]["bimax_merge_mean"] == 1.0
    assert by_name["pharma"]["l_reduce_mean"] > 100
    # GitHub entities have few optional fields: naive ≈ merge.
    github = by_name["github"]
    assert github["bimax_merge_mean"] >= github["bimax_naive_mean"] - 1.0
    # Clean single-entity tables report exactly one entity.
    for name in ("yelp-photos", "yelp-review", "yelp-tip"):
        assert by_name[name]["bimax_merge_mean"] == 1.0
    # Yelp-Merged recovers roughly its six ground-truth tables.
    assert 5.0 <= by_name["yelp-merged"]["bimax_merge_mean"] <= 9.0
