"""Fused vs. classic ingestion bench: bytes → interned types.

Two corpora (a small one where dispatch overheads dominate and a large
one where parsing does), each ingested twice into an identical
discovery state: the classic path (``read_jsonlines`` → ``absorb``,
i.e. bytes → str → value tree → type) and the fused path
(``absorb_jsonlines_fused``: bytes → interned type in one pass, with
the structural-hash shape cache in front).  State bytes are asserted
identical on every corpus — the speedup is only meaningful because the
answer is provably the same.

The small corpus is also pushed through the full three-pass pipeline
on every executor backend, fused vs. classic, asserting byte-identical
schemas — the end-to-end wiring check, and (with the process pool's
warm-started workers) the scenario behind the BENCH_PR1
processes-slower-than-serial regression.

Results go machine-readably to ``BENCH_PR6.json`` at the repo root and
as text under ``benchmarks/results/``.  Scale with
``REPRO_BENCH_SCALE``.  Gates: fused serial ingestion must beat
classic by >= 1.5x on the large corpus at any scale (the CI smoke
gate), and by >= 2x at full scale.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from benchmarks.corpus import write_corpus
from repro.discovery import JxplainPipeline
from repro.discovery.state import state_for_algorithm
from repro.io.fastpath import absorb_jsonlines_fused
from repro.io.jsonlines import read_jsonlines
from repro.jsontypes.tokenizer import ShapeCache, line_token_count
from repro.schema import to_json_schema

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Corpus sizes (scaled).  The large corpus is where the 2x acceptance
#: gate lives; the small one shows the fast path is not a regression
#: when there is little repetition to exploit.
INGEST_SIZES = {"github-4k": 4000, "github-200k": 200000}

#: Executor backends for the end-to-end pipeline comparison.
PIPELINE_BACKENDS = ("serial", "threads:4", "processes:4")

#: Gate thresholds on the large corpus, serial ingestion.
SMOKE_SPEEDUP = 1.5
FULL_SCALE_SPEEDUP = 2.0
FULL_SCALE_RECORDS = 200000

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PR6.json"


def _corpus_stats(path: Path) -> dict:
    total_bytes = path.stat().st_size
    tokens = 0
    with open(path, "rb") as handle:
        for line in handle:
            tokens += line_token_count(line.strip())
    return {"bytes": total_bytes, "tokens": tokens}


def _schema_bytes(schema) -> bytes:
    return json.dumps(to_json_schema(schema), sort_keys=True).encode()


def _bench_ingest(path: Path, records: int, stats: dict) -> dict:
    # Classic: parse values, fold them into a state (type_of inside).
    start = time.perf_counter()
    classic_state = state_for_algorithm("l-reduce", None)
    for value in read_jsonlines(path):
        classic_state.absorb(value)
    classic_s = time.perf_counter() - start

    # Fused: stream interned types straight into an identical state.
    cache = ShapeCache()
    start = time.perf_counter()
    fused_state = state_for_algorithm("l-reduce", None)
    absorb_jsonlines_fused(fused_state, path, shape_cache=cache)
    fused_s = time.perf_counter() - start

    assert fused_state.to_bytes() == classic_state.to_bytes(), (
        f"{path.name}: fused state bytes diverged from classic"
    )
    hit_rate = cache.hits / max(1, cache.hits + cache.misses)
    return {
        "records": records,
        "bytes": stats["bytes"],
        "tokens": stats["tokens"],
        "classic_s": round(classic_s, 4),
        "fused_s": round(fused_s, 4),
        "classic_records_per_s": round(records / classic_s),
        "fused_records_per_s": round(records / fused_s),
        "classic_tokens_per_s": round(stats["tokens"] / classic_s),
        "fused_tokens_per_s": round(stats["tokens"] / fused_s),
        "shape_hit_rate": round(hit_rate, 4),
        "shape_cache_size": len(cache),
        "speedup": round(classic_s / fused_s, 2),
    }


def _bench_pipeline(path: Path) -> dict:
    backends = {}
    for backend in PIPELINE_BACKENDS:
        start = time.perf_counter()
        classic = JxplainPipeline(executor=backend).run_file(path)
        classic_s = time.perf_counter() - start
        start = time.perf_counter()
        fused = JxplainPipeline(executor=backend, ingest="fused").run_file(
            path
        )
        fused_s = time.perf_counter() - start
        assert _schema_bytes(fused.schema) == _schema_bytes(classic.schema), (
            f"{backend}: fused pipeline schema diverged from classic"
        )
        backends[backend] = {
            "classic_s": round(classic_s, 4),
            "fused_s": round(fused_s, 4),
            "speedup": round(classic_s / fused_s, 2),
        }
    return backends


def test_fused_ingestion():
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": SCALE,
        "corpora": {},
        "pipeline": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as tmp:
        workdir = Path(tmp)
        small_path = None
        for name, size in INGEST_SIZES.items():
            scaled = max(200, int(size * SCALE))
            path = workdir / f"{name}.jsonl"
            write_corpus(path, "github", scaled, seed=11)
            if small_path is None:
                small_path = path
            report["corpora"][name] = _bench_ingest(
                path, scaled, _corpus_stats(path)
            )
        report["pipeline"] = _bench_pipeline(small_path)

    large = report["corpora"]["github-200k"]
    full_scale = large["records"] >= FULL_SCALE_RECORDS
    gate = FULL_SCALE_SPEEDUP if full_scale else SMOKE_SPEEDUP
    report["acceptance"] = {
        "large_corpus_speedup": large["speedup"],
        "shape_hit_rate": large["shape_hit_rate"],
        "gate": gate,
        "full_scale": full_scale,
        "met": large["speedup"] >= gate,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        "corpus        records   classic_rec/s   fused_rec/s"
        "   fused_tok/s  hit_rate  speedup",
    ]
    for name, data in report["corpora"].items():
        lines.append(
            f"{name:<12} {data['records']:>8}"
            f"  {data['classic_records_per_s']:>14,}"
            f"  {data['fused_records_per_s']:>12,}"
            f"  {data['fused_tokens_per_s']:>12,}"
            f"  {data['shape_hit_rate']:>8.2%}"
            f"  {data['speedup']:>6.2f}x"
        )
    lines.append("")
    lines.append("pipeline (small corpus)   classic_s   fused_s  speedup")
    for backend, data in report["pipeline"].items():
        lines.append(
            f"{backend:<24} {data['classic_s']:>10.3f}"
            f"  {data['fused_s']:>8.3f}  {data['speedup']:>6.2f}x"
        )
    emit("ingest", "\n".join(lines))

    assert large["speedup"] >= gate, (
        f"fused ingestion ({large['speedup']}x) under the "
        f"{gate}x gate on the large corpus"
    )
