"""Table 5 — Runtime by discovery algorithm and training-set size.

Reports the wall-clock cost of K-reduce versus the full three-pass
JXPLAIN pipeline (Bimax-Merge) per dataset and training fraction, plus
pytest-benchmark micro-timings of single discover calls.  Expected
shape (§7.4):

* JXPLAIN is slower than K-reduce — roughly 2-3x on flat datasets,
  more on deeply nested ones (Twitter, GitHub, Wikidata) where nested
  object arrays must be decoded and pivoted for recursive entity
  extraction;
* both scale linearly in the training fraction.
"""

from __future__ import annotations

import time
from typing import List

import pytest

from benchmarks.conftest import (
    BENCH_FRACTIONS,
    SWEEP_DATASETS,
    bench_records,
    emit,
)
from repro.discovery import Jxplain, JxplainPipeline, KReduce
from repro.io.sampling import uniform_sample

RUNTIME_DATASETS = SWEEP_DATASETS + ["wikidata"]


def _runtime_row(dataset: str) -> List[str]:
    records = bench_records(dataset, seed=41)
    cells = [dataset]
    for fraction in BENCH_FRACTIONS:
        sample = uniform_sample(records, fraction, seed=7)
        start = time.perf_counter()
        KReduce().discover(sample)
        kreduce_ms = 1000.0 * (time.perf_counter() - start)
        start = time.perf_counter()
        JxplainPipeline().discover(sample)
        jxplain_ms = 1000.0 * (time.perf_counter() - start)
        cells.append(f"{kreduce_ms:9.1f} {jxplain_ms:9.1f}")
    return cells


def test_table5_runtime(benchmark):
    header = ["dataset".ljust(14)] + [
        f"{int(f * 100)}%: kreduce   jxplain" for f in BENCH_FRACTIONS
    ]
    lines = ["  ".join(header)]
    ratios = {}
    for dataset in RUNTIME_DATASETS:
        cells = _runtime_row(dataset)
        lines.append(
            cells[0].ljust(14) + "  " + "  ".join(cells[1:])
        )
        top = cells[-1].split()
        ratios[dataset] = float(top[1]) / max(float(top[0]), 1e-6)
    emit("table5_runtime", "\n".join(lines))

    # JXPLAIN costs more than K-reduce on every dataset (claim (v):
    # the overhead exists but is not prohibitive).
    slower = sum(1 for ratio in ratios.values() if ratio > 1.0)
    assert slower >= 0.8 * len(ratios)
    # ... and the median overhead stays within an order of magnitude.
    ordered = sorted(ratios.values())
    median = ordered[len(ordered) // 2]
    assert median < 30.0


@pytest.mark.parametrize("dataset", ["nyt", "github", "pharma", "yelp-merged"])
@pytest.mark.parametrize("algorithm", ["k-reduce", "bimax-merge", "pipeline"])
def test_table5_discover_micro(benchmark, dataset, algorithm):
    """pytest-benchmark timings of one discover call at 50% training."""
    records = bench_records(dataset, seed=42)
    sample = uniform_sample(records, 0.5, seed=9)
    discoverer = {
        "k-reduce": KReduce(),
        "bimax-merge": Jxplain(),
        "pipeline": JxplainPipeline(),
    }[algorithm]
    benchmark.pedantic(
        discoverer.discover, args=(sample,), rounds=2, iterations=1
    )


def test_table5_linear_scaling(benchmark):
    """Both extractors scale roughly linearly in the sample size."""
    records = bench_records("yelp-merged", seed=43)
    timings = {}
    for fraction in (0.2, 0.8):
        sample = uniform_sample(records, fraction, seed=3)
        start = time.perf_counter()
        Jxplain().discover(sample)
        timings[fraction] = time.perf_counter() - start
    ratio = timings[0.8] / max(timings[0.2], 1e-9)
    # 4x the data should cost within ~quadratic headroom of 4x time,
    # and certainly not super-quadratic.
    assert ratio < 16.0
