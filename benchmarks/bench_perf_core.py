"""Core performance bench for the dataflow backends + merge fast path.

Times both extractors end-to-end — K-reduce as a one-pass counted-bag
fold over a :class:`LocalDataset`, JXPLAIN as the staged three-pass
pipeline — on the yelp/github/pharma synthetic datasets under four
configurations:

* ``baseline``            — serial executor, list bags, interning and
  the similarity cache off (the seed's behaviour);
* ``optimized-serial``    — counted bags + interning + cached
  similarity, still serial;
* ``optimized-threads4``  — the same, fanned out on 4 threads;
* ``optimized-processes4``— the same, on 4 processes (picklable tasks).

Results — timings, speedups versus baseline, intern/cache counters,
distinct-type ratios, worker counts — are written machine-readably to
``BENCH_PR1.json`` at the repo root and as text under
``benchmarks/results/``.  Schema identity across every configuration
is asserted, and at full scale the run must show a ≥2x speedup for
both algorithms on at least one dataset.

Scale with ``REPRO_BENCH_SCALE`` (CI smoke uses a small fraction; the
speedup gate only applies at >= 2000 records).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

from benchmarks.conftest import emit
from repro.datasets import make_dataset
from repro.discovery import Jxplain, JxplainPipeline
from repro.discovery.kreduce import merge_k
from repro.engine import LocalDataset, resolve_executor
from repro.engine.instrument import (
    counters,
    perf_counters,
    reset_perf_counters,
)
from repro.jsontypes import (
    as_bag,
    clear_intern_table,
    set_counted_merge,
    set_interning,
    type_of,
)
from repro.jsontypes.similarity import set_similarity_cache

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Multi-thousand-record corpora (scaled), the regime of Table 5.
PERF_SIZES = {"yelp-merged": 4000, "github": 4000, "pharma": 4000}

#: (name, executor spec, counted bags + interning + similarity cache)
MODES = [
    ("baseline", "serial", False),
    ("optimized-serial", "serial", True),
    ("optimized-threads4", "threads:4", True),
    ("optimized-processes4", "processes:4", True),
]

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PR1.json"


# Module-level fold ops so the process backend can ship them.

def _bag_zero():
    return as_bag([])


def _bag_seq(bag, value):
    bag.add(type_of(value))
    return bag


def _bag_comb(left, right):
    for tau, count in right.items():
        left.add(tau, count)
    return left


def _run_kreduce(records, executor):
    """One-pass distributed K-reduce: per-partition type bags, fanned
    in, then one batch merge in the driver."""
    ds = LocalDataset.from_records(records, 4, executor=executor)
    return merge_k(ds.aggregate(_bag_zero, _bag_seq, _bag_comb))


def _set_mode(optimized):
    set_counted_merge(optimized)
    set_interning(optimized)
    set_similarity_cache(optimized)
    clear_intern_table()
    reset_perf_counters()


def _bench_dataset(name, size):
    records = make_dataset(name).generate(size, seed=17)
    schemas_k, schemas_j, schemas_p = {}, {}, {}
    modes = {}
    for mode_name, spec, optimized in MODES:
        executor = resolve_executor(spec)
        _set_mode(optimized)

        start = time.perf_counter()
        schemas_k[mode_name] = _run_kreduce(records, executor)
        kreduce_s = time.perf_counter() - start

        # The one-shot recursive merger (Section 5's Algorithm 4 as a
        # whole-bag merge): this is where the counted-bag fast path
        # concentrates, since every nested path re-merges a bag.
        start = time.perf_counter()
        schemas_j[mode_name] = Jxplain().discover(records)
        jxplain_s = time.perf_counter() - start

        # The staged three-pass pipeline: dominated by the stat-tree
        # passes, and the form that fans out over the executor.
        start = time.perf_counter()
        schemas_p[mode_name] = JxplainPipeline(
            executor=executor
        ).run(records).schema
        pipeline_s = time.perf_counter() - start

        snapshot = perf_counters()
        total = counters.get("kreduce.merge_total_types")
        distinct = counters.get("kreduce.merge_distinct_types")
        modes[mode_name] = {
            "kreduce_s": round(kreduce_s, 4),
            "jxplain_s": round(jxplain_s, 4),
            "pipeline_s": round(pipeline_s, 4),
            "workers": executor.workers,
            "distinct_type_ratio": round(distinct / total, 4) if total else None,
            "counters": {
                key: value
                for key, value in sorted(snapshot.items())
                if key.startswith(("intern.", "similarity.", "executor.",
                                   "kreduce.", "jxplain."))
            },
        }
    _set_mode(True)  # restore defaults

    for algo, schemas in (
        ("kreduce", schemas_k),
        ("jxplain", schemas_j),
        ("pipeline", schemas_p),
    ):
        reference = schemas["baseline"]
        for mode_name, schema in schemas.items():
            assert schema == reference, (
                f"{name}: {algo} schema diverged under {mode_name}"
            )

    base = modes["baseline"]
    opt = modes["optimized-serial"]
    return {
        "records": len(records),
        "modes": modes,
        "kreduce_speedup": round(base["kreduce_s"] / opt["kreduce_s"], 2),
        "jxplain_speedup": round(base["jxplain_s"] / opt["jxplain_s"], 2),
        "pipeline_speedup": round(base["pipeline_s"] / opt["pipeline_s"], 2),
    }


def test_perf_core():
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": SCALE,
        "cpu_count": os.cpu_count(),
        "modes": [
            {"name": mode, "executor": spec, "optimized": optimized}
            for mode, spec, optimized in MODES
        ],
        "datasets": {},
    }
    for name, size in PERF_SIZES.items():
        scaled = max(50, int(size * SCALE))
        report["datasets"][name] = _bench_dataset(name, scaled)

    best_k = max(d["kreduce_speedup"] for d in report["datasets"].values())
    best_j = max(d["jxplain_speedup"] for d in report["datasets"].values())
    full_scale = min(
        d["records"] for d in report["datasets"].values()
    ) >= 2000
    report["acceptance"] = {
        "kreduce_best_speedup": best_k,
        "jxplain_best_speedup": best_j,
        "gate_applies": full_scale,
        "met": best_k >= 2.0 and best_j >= 2.0,
    }

    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        "dataset        mode                   kreduce_s  jxplain_s"
        "  pipeline_s  workers",
    ]
    for name, data in report["datasets"].items():
        for mode_name, row in data["modes"].items():
            lines.append(
                f"{name:<14} {mode_name:<22} {row['kreduce_s']:>9.3f}"
                f"  {row['jxplain_s']:>9.3f}  {row['pipeline_s']:>10.3f}"
                f"  {row['workers']:>7}"
            )
        lines.append(
            f"{name:<14} speedup (serial, optimized/baseline): "
            f"kreduce {data['kreduce_speedup']}x, "
            f"jxplain {data['jxplain_speedup']}x, "
            f"pipeline {data['pipeline_speedup']}x"
        )
    lines.append(f"best speedups: kreduce {best_k}x, jxplain {best_j}x")
    emit("perf_core", "\n".join(lines))

    if full_scale:
        assert best_k >= 2.0, f"kreduce speedup {best_k} < 2.0"
        assert best_j >= 2.0, f"jxplain speedup {best_j} < 2.0"
