"""Tracking schema evolution with validation + greedy repair (§7.5).

The Synapse event log drifts across ~36 protocol revisions.  This
example trains on the *early* part of the stream, watches validation
decay as the protocol evolves, and uses the greedy repair of §7.5 to
quantify (and apply) the minimal edits needed to catch the schema up.

    python examples/schema_evolution.py
"""

from repro import Jxplain, KReduce
from repro.datasets import make_dataset
from repro.jsontypes import type_of
from repro.validation import edits_to_full_recall, validate_records


def main() -> None:
    records = make_dataset("synapse").generate(3000, seed=6)
    era_size = len(records) // 3
    early, middle, late = (
        records[:era_size],
        records[era_size : 2 * era_size],
        records[2 * era_size :],
    )

    schema = Jxplain().discover(early)
    print(f"trained on the first {len(early)} events (early protocol)\n")

    print("validation over later eras (recall):")
    for name, era in (("early ", early), ("middle", middle), ("late  ", late)):
        report = validate_records(schema, era)
        print(f"  {name} {report.recall:7.4f} "
              f"({report.invalid_count} rejects)")
    print()

    # How many schema edits to absorb the drift?  Compare extractors.
    late_types = [type_of(r) for r in late]
    for discoverer in (Jxplain(), KReduce()):
        base = discoverer.discover(early)
        report = edits_to_full_recall(base, late_types)
        print(
            f"{discoverer.name:12s} needs {report.edit_count:4d} edits "
            f"({report.repaired_records} repair steps) to accept the "
            f"late era"
        )
    print()

    # Show the first few edits the repair actually made.
    report = edits_to_full_recall(
        Jxplain().discover(early), late_types
    )
    print("first repairs applied (jxplain schema):")
    for entry in report.log.entries[:6]:
        print(f"  {entry}")
    still_failing = sum(
        1 for tau in late_types if not report.schema.admits_type(tau)
    )
    print(f"\nafter repair, late-era rejects: {still_failing}")


if __name__ == "__main__":
    main()
