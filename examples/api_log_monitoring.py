"""Monitoring a multi-entity event stream (the paper's introduction).

An operations engineer wants to be warned when the structure of newly
arriving events changes.  This example:

1. discovers a schema from a GitHub-style event history using the
   iterative sample-validate-augment loop of §4.2 (training on a small
   sample, folding back only the records that fail);
2. validates a fresh day of traffic — all clean;
3. injects two anomalies (a truncated event and a brand-new event
   type) and shows the validator catching and *explaining* both.

    python examples/api_log_monitoring.py
"""

from repro import Jxplain
from repro.datasets import make_dataset
from repro.schema import top_level_entity_count
from repro.validation import (
    first_failures,
    iterative_refinement,
    validate_records,
)


def main() -> None:
    history = make_dataset("github").generate(2500, seed=1)
    print(f"training on a history of {len(history)} events ...")

    result = iterative_refinement(
        Jxplain(), history, initial_fraction=0.05, seed=1
    )
    schema = result.schema
    print(
        f"refinement converged={result.converged} after "
        f"{result.total_rounds} round(s); final sample "
        f"{result.final_sample_size}/{len(history)} records"
    )
    print(
        f"discovered {top_level_entity_count(schema)} event entities\n"
    )

    # A fresh day of normal traffic.
    fresh = make_dataset("github").generate(500, seed=99)
    report = validate_records(schema, fresh)
    print(
        f"fresh traffic: {report.valid_count}/{report.total} accepted "
        f"(recall {report.recall:.4f})"
    )

    # Now the anomalies the engineer wants to hear about.
    truncated = dict(fresh[0])
    del truncated["actor"]
    novel = {
        "id": "1",
        "type": "SponsorshipEvent",  # a type the trace never contained
        "actor": fresh[0]["actor"],
        "repo": fresh[0]["repo"],
        "payload": {"action": "created", "tier": {"monthly_price": 5}},
        "public": True,
        "created_at": "2020-01-01T00:00:00Z",
    }
    anomalies = [truncated, novel]
    report = validate_records(schema, anomalies)
    print(
        f"anomalous batch: {report.invalid_count}/{report.total} "
        f"rejected\n"
    )
    print("explanations:")
    for index, violations in first_failures(schema, anomalies, limit=2):
        print(f"  record {index}:")
        for violation in violations[:4]:
            print(f"    {violation}")


if __name__ == "__main__":
    main()
