"""Entity discovery on a multiplexed stream (§6, Table 3).

Six Yelp tables are multiplexed into one JSON stream with shared
foreign keys (the paper's synthetic Yelp-Merged).  The example runs
Bimax-Naive, GreedyMerge, and the k-means baseline and shows how close
each gets to the six ground-truth entities.

    python examples/entity_discovery.py
"""

from collections import Counter

from repro.datasets import make_dataset
from repro.discovery import JxplainConfig
from repro.discovery.jxplain import cluster_key_sets
from repro.discovery.config import EntityStrategy
from repro.entities import EntityPartitioner
from repro.metrics import (
    evaluate_entity_detection,
    format_entity_table,
    record_features,
)


def main() -> None:
    labeled = make_dataset("yelp-merged").generate_labeled(1500, seed=5)
    truth_counts = Counter(label for label, _ in labeled)
    print("ground truth mixture:")
    for label, count in truth_counts.most_common():
        print(f"  {label:10s} {count}")
    print()

    config = JxplainConfig()
    features, labels = record_features(labeled, config)

    for strategy in (
        EntityStrategy.BIMAX_NAIVE,
        EntityStrategy.BIMAX_MERGE,
    ):
        clusters = cluster_key_sets(
            features, config.with_(entity_strategy=strategy)
        )
        print(f"{strategy.value}: {len(clusters)} entities")

    # How pure are the merged clusters?
    clusters = cluster_key_sets(features, config)
    partitioner = EntityPartitioner(clusters)
    composition = {}
    for feature_set, label in zip(features, labels):
        entity = partitioner.assign(feature_set)
        composition.setdefault(entity, Counter())[label] += 1
    print("\ncluster composition (bimax-merge):")
    for entity in sorted(composition):
        top = composition[entity].most_common(2)
        total = sum(composition[entity].values())
        description = ", ".join(f"{l}={c}" for l, c in top)
        print(f"  entity {entity}: {total:5d} records ({description})")

    # The full Table 3 comparison, including k-means with the true k.
    print()
    results = evaluate_entity_detection(labeled)
    print(format_entity_table(results, dataset="yelp-merged"))


if __name__ == "__main__":
    main()
