"""From raw stream to living documentation (docs + diff + coref).

Section 6 opens with GitHub's hand-maintained page of event schemas —
which a footnote notes was out of date.  This example keeps such a page
alive automatically:

1. discover a schema from the event stream and render it as a Markdown
   documentation page;
2. detect *co-references* — entities repeated at several paths (the §8
   future-work item) — so the page can name shared structures;
3. a protocol revision later: diff the re-discovered schema against the
   old one and print the changelog a maintainer would have written.

    python examples/api_documentation.py
"""

from repro import Jxplain
from repro.datasets import make_dataset
from repro.discovery import find_coreferences
from repro.schema import schema_to_markdown
from repro.validation import diff_schemas


def main() -> None:
    # 1. Discover and document today's stream.
    history = make_dataset("twitter").generate(800, seed=11)
    schema = Jxplain().discover(history)
    page = schema_to_markdown(
        schema,
        title="Stream API events",
        description="Auto-generated from 800 observed events.",
    )
    print("generated documentation page "
          f"({len(page.splitlines())} lines); preview:\n")
    for line in page.splitlines()[:14]:
        print(f"  {line}")
    print("  ...\n")

    # 2. Shared structures: the user entity recurs all over the schema.
    print("co-references (entities repeated at multiple paths):")
    for group in find_coreferences(schema)[:4]:
        print(f"  {group.describe()[:110]}")
    print()

    # 3. The feed evolves: new optional envelope fields appear.
    evolved = []
    for index, record in enumerate(
        make_dataset("twitter").generate(800, seed=12)
    ):
        if "delete" not in record:
            record["edit_history"] = {"editable": index % 3 == 0}
        evolved.append(record)
    new_schema = Jxplain().discover(evolved)

    diff = diff_schemas(schema, new_schema)
    print("changelog against the documented schema:")
    breaking = diff.breaking_changes()
    for change in breaking[:6]:
        print(f"  ! {change}")
    informational = [c for c in diff.changes if not c.breaking]
    print(
        f"  ({len(breaking)} structural change(s), "
        f"{len(informational)} informational)"
    )


if __name__ == "__main__":
    main()
