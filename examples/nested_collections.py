"""Nested-collection detection: the Pharma and Yelp-checkin shapes.

Shows the §5 heuristic doing its job on the two structures the paper
highlights:

* a collection-like object mapping drug names to prescription counts
  (Example 6) — JXPLAIN generalizes to drugs it never saw, while the
  production-style baseline rejects them;
* a two-level pivot table ``time: {day: {hour: count}}`` (the Yelp
  checkin table) — detected as nested collections at both levels.

    python examples/nested_collections.py
"""

from repro import Jxplain, KReduce, render, schema_entropy
from repro.datasets import make_dataset
from repro.discovery import StatTree, decide_collections, JxplainConfig
from repro.heuristics import Designation
from repro.jsontypes import render_path, type_of


def pharma_demo() -> None:
    records = make_dataset("pharma").generate(800, seed=3)
    train, test = records[:80], records[80:]
    print(f"[pharma] training on {len(train)} prescriber records")

    jxplain = Jxplain().discover(train)
    kreduce = KReduce().discover(train)
    print("JXPLAIN sees the drug map as a collection:")
    counts_schema = jxplain.field_schema("cms_prescription_counts")
    print(f"  {render(counts_schema, compact=True)[:60]} ...")
    print(f"  observed drug domain: {counts_schema.domain_size} names")

    jx_hits = sum(1 for r in test if jxplain.admits_value(r))
    kr_hits = sum(1 for r in test if kreduce.admits_value(r))
    print(f"held-out recall: jxplain {jx_hits}/{len(test)}, "
          f"k-reduce {kr_hits}/{len(test)}")
    print(f"schema entropy:  jxplain {schema_entropy(jxplain):8.1f}, "
          f"k-reduce {schema_entropy(kreduce):8.1f}")
    print()


def checkin_demo() -> None:
    records = make_dataset("yelp-checkin").generate(600, seed=4)
    print(f"[yelp-checkin] {len(records)} checkin pivot records")

    # Pass ① in isolation: which paths are collections?
    tree = StatTree.from_types([type_of(r) for r in records])
    decisions = decide_collections(tree, JxplainConfig())
    print("collection decisions:")
    for (path, kind), designation in sorted(
        decisions.items(), key=lambda kv: repr(kv[0])
    ):
        marker = "*" if designation is Designation.COLLECTION else " "
        print(
            f"  {marker} {render_path(path):16s} {kind.value:6s} "
            f"{designation.value}"
        )

    schema = Jxplain().discover(records)
    print("\ndiscovered schema:")
    print(render(schema, compact=True))

    # Days and hours never seen together still validate: the schema
    # ranges over the whole pivot, not the observed combinations.
    probe = {
        "business_id": "x" * 22,
        "time": {"Sun": {"3": 1}, "Wed": {"23": 2}},
    }
    print(f"\nunseen day/hour combination accepted: "
          f"{schema.admits_value(probe)}")


def main() -> None:
    pharma_demo()
    checkin_demo()


if __name__ == "__main__":
    main()
