"""Quickstart: discover, inspect, validate, export.

Runs the paper's Figure 1 example end to end:

    python examples/quickstart.py
"""

import json

from repro import Jxplain, KReduce, render, schema_entropy, to_json_schema
from repro.datasets import make_dataset


def main() -> None:
    # A stream of login/serve events shaped like Figure 1 of the paper.
    records = make_dataset("figure1").generate(200, seed=7)
    print(f"discovering a schema from {len(records)} records ...\n")

    schema = Jxplain().discover(records)
    print("JXPLAIN schema:")
    print(render(schema))
    print()

    # The schema is a validator: known shapes pass, mixtures fail.
    login = {
        "ts": 1,
        "event": "login",
        "user": {"name": "ada", "geo": [51.5, -0.1]},
    }
    mixture = {
        "ts": 2,
        "event": "??",
        "user": {"name": "bob", "geo": [0.0, 0.0]},
        "files": ["x"],
    }
    print(f"valid login accepted:    {schema.admits_value(login)}")
    print(f"invalid mixture rejected: {not schema.admits_value(mixture)}")
    print()

    # Compare against the production-style baseline (Spark / Oracle).
    baseline = KReduce().discover(records)
    print("K-reduce schema (for comparison):")
    print(render(baseline, compact=True))
    print(f"  K-reduce admits the mixture: {baseline.admits_value(mixture)}")
    print()
    print("schema entropy (log2 admitted types, lower = more precise):")
    print(f"  jxplain : {schema_entropy(schema):6.2f}")
    print(f"  k-reduce: {schema_entropy(baseline):6.2f}")
    print()

    # Export to a standard JSON Schema document.
    document = to_json_schema(schema)
    print("JSON Schema export (truncated):")
    print(json.dumps(document, indent=2)[:400], "...")


if __name__ == "__main__":
    main()
