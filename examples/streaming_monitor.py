"""Continuous monitoring with incremental discovery.

Events arrive in batches; the monitor keeps its schema current without
ever re-reading the history:

* :class:`StreamingKReduce` folds each record exactly (K-reduce
  distributes over union), so the permissive baseline is always exact;
* :class:`StreamingJxplain` buffers *novel* records and re-synthesizes
  its precise schema only when enough novelty accumulates.

The demo streams three eras of a Matrix-style event log whose protocol
evolves, printing what each monitor noticed.

    python examples/streaming_monitor.py
"""

from repro.datasets import make_dataset
from repro.discovery import StreamingJxplain, StreamingKReduce
from repro.schema import schema_entropy, top_level_entity_count
from repro.validation import diff_schemas


def main() -> None:
    records = make_dataset("synapse").generate(3000, seed=13)
    batches = [records[i : i + 500] for i in range(0, len(records), 500)]

    precise = StreamingJxplain(resynthesize_after=16)
    baseline = StreamingKReduce()

    print("streaming 6 batches of 500 events:\n")
    previous_schema = None
    for index, batch in enumerate(batches):
        novel = precise.observe_many(batch)
        baseline.observe_many(batch)
        schema = precise.current_schema()
        line = (
            f"batch {index}: novel={novel:3d}  "
            f"entities={top_level_entity_count(schema):2d}  "
            f"H(jxplain)={schema_entropy(schema):7.1f}  "
            f"H(k-reduce)={schema_entropy(baseline.current_schema()):7.1f}"
        )
        if previous_schema is not None:
            drift = diff_schemas(previous_schema, schema)
            breaking = len(drift.breaking_changes())
            if breaking:
                line += f"  << {breaking} structural change(s)"
        print(line)
        previous_schema = schema

    print(
        f"\nprocessed {precise.record_count} records, retained "
        f"{precise.retained_types} distinct types "
        f"({100.0 * precise.retained_types / precise.record_count:.1f}%)"
    )

    # The monitor validates live traffic against the precise schema.
    probe = dict(records[-1])
    probe["totally_new_envelope_field"] = True
    print(f"live validation of a mutated event: {precise.validates(probe)}")


if __name__ == "__main__":
    main()
