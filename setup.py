"""Setuptools shim.

Enables legacy editable installs (``pip install -e .``) on
environments whose setuptools predates PEP 660 wheel-less editables;
all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
