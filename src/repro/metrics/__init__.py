"""Measurement harness: recall, schema entropy sweeps, entity accuracy."""

from repro.metrics.conciseness import (
    ConcisenessRow,
    count_entities,
    format_conciseness_table,
)
from repro.metrics.entity_accuracy import (
    EntityAccuracy,
    evaluate_entity_detection,
    format_entity_table,
    ground_truth_path_sets,
    min_symmetric_differences,
    record_features,
    symmetric_difference,
)
from repro.metrics.recall import (
    CellStats,
    SweepResult,
    TrialResult,
    format_sweep_table,
    measure_recall,
    run_sweep,
)

__all__ = [
    "CellStats",
    "ConcisenessRow",
    "EntityAccuracy",
    "SweepResult",
    "TrialResult",
    "count_entities",
    "evaluate_entity_detection",
    "format_conciseness_table",
    "format_entity_table",
    "format_sweep_table",
    "ground_truth_path_sets",
    "measure_recall",
    "min_symmetric_differences",
    "record_features",
    "run_sweep",
    "symmetric_difference",
]
