"""Conciseness: number of predicted entities (Table 4).

Table 4 counts, at 90% training data, the entities each strategy
predicts at the **root level**: L-reduce (one per distinct type),
Bimax-Naive (Algorithm 7's clusters), and Bimax-Merge (after
Algorithm 8).  For the Pharmaceutical dataset the paper disables
nested-collection detection to expose the raw entity blow-up; the
``detect_collections`` flag reproduces that ablation.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.discovery.config import EntityStrategy, JxplainConfig
from repro.discovery.jxplain import JxplainMerger, cluster_key_sets
from repro.jsontypes.types import JsonValue, ObjectType, type_of


@dataclass
class ConcisenessRow:
    """Entity counts for one dataset under the three strategies."""

    dataset: str
    l_reduce: List[int] = field(default_factory=list)
    bimax_naive: List[int] = field(default_factory=list)
    bimax_merge: List[int] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        def mean_std(values: List[int]) -> "tuple[float, float]":
            if not values:
                return 0.0, 0.0
            mean = statistics.fmean(values)
            std = statistics.pstdev(values) if len(values) > 1 else 0.0
            return mean, std

        l_mean, l_std = mean_std(self.l_reduce)
        n_mean, n_std = mean_std(self.bimax_naive)
        m_mean, m_std = mean_std(self.bimax_merge)
        return {
            "l_reduce_mean": l_mean,
            "l_reduce_std": l_std,
            "bimax_naive_mean": n_mean,
            "bimax_naive_std": n_std,
            "bimax_merge_mean": m_mean,
            "bimax_merge_std": m_std,
        }


def count_entities(
    records: Sequence[JsonValue],
    *,
    detect_collections: bool = True,
) -> Dict[str, int]:
    """Root-level entity counts under each strategy for one sample.

    L-reduce proposes one entity per distinct record *type* (its
    schema is the set of exact types), while the Bimax strategies
    cluster the §6.4 feature vectors — with nested-collection pruning
    when ``detect_collections`` is on.  This asymmetry is the point of
    the paper's Pharma row: nearly every record has a unique type
    (L-reduce explodes), but after pruning the drug collection every
    record has the *same* feature vector (Bimax collapses to 1).
    """
    config = JxplainConfig(
        detect_object_collections=detect_collections,
        detect_array_tuples=detect_collections,
    )
    merger = JxplainMerger(config)
    types = [type_of(record) for record in records]
    objects = [tau for tau in types if isinstance(tau, ObjectType)]
    if not objects:
        return {"l-reduce": 0, "bimax-naive": 0, "bimax-merge": 0}
    features = merger.object_features(objects, path=())
    naive_clusters = cluster_key_sets(
        list(features),
        config.with_(entity_strategy=EntityStrategy.BIMAX_NAIVE),
    )
    merge_clusters = cluster_key_sets(
        list(features),
        config.with_(entity_strategy=EntityStrategy.BIMAX_MERGE),
    )
    return {
        "l-reduce": len(set(objects)),
        "bimax-naive": len(naive_clusters),
        "bimax-merge": len(merge_clusters),
    }


def format_conciseness_table(rows: Sequence[ConcisenessRow]) -> str:
    """Aligned text table matching Table 4's layout."""
    header = [
        "dataset",
        "l-reduce:mean",
        "std",
        "bimax-naive:mean",
        "std",
        "bimax-merge:mean",
        "std",
    ]
    table: List[List[str]] = [header]
    for row in rows:
        summary = row.summary()
        table.append(
            [
                row.dataset,
                f"{summary['l_reduce_mean']:.1f}",
                f"{summary['l_reduce_std']:.1f}",
                f"{summary['bimax_naive_mean']:.1f}",
                f"{summary['bimax_naive_std']:.1f}",
                f"{summary['bimax_merge_mean']:.1f}",
                f"{summary['bimax_merge_std']:.1f}",
            ]
        )
    widths = [
        max(len(row[column]) for row in table)
        for column in range(len(header))
    ]
    return "\n".join(
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in table
    )
