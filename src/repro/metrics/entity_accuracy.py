"""Entity-detection accuracy (Table 3).

The paper compares, for each ground-truth entity, the most similar
discovered cluster by the symmetric difference of their schemas:
``D(S_i, G_j) = |S_i − G_j| + |G_j − S_i|``.  We realize schemas as
*path sets* — the union of feature paths over the records of a group —
which captures exactly the structural fields the clustering acted on.

Three clusterings are compared, as in the paper:

* **Bimax-Merge** (JXPLAIN's partitioner);
* **K-reduce** — no entity detection: one cluster holding everything;
* **k-means** — with the ground-truth k it would not have in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.datasets.base import LabeledRecord
from repro.discovery.config import JxplainConfig
from repro.discovery.jxplain import JxplainMerger, cluster_key_sets
from repro.entities.kmeans import kmeans_key_sets
from repro.entities.partitioner import EntityPartitioner
from repro.jsontypes.types import ObjectType, type_of

PathSet = FrozenSet


@dataclass
class EntityAccuracy:
    """Per-ground-truth-entity minimum symmetric difference."""

    method: str
    per_entity: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.per_entity.values())

    @property
    def mean(self) -> float:
        if not self.per_entity:
            return 0.0
        return self.total / len(self.per_entity)


def _group_feature_sets(
    groups: Sequence[Sequence[PathSet]],
) -> List[PathSet]:
    """The path-set schema of each group: the union of its members."""
    unions: List[PathSet] = []
    for group in groups:
        combined: set = set()
        for features in group:
            combined |= features
        unions.append(frozenset(combined))
    return unions


def symmetric_difference(first: PathSet, second: PathSet) -> int:
    return len(first ^ second)


def min_symmetric_differences(
    cluster_schemas: Sequence[PathSet],
    ground_truth: Dict[str, PathSet],
) -> Dict[str, int]:
    """For each ground-truth entity, the distance to its best cluster."""
    result: Dict[str, int] = {}
    for label, truth in ground_truth.items():
        if cluster_schemas:
            result[label] = min(
                symmetric_difference(schema, truth)
                for schema in cluster_schemas
            )
        else:
            result[label] = len(truth)
    return result


def record_features(
    labeled: Sequence[LabeledRecord], config: JxplainConfig
) -> Tuple[List[PathSet], List[str]]:
    """Feature vector + label per record (paper §6.4 features)."""
    merger = JxplainMerger(config)
    types = [type_of(record) for _, record in labeled]
    objects = [tau for tau in types if isinstance(tau, ObjectType)]
    labels = [
        label
        for (label, _), tau in zip(labeled, types)
        if isinstance(tau, ObjectType)
    ]
    features = merger.object_features(objects, path=())
    return list(features), labels


def ground_truth_path_sets(
    features: Sequence[PathSet], labels: Sequence[str]
) -> Dict[str, PathSet]:
    """Union of feature paths per ground-truth entity label."""
    truth: Dict[str, set] = {}
    for feature_set, label in zip(features, labels):
        truth.setdefault(label, set()).update(feature_set)
    return {label: frozenset(paths) for label, paths in truth.items()}


def evaluate_entity_detection(
    labeled: Sequence[LabeledRecord],
    *,
    config: JxplainConfig = None,
    kmeans_seed: int = 0,
) -> List[EntityAccuracy]:
    """Run the full Table 3 comparison on one labelled dataset."""
    config = config or JxplainConfig()
    features, labels = record_features(labeled, config)
    truth = ground_truth_path_sets(features, labels)
    results: List[EntityAccuracy] = []

    # Bimax-Merge clustering.
    clusters = cluster_key_sets(features, config)
    partitioner = EntityPartitioner(clusters)
    grouped: Dict[int, List[PathSet]] = {}
    for feature_set in features:
        grouped.setdefault(partitioner.assign(feature_set), []).append(
            feature_set
        )
    bimax_schemas = _group_feature_sets(list(grouped.values()))
    results.append(
        EntityAccuracy(
            method="bimax-merge",
            per_entity=min_symmetric_differences(bimax_schemas, truth),
        )
    )

    # K-reduce: one cluster with every field.
    kreduce_schema = frozenset().union(*features) if features else frozenset()
    results.append(
        EntityAccuracy(
            method="k-reduce",
            per_entity=min_symmetric_differences([kreduce_schema], truth),
        )
    )

    # k-means with the ground-truth k (unavailable in practice).
    distinct = sorted(set(features), key=lambda fs: (len(fs), repr(sorted(map(repr, fs)))))
    k = min(len(truth), len(distinct))
    if k >= 1 and distinct:
        km = kmeans_key_sets(distinct, k, seed=kmeans_seed)
        km_groups: Dict[int, List[PathSet]] = {}
        for feature_set, cluster_label in zip(distinct, km.labels):
            km_groups.setdefault(int(cluster_label), []).append(feature_set)
        km_schemas = _group_feature_sets(list(km_groups.values()))
        results.append(
            EntityAccuracy(
                method="k-means",
                per_entity=min_symmetric_differences(km_schemas, truth),
            )
        )
    return results


def format_entity_table(
    results: Sequence[EntityAccuracy], *, dataset: str
) -> str:
    """Aligned text table: one row per method, one column per entity."""
    if not results:
        return "(no results)"
    entities = sorted(results[0].per_entity)
    header = ["method"] + entities + ["total"]
    rows: List[List[str]] = [header]
    for accuracy in results:
        row = [accuracy.method]
        row += [str(accuracy.per_entity.get(e, "-")) for e in entities]
        row.append(str(accuracy.total))
        rows.append(row)
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header))
    ]
    lines = [f"[{dataset}] minimum symmetric difference (lower is better)"]
    lines += [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rows
    ]
    return "\n".join(lines)
