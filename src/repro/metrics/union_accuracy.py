"""Tagged-union entity accuracy: discriminant clusters vs ground truth.

The PR-8 tagged-union extractor claims that a detected discriminant
key clusters records into the corpus's real entities.  This module
scores that claim on the labelled synthetic datasets, next to the
structural baselines, with the standard pair-counting clustering
measures: over all record pairs, **precision** is the fraction of
same-cluster pairs that share a ground-truth label and **recall** the
fraction of same-label pairs that share a cluster (computed from the
label × cluster contingency table, never by enumerating pairs).

Three clusterings are compared per dataset:

* **tagged-union** — group by the detected discriminant's value (one
  extra ``rest`` cluster for records the decision does not cover);
  datasets with no detected discriminant degrade to a single cluster,
  so negatives are scored too, not skipped;
* **bimax** — Algorithm 7 alone (``EntityStrategy.BIMAX_NAIVE``);
* **bimax-merge** — Algorithms 7 + 8, JXPLAIN's default.

Both the accuracy suite and :mod:`benchmarks.bench_enrich` call
:func:`evaluate_tagged_union_detection`, so the pinned fixture and
``BENCH_PR8.json`` can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets import make_dataset
from repro.discovery.config import EntityStrategy, JxplainConfig
from repro.discovery.jxplain import cluster_key_sets
from repro.discovery.sketches import scalar_key
from repro.discovery.state import state_for_algorithm
from repro.discovery.tagged_unions import (
    TaggedUnionConfig,
    extract_tagged_unions,
)
from repro.entities.partitioner import EntityPartitioner
from repro.metrics.entity_accuracy import record_features

__all__ = [
    "ClusteringScore",
    "evaluate_tagged_union_detection",
    "pair_scores",
]


@dataclass(frozen=True)
class ClusteringScore:
    """Pair-counting accuracy of one clustering against the labels."""

    method: str
    clusters: int
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return (
            2.0
            * self.precision
            * self.recall
            / (self.precision + self.recall)
        )

    def as_json(self) -> dict:
        return {
            "method": self.method,
            "clusters": self.clusters,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def _pairs(count: int) -> int:
    return count * (count - 1) // 2


def pair_scores(
    assignments: Sequence, labels: Sequence[str]
) -> Tuple[float, float]:
    """``(precision, recall)`` of a clustering via the contingency
    table.

    ``assignments[i]`` is record ``i``'s cluster id (any hashable);
    ``labels[i]`` its ground-truth entity.  Degenerate cases (no
    same-cluster pairs / no same-label pairs) score 1.0 — an empty
    claim is vacuously correct.
    """
    if len(assignments) != len(labels):
        raise ValueError(
            f"{len(assignments)} assignments vs {len(labels)} labels"
        )
    cells: Dict[Tuple, int] = {}
    cluster_sizes: Dict[object, int] = {}
    label_sizes: Dict[str, int] = {}
    for cluster, label in zip(assignments, labels):
        cells[(cluster, label)] = cells.get((cluster, label), 0) + 1
        cluster_sizes[cluster] = cluster_sizes.get(cluster, 0) + 1
        label_sizes[label] = label_sizes.get(label, 0) + 1
    true_pairs = sum(_pairs(count) for count in cells.values())
    same_cluster = sum(_pairs(count) for count in cluster_sizes.values())
    same_label = sum(_pairs(count) for count in label_sizes.values())
    precision = true_pairs / same_cluster if same_cluster else 1.0
    recall = true_pairs / same_label if same_label else 1.0
    return precision, recall


def _union_assignments(records: Sequence[dict], decision) -> List:
    """Cluster ids under a tagged-union decision (or one cluster)."""
    if decision is None:
        return [0] * len(records)
    branch_keys = {scalar_key(branch.value) for branch in decision.branches}
    assignments: List = []
    for record in records:
        value = record.get(decision.key)
        try:
            tagged = scalar_key(value)
        except TypeError:
            tagged = None
        if tagged is not None and tagged in branch_keys:
            assignments.append(tagged)
        else:
            assignments.append(("rest",))
    return assignments


def evaluate_tagged_union_detection(
    name: str,
    *,
    n: int = 600,
    seed: int = 3,
    config: Optional[TaggedUnionConfig] = None,
) -> dict:
    """Score tagged-union detection on one labelled dataset.

    Returns a JSON-ready dict: the detected discriminant (or ``None``),
    its qualification statistics, and a :class:`ClusteringScore` per
    method.  Deterministic under ``(name, n, seed)``.
    """
    generator = make_dataset(name)
    labeled = generator.generate_labeled(n, seed)
    records = [record for _, record in labeled]

    state = state_for_algorithm("jxplain", enrich="unions")
    for record in records:
        state.absorb(record)
    decisions = extract_tagged_unions(state, config)
    decision = decisions[0] if decisions else None

    # Score over the records the structural baselines see: the
    # object-typed ones (every paper dataset is all-object, but the
    # guard keeps the metric total).
    jx_config = JxplainConfig()
    features, labels = record_features(labeled, jx_config)
    object_records = [
        record for record in records if isinstance(record, dict)
    ]
    scores: List[ClusteringScore] = []
    union_assignments = _union_assignments(object_records, decision)
    precision, recall = pair_scores(union_assignments, labels)
    scores.append(
        ClusteringScore(
            method="tagged-union",
            clusters=len(set(union_assignments)),
            precision=precision,
            recall=recall,
        )
    )
    for method, strategy in (
        ("bimax", EntityStrategy.BIMAX_NAIVE),
        ("bimax-merge", EntityStrategy.BIMAX_MERGE),
    ):
        strategy_config = jx_config.with_(entity_strategy=strategy)
        partitioner = EntityPartitioner(
            cluster_key_sets(list(features), strategy_config)
        )
        assignments = [
            partitioner.assign(feature_set) for feature_set in features
        ]
        precision, recall = pair_scores(assignments, labels)
        scores.append(
            ClusteringScore(
                method=method,
                clusters=len(set(assignments)),
                precision=precision,
                recall=recall,
            )
        )
    return {
        "dataset": name,
        "records": len(records),
        "discriminant": (
            None
            if decision is None
            else {
                "key": decision.key,
                "branches": len(decision.branches),
                "entropy": decision.entropy,
                "coverage": decision.coverage,
                "predictiveness": decision.predictiveness,
            }
        ),
        "scores": [score.as_json() for score in scores],
    }
