"""Recall measurement (Table 1) and the sweep used by Tables 1/2/5.

Recall = fraction of held-out test records admitted by a schema
discovered from a training sample.  The sweep runs the paper's full
protocol: reserve 10% for testing, train on {1, 10, 50, 90}% samples,
5 trials each, reporting mean / std / max per cell.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.discovery.base import Discoverer
from repro.io.sampling import (
    PAPER_TRAINING_FRACTIONS,
    PAPER_TRIALS,
    train_test_split,
    uniform_sample,
)
from repro.jsontypes.types import JsonValue, type_of
from repro.schema.entropy import schema_entropy
from repro.schema.nodes import Schema


@dataclass
class CellStats:
    """mean / std / max over trials, as Table 1 reports them."""

    values: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values) if self.values else 0.0

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return statistics.pstdev(self.values)

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0


@dataclass
class TrialResult:
    """One (algorithm, fraction, trial) cell of the sweep."""

    algorithm: str
    fraction: float
    trial: int
    recall: float
    entropy: float
    runtime_ms: float
    schema: Optional[Schema] = None


@dataclass
class SweepResult:
    """All trials of one dataset's sweep, with aggregation helpers."""

    dataset: str
    trials: List[TrialResult] = field(default_factory=list)

    def cell(
        self, algorithm: str, fraction: float, metric: str
    ) -> CellStats:
        values = [
            getattr(trial, metric)
            for trial in self.trials
            if trial.algorithm == algorithm and trial.fraction == fraction
        ]
        return CellStats(values)

    def algorithms(self) -> List[str]:
        seen: List[str] = []
        for trial in self.trials:
            if trial.algorithm not in seen:
                seen.append(trial.algorithm)
        return seen

    def fractions(self) -> List[float]:
        seen: List[float] = []
        for trial in self.trials:
            if trial.fraction not in seen:
                seen.append(trial.fraction)
        return seen


def measure_recall(schema: Schema, test_records: Sequence[JsonValue]) -> float:
    """Fraction of test records the schema admits."""
    if not test_records:
        return 1.0
    admitted = sum(
        1 for record in test_records if schema.admits_type(type_of(record))
    )
    return admitted / len(test_records)


def run_sweep(
    dataset_name: str,
    records: Sequence[JsonValue],
    discoverers: Iterable[Discoverer],
    *,
    fractions: Sequence[float] = PAPER_TRAINING_FRACTIONS,
    trials: int = PAPER_TRIALS,
    seed: int = 0,
    keep_schemas: bool = False,
) -> SweepResult:
    """The full Table 1/2/5 protocol for one dataset.

    Each trial gets an independent training sample; the 10% test set is
    fixed per dataset (drawn once with ``seed``), matching the paper's
    "reserve 10% of the data as a testing set".
    """
    split = train_test_split(records, seed=seed)
    test_types = [type_of(record) for record in split.test]
    result = SweepResult(dataset=dataset_name)
    discoverers = list(discoverers)
    for fraction in fractions:
        for trial in range(trials):
            sample = uniform_sample(
                split.train, fraction, seed=seed * 7919 + trial
            )
            if not sample:
                continue
            for discoverer in discoverers:
                start = time.perf_counter()
                schema = discoverer.discover(sample)
                runtime_ms = 1000.0 * (time.perf_counter() - start)
                admitted = sum(
                    1 for tau in test_types if schema.admits_type(tau)
                )
                recall = admitted / len(test_types) if test_types else 1.0
                result.trials.append(
                    TrialResult(
                        algorithm=discoverer.name,
                        fraction=fraction,
                        trial=trial,
                        recall=recall,
                        entropy=schema_entropy(schema),
                        runtime_ms=runtime_ms,
                        schema=schema if keep_schemas else None,
                    )
                )
    return result


def format_sweep_table(
    result: SweepResult,
    metric: str,
    *,
    precision: int = 5,
    include_max: bool = False,
) -> str:
    """Render a sweep as an aligned text table (one row per fraction)."""
    algorithms = result.algorithms()
    header = ["dataset", "sample"]
    for algorithm in algorithms:
        header.append(f"{algorithm}:mean")
        header.append(f"{algorithm}:std")
        if include_max:
            header.append(f"{algorithm}:max")
    rows: List[List[str]] = [header]
    for fraction in result.fractions():
        row = [result.dataset, f"{int(fraction * 100)}%"]
        for algorithm in algorithms:
            stats = result.cell(algorithm, fraction, metric)
            row.append(f"{stats.mean:.{precision}f}")
            row.append(f"{stats.std:.{precision}f}")
            if include_max:
                row.append(f"{stats.max:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header))
    ]
    lines = [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rows
    ]
    return "\n".join(lines)
