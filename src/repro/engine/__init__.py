"""Partitioned dataflow substrate and instrumentation (Spark stand-in)."""

from repro.engine.dataset import DEFAULT_PARTITIONS, LocalDataset
from repro.engine.instrument import StageTimer, deep_size_bytes

__all__ = [
    "DEFAULT_PARTITIONS",
    "LocalDataset",
    "StageTimer",
    "deep_size_bytes",
]
