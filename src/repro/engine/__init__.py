"""Partitioned dataflow substrate and instrumentation (Spark stand-in)."""

from repro.engine.dataset import DEFAULT_PARTITIONS, LocalDataset
from repro.engine.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor,
    executor_names,
    resolve_executor,
    set_default_executor,
)
from repro.engine.instrument import (
    Counters,
    StageTimer,
    counters,
    deep_size_bytes,
    perf_counters,
    reset_perf_counters,
)

__all__ = [
    "Counters",
    "DEFAULT_PARTITIONS",
    "Executor",
    "LocalDataset",
    "ProcessExecutor",
    "SerialExecutor",
    "StageTimer",
    "ThreadExecutor",
    "counters",
    "deep_size_bytes",
    "default_executor",
    "executor_names",
    "perf_counters",
    "reset_perf_counters",
    "resolve_executor",
    "set_default_executor",
]
