"""A small partitioned dataflow substrate (the paper's Spark stand-in).

The paper implements both extractors on Apache Spark; what the
algorithms actually require from Spark is narrow:

* partitioned record storage with ``map`` / ``filter`` / sampling;
* associative fan-in aggregation (``aggregate`` / ``treeAggregate``)
  for single-pass statistics and for K-reduction's fold;
* a way to count passes over the data, since JXPLAIN's whole overhead
  story (Table 5) is "it takes extra passes".

:class:`LocalDataset` provides exactly that surface over in-memory
partitions.  Every full traversal increments ``scans``, so tests and
benchmarks can assert pass counts (K-reduce: 1 pass; staged JXPLAIN:
3 passes, per Figure 3).
"""

from __future__ import annotations

import random
from typing import Callable, Generic, Iterable, Iterator, List, Optional, TypeVar

from repro.errors import EngineError

T = TypeVar("T")
U = TypeVar("U")

#: Default number of partitions for new datasets.
DEFAULT_PARTITIONS = 4


class LocalDataset(Generic[T]):
    """An immutable, partitioned, in-memory dataset."""

    def __init__(
        self,
        partitions: List[List[T]],
        *,
        _scan_counter: Optional[List[int]] = None,
    ):
        if not partitions:
            partitions = [[]]
        self._partitions = partitions
        # The scan counter is shared across derived datasets so that a
        # whole pipeline's pass count accumulates in one place.
        self._scan_counter = _scan_counter if _scan_counter is not None else [0]

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Iterable[T], num_partitions: int = DEFAULT_PARTITIONS
    ) -> "LocalDataset[T]":
        """Round-robin the records into ``num_partitions`` partitions."""
        if num_partitions <= 0:
            raise EngineError("num_partitions must be positive")
        partitions: List[List[T]] = [[] for _ in range(num_partitions)]
        for index, record in enumerate(records):
            partitions[index % num_partitions].append(record)
        return cls(partitions)

    # -- introspection -------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def scans(self) -> int:
        """Number of full passes made over this dataset's lineage."""
        return self._scan_counter[0]

    def count(self) -> int:
        self._note_scan()
        return sum(len(partition) for partition in self._partitions)

    def collect(self) -> List[T]:
        self._note_scan()
        out: List[T] = []
        for partition in self._partitions:
            out.extend(partition)
        return out

    def is_empty(self) -> bool:
        return all(not partition for partition in self._partitions)

    def _note_scan(self) -> None:
        self._scan_counter[0] += 1

    def __iter__(self) -> Iterator[T]:
        for partition in self._partitions:
            yield from partition

    # -- transformations (eager, scan-counted) --------------------------------

    def map(self, fn: Callable[[T], U]) -> "LocalDataset[U]":
        self._note_scan()
        return LocalDataset(
            [[fn(item) for item in partition] for partition in self._partitions],
            _scan_counter=self._scan_counter,
        )

    def filter(self, predicate: Callable[[T], bool]) -> "LocalDataset[T]":
        self._note_scan()
        return LocalDataset(
            [
                [item for item in partition if predicate(item)]
                for partition in self._partitions
            ],
            _scan_counter=self._scan_counter,
        )

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "LocalDataset[U]":
        self._note_scan()
        return LocalDataset(
            [
                [out for item in partition for out in fn(item)]
                for partition in self._partitions
            ],
            _scan_counter=self._scan_counter,
        )

    def map_partitions(
        self, fn: Callable[[List[T]], List[U]]
    ) -> "LocalDataset[U]":
        self._note_scan()
        return LocalDataset(
            [fn(list(partition)) for partition in self._partitions],
            _scan_counter=self._scan_counter,
        )

    def union(self, other: "LocalDataset[T]") -> "LocalDataset[T]":
        return LocalDataset(
            [list(p) for p in self._partitions]
            + [list(p) for p in other._partitions],
            _scan_counter=self._scan_counter,
        )

    def sample(self, fraction: float, seed: int = 0) -> "LocalDataset[T]":
        """Uniform Bernoulli sample, deterministic under ``seed``."""
        if not 0.0 <= fraction <= 1.0:
            raise EngineError("fraction must be within [0, 1]")
        self._note_scan()
        rng = random.Random(seed)
        return LocalDataset(
            [
                [item for item in partition if rng.random() < fraction]
                for partition in self._partitions
            ],
            _scan_counter=self._scan_counter,
        )

    def repartition(self, num_partitions: int) -> "LocalDataset[T]":
        return LocalDataset.from_records(self.collect(), num_partitions)

    # -- aggregation -----------------------------------------------------------

    def aggregate(
        self,
        zero: Callable[[], U],
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
    ) -> U:
        """Fold each partition with ``seq_op``, combine with ``comb_op``.

        ``zero`` is a factory so mutable accumulators are safe.
        """
        self._note_scan()
        partials: List[U] = []
        for partition in self._partitions:
            acc = zero()
            for item in partition:
                acc = seq_op(acc, item)
            partials.append(acc)
        result = zero()
        for partial in partials:
            result = comb_op(result, partial)
        return result

    def tree_aggregate(
        self,
        zero: Callable[[], U],
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
    ) -> U:
        """Like :meth:`aggregate` but with pairwise (fan-in) combining.

        Exercises associativity the way a distributed reduction would:
        partial results are combined in a balanced binary tree rather
        than a left fold.
        """
        self._note_scan()
        partials: List[U] = []
        for partition in self._partitions:
            acc = zero()
            for item in partition:
                acc = seq_op(acc, item)
            partials.append(acc)
        if not partials:
            return zero()
        while len(partials) > 1:
            combined: List[U] = []
            for index in range(0, len(partials) - 1, 2):
                combined.append(comb_op(partials[index], partials[index + 1]))
            if len(partials) % 2:
                combined.append(partials[-1])
            partials = combined
        return partials[0]

    def reduce(self, comb_op: Callable[[T, T], T]) -> T:
        """Pairwise reduction of a non-empty dataset."""
        items = self.collect()
        if not items:
            raise EngineError("cannot reduce an empty dataset")
        result = items[0]
        for item in items[1:]:
            result = comb_op(result, item)
        return result
