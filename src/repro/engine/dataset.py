"""A small partitioned dataflow substrate (the paper's Spark stand-in).

The paper implements both extractors on Apache Spark; what the
algorithms actually require from Spark is narrow:

* partitioned record storage with ``map`` / ``filter`` / sampling;
* associative fan-in aggregation (``aggregate`` / ``treeAggregate``)
  for single-pass statistics and for K-reduction's fold;
* a way to count passes over the data, since JXPLAIN's whole overhead
  story (Table 5) is "it takes extra passes".

:class:`LocalDataset` provides exactly that surface over in-memory
partitions.  Every full traversal increments ``scans``, so tests and
benchmarks can assert pass counts (K-reduce: 1 pass; staged JXPLAIN:
3 passes, per Figure 3).

Per-partition work is dispatched through a pluggable
:class:`~repro.engine.executor.Executor` (serial, thread pool, or
process pool), which every derived dataset inherits.  Scan counting is
executor-independent: the counter ticks once per traversal in the
driver, never in workers, so pass counts stay exact under any backend.
Partition lists are treated as immutable throughout — transformations
build fresh lists and never mutate their input — which is what lets
:meth:`union` share them and workers read them without copies.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Callable, Generic, Iterable, Iterator, List, Optional, TypeVar

from repro.engine.executor import Executor, resolve_executor
from repro.errors import EngineError

T = TypeVar("T")
U = TypeVar("U")

#: Default number of partitions for new datasets.
DEFAULT_PARTITIONS = 4

#: Floor on records per partition when partitioning adaptively
#: (``num_partitions=None``).  Below this, per-task dispatch overhead
#: (pickling, queue hops) dominates the work a partition carries.
MIN_RECORDS_PER_PARTITION = 1024


def adaptive_partitions(record_count: int, workers: int) -> int:
    """Partition count balancing parallelism against dispatch overhead.

    One partition per worker, but never so many that a partition falls
    under :data:`MIN_RECORDS_PER_PARTITION` records — small inputs
    collapse toward a single partition, where serial dispatch wins.
    This is opt-in (``num_partitions=None``): explicit counts, and the
    default of :data:`DEFAULT_PARTITIONS`, are respected verbatim
    because ``sample()`` results are a function of the partition
    layout.
    """
    if record_count <= 0:
        return 1
    by_size = max(1, record_count // MIN_RECORDS_PER_PARTITION)
    return max(1, min(max(1, workers), by_size))


# -- per-partition task bodies ------------------------------------------------
#
# Module-level so the process backend can pickle them (the wrapped user
# function still has to be picklable itself).

def _map_task(fn, partition):
    return [fn(item) for item in partition]


def _filter_task(predicate, partition):
    return [item for item in partition if predicate(item)]


def _flat_map_task(fn, partition):
    return [out for item in partition for out in fn(item)]


def _map_partitions_task(fn, partition):
    return fn(list(partition))


def _sample_task(fraction, seed, indexed_partition):
    index, partition = indexed_partition
    # One RNG per (seed, partition): sampling is a pure function of the
    # partition's identity, so the result is identical no matter which
    # worker runs it, or in what order.  (Knuth-style mix; Random()
    # itself only accepts scalar seeds.)
    rng = random.Random(seed * 2654435761 + index)
    return [item for item in partition if rng.random() < fraction]


def _fold_task(zero, seq_op, partition):
    acc = zero()
    for item in partition:
        acc = seq_op(acc, item)
    return acc


def _serialized_fold_task(zero, seq_op, dumps, partition):
    """Fold a partition, then serialize the accumulator in the worker.

    What crosses the executor boundary is the ``dumps`` byte payload —
    a versioned codec state — rather than a pickled live accumulator.
    """
    acc = zero()
    for item in partition:
        acc = seq_op(acc, item)
    return dumps(acc)


class LocalDataset(Generic[T]):
    """An immutable, partitioned, in-memory dataset."""

    def __init__(
        self,
        partitions: List[List[T]],
        *,
        executor: Optional[Executor] = None,
        _scan_counter: Optional[List[int]] = None,
    ):
        if not partitions:
            partitions = [[]]
        self._partitions = partitions
        self._executor = resolve_executor(executor)
        # The scan counter is shared across derived datasets so that a
        # whole pipeline's pass count accumulates in one place.
        self._scan_counter = _scan_counter if _scan_counter is not None else [0]
        #: Filled by :meth:`from_jsonlines`; None for in-memory data.
        self.ingest_report = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[T],
        num_partitions: Optional[int] = DEFAULT_PARTITIONS,
        *,
        executor: Optional[Executor] = None,
    ) -> "LocalDataset[T]":
        """Round-robin the records into ``num_partitions`` partitions.

        ``num_partitions=None`` sizes the layout adaptively from the
        record count and the executor's worker count (see
        :func:`adaptive_partitions`); note the resulting layout — and
        therefore ``sample()`` — then depends on both.
        """
        if num_partitions is None:
            records = list(records)
            num_partitions = adaptive_partitions(
                len(records), resolve_executor(executor).workers
            )
        if num_partitions <= 0:
            raise EngineError("num_partitions must be positive")
        partitions: List[List[T]] = [[] for _ in range(num_partitions)]
        for index, record in enumerate(records):
            partitions[index % num_partitions].append(record)
        return cls(partitions, executor=executor)

    @classmethod
    def from_jsonlines(
        cls,
        path,
        num_partitions: Optional[int] = DEFAULT_PARTITIONS,
        *,
        executor: Optional[Executor] = None,
        on_bad_record: str = "raise",
        ingest: str = "classic",
    ) -> "LocalDataset":
        """Ingest a ``.jsonl`` file straight into a dataset.

        ``on_bad_record`` is the error-channel policy of
        :func:`repro.io.jsonlines.read_jsonlines`; the resulting
        per-file :class:`~repro.io.jsonlines.IngestReport` is attached
        to the returned dataset as :attr:`ingest_report` (derived
        datasets do not inherit it — it describes this one file).

        ``ingest="fused"`` loads the records' interned *types* (via
        :func:`repro.io.fastpath.ingest_jsonlines_fused`) instead of
        their values — the natural input for type-level discovery.
        ``num_partitions=None`` picks the partition count adaptively
        (see :meth:`from_records`).
        """
        from repro.io.jsonlines import _check_ingest_mode

        _check_ingest_mode(ingest)
        if ingest == "fused":
            from repro.io.fastpath import ingest_jsonlines_fused

            records, report = ingest_jsonlines_fused(
                path, on_bad_record=on_bad_record
            )
        else:
            from repro.io.jsonlines import ingest_jsonlines

            records, report = ingest_jsonlines(
                path, on_bad_record=on_bad_record
            )
        dataset = cls.from_records(
            records, num_partitions, executor=executor
        )
        dataset.ingest_report = report
        return dataset

    @classmethod
    def from_jsonlines_sharded(
        cls,
        path,
        shards: Optional[int] = None,
        *,
        executor: Optional[Executor] = None,
        on_bad_record: str = "raise",
        ingest: str = "classic",
    ) -> "LocalDataset":
        """Ingest a ``.jsonl`` file with the read itself fanned out.

        The file is split into newline-aligned byte ranges
        (:func:`repro.engine.sharding.plan_shards`; ``shards=None``
        sizes the count adaptively) and each range is parsed by a
        separate executor task, becoming one partition of the result.
        Parsing — the dominant cost of classic ingestion — thus runs
        in parallel, and the merged
        :class:`~repro.io.jsonlines.IngestReport` (exact whole-file
        line numbers) is attached as :attr:`ingest_report`.

        The records do cross the pool boundary as pickled objects, so
        for pure discovery prefer
        :class:`~repro.engine.sharding.ShardCoordinator`, which ships
        compact state bytes instead.
        """
        from repro.engine.sharding import ShardTask, ingest_shard, plan_shards
        from repro.io.jsonlines import _check_ingest_mode, merge_ingest_reports

        _check_ingest_mode(ingest)
        backend = resolve_executor(executor)
        plan = plan_shards(path, shards, backend.workers)
        tasks = [
            ShardTask(
                index=index,
                path=plan.path,
                start=start,
                end=end,
                on_bad_record=on_bad_record,
                ingest=ingest,
            )
            for index, (start, end) in enumerate(plan.ranges)
        ]
        results = [
            result
            for result in backend.map_list(ingest_shard, tasks)
            if result is not None
        ]
        results.sort(key=lambda result: result[0])
        dataset = cls(
            [records for _, records, _ in results], executor=backend
        )
        dataset.ingest_report = merge_ingest_reports(
            [report for _, _, report in results],
            path=plan.path,
            policy=on_bad_record,
        )
        return dataset

    def _derive(self, partitions: List[List[U]]) -> "LocalDataset[U]":
        return LocalDataset(
            partitions,
            executor=self._executor,
            _scan_counter=self._scan_counter,
        )

    @property
    def executor(self) -> Executor:
        """The backend this dataset's lineage runs on."""
        return self._executor

    def with_executor(self, executor) -> "LocalDataset[T]":
        """The same dataset (partitions, scan counter) on a new backend.

        ``executor`` may be an :class:`Executor` or a spec string such
        as ``"threads:4"``.
        """
        return LocalDataset(
            self._partitions,
            executor=resolve_executor(executor),
            _scan_counter=self._scan_counter,
        )

    def with_retry(self, retry) -> "LocalDataset[T]":
        """The same dataset on this backend with a
        :class:`~repro.engine.executor.RetryPolicy` installed (``None``
        removes supervision)."""
        return self.with_executor(self._executor.with_retry(retry))

    # -- introspection -------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def scans(self) -> int:
        """Number of full passes made over this dataset's lineage."""
        return self._scan_counter[0]

    def count(self) -> int:
        self._note_scan()
        return sum(len(partition) for partition in self._partitions)

    def collect(self) -> List[T]:
        self._note_scan()
        out: List[T] = []
        for partition in self._partitions:
            out.extend(partition)
        return out

    def is_empty(self) -> bool:
        return all(not partition for partition in self._partitions)

    def _note_scan(self) -> None:
        self._scan_counter[0] += 1

    def __iter__(self) -> Iterator[T]:
        for partition in self._partitions:
            yield from partition

    # -- transformations (eager, scan-counted) --------------------------------

    def map(self, fn: Callable[[T], U]) -> "LocalDataset[U]":
        self._note_scan()
        return self._derive(
            self._executor.map_list(partial(_map_task, fn), self._partitions)
        )

    def filter(self, predicate: Callable[[T], bool]) -> "LocalDataset[T]":
        self._note_scan()
        return self._derive(
            self._executor.map_list(
                partial(_filter_task, predicate), self._partitions
            )
        )

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "LocalDataset[U]":
        self._note_scan()
        return self._derive(
            self._executor.map_list(
                partial(_flat_map_task, fn), self._partitions
            )
        )

    def map_partitions(
        self, fn: Callable[[List[T]], List[U]]
    ) -> "LocalDataset[U]":
        self._note_scan()
        return self._derive(
            self._executor.map_list(
                partial(_map_partitions_task, fn), self._partitions
            )
        )

    def union(self, other: "LocalDataset[T]") -> "LocalDataset[T]":
        # Partition lists are immutable by convention, so the union can
        # share them instead of deep-copying every partition.
        return self._derive(list(self._partitions) + list(other._partitions))

    def sample(self, fraction: float, seed: int = 0) -> "LocalDataset[T]":
        """Uniform Bernoulli sample, deterministic under ``seed``.

        Each partition derives its own RNG from ``(seed, partition
        index)``, so the sample is a pure function of the data layout —
        independent of the order (or parallelism) in which partitions
        are traversed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise EngineError("fraction must be within [0, 1]")
        self._note_scan()
        return self._derive(
            self._executor.map_list(
                partial(_sample_task, fraction, seed),
                list(enumerate(self._partitions)),
            )
        )

    def repartition(self, num_partitions: int) -> "LocalDataset[T]":
        return LocalDataset.from_records(
            self.collect(), num_partitions, executor=self._executor
        )

    # -- aggregation -----------------------------------------------------------

    def _partials(
        self,
        zero: Callable[[], U],
        seq_op: Callable[[U, T], U],
    ) -> List[U]:
        """Fold every partition with ``seq_op``, fanned out over the
        executor."""
        return self._executor.map_list(
            partial(_fold_task, zero, seq_op), self._partitions
        )

    def aggregate(
        self,
        zero: Callable[[], U],
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
    ) -> U:
        """Fold each partition with ``seq_op``, combine with ``comb_op``.

        ``zero`` is a factory so mutable accumulators are safe.
        """
        self._note_scan()
        partials = self._partials(zero, seq_op)
        result = zero()
        for partial_result in partials:
            result = comb_op(result, partial_result)
        return result

    def tree_aggregate(
        self,
        zero: Callable[[], U],
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
    ) -> U:
        """Like :meth:`aggregate` but with pairwise (fan-in) combining.

        Exercises associativity the way a distributed reduction would:
        partial results are combined in a balanced binary tree rather
        than a left fold.
        """
        self._note_scan()
        partials = self._partials(zero, seq_op)
        if not partials:
            return zero()
        while len(partials) > 1:
            combined: List[U] = []
            for index in range(0, len(partials) - 1, 2):
                combined.append(comb_op(partials[index], partials[index + 1]))
            if len(partials) % 2:
                combined.append(partials[-1])
            partials = combined
        return partials[0]

    def tree_aggregate_serialized(
        self,
        zero: Callable[[], U],
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
        *,
        dumps: Callable[[U], bytes],
        loads: Callable[[bytes], U],
    ) -> U:
        """:meth:`tree_aggregate` with a serialized worker boundary.

        Each worker folds its partition and returns ``dumps(acc)`` —
        a byte payload — instead of the live accumulator; the driver
        decodes with ``loads`` and fans the partials in pairwise.  This
        is how a real distributed reduction moves state, and (unlike
        closures) the ``(zero, seq_op, dumps)`` task pickles, so the
        process backend genuinely ships work to other processes.

        A supervised backend that escalates a failed partition to
        ``skip`` yields ``None`` for it; such partials are dropped,
        mirroring :class:`~repro.engine.executor.Executor.map_list`'s
        skip semantics.
        """
        from repro.engine.instrument import counters

        self._note_scan()
        payloads = self._executor.map_list(
            partial(_serialized_fold_task, zero, seq_op, dumps),
            self._partitions,
        )
        payloads = [payload for payload in payloads if payload is not None]
        counters.add("state.partials", len(payloads))
        counters.add(
            "state.partial_bytes", sum(len(payload) for payload in payloads)
        )
        partials = [loads(payload) for payload in payloads]
        if not partials:
            return zero()
        while len(partials) > 1:
            combined: List[U] = []
            for index in range(0, len(partials) - 1, 2):
                combined.append(comb_op(partials[index], partials[index + 1]))
                counters.add("state.merges")
            if len(partials) % 2:
                combined.append(partials[-1])
            partials = combined
        return partials[0]

    def reduce(self, comb_op: Callable[[T, T], T]) -> T:
        """Pairwise reduction of a non-empty dataset."""
        items = self.collect()
        if not items:
            raise EngineError("cannot reduce an empty dataset")
        result = items[0]
        for item in items[1:]:
            result = comb_op(result, item)
        return result
