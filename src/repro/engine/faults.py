"""Deterministic fault injection for chaos testing.

A production discovery service must survive worker crashes, hangs, and
corrupted partial results without changing its output.  This module
provides the controlled way to *cause* those failures so the test
suite can prove that claim:

* :class:`FaultSpec` — one fault: raise / delay / corrupt on the Nth
  task of a named stage, for the first ``times`` attempts of that
  task;
* :class:`FaultPlan` — an immutable set of specs, installable
  programmatically (:func:`install_fault_plan`) or via the
  ``REPRO_FAULTS`` environment variable;
* :func:`stage_scope` / :func:`current_stage` — the ambient stage
  label.  :class:`~repro.engine.instrument.StageTimer` enters a scope
  for every timed stage, so pipeline stage names ("pass1-collections",
  "pass3-synthesis", ...) are fault-injection targets for free.

The executor consults the active plan once per task *attempt* in the
driver (where the injection counters tick), then executes the fault in
the worker via :func:`run_with_fault` — so a ``raise`` genuinely
crashes a pool worker and a ``delay`` genuinely makes one hang past
its deadline.  Matching is a pure function of ``(stage, task index,
attempt)``: no wall clock, no shared mutable state, which is what
makes chaos runs reproducible across serial, thread, and process
backends.

``REPRO_FAULTS`` grammar (comma-separated specs)::

    stage:index:kind[:times[:delay_seconds]]

    REPRO_FAULTS="pass3-synthesis:1:raise,parse:0:delay:1:0.5"

A stage of ``*`` matches every stage.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.errors import ReproError

#: Environment variable holding a fault-plan spec string.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The recognised fault kinds.
FAULT_KINDS = ("raise", "delay", "corrupt")

#: Default sleep for ``delay`` faults when the spec does not give one.
DEFAULT_DELAY_SECONDS = 0.05


class FaultError(ReproError, ValueError):
    """A fault plan was malformed."""


class InjectedFault(ReproError, RuntimeError):
    """The failure raised by a ``raise`` fault (a simulated crash)."""


@dataclass(frozen=True)
class CorruptResult:
    """Wrapper a ``corrupt`` fault puts around a task's real result.

    The executor's integrity check treats it like a task failure, so
    retries scrub corruption exactly as they scrub crashes.
    """

    original: object


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault, addressed by stage / task / attempt."""

    #: Stage label to match (``"*"`` matches any stage).
    stage: str
    #: Task index within a single ``map_list`` call.
    task_index: int
    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Fire on the first ``times`` attempts of the task, then stand
    #: down (so a retry succeeds deterministically).
    times: int = 1
    #: Sleep duration for ``delay`` faults.
    delay: float = DEFAULT_DELAY_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise FaultError(f"unknown fault kind {self.kind!r}; known: {known}")
        if self.task_index < 0:
            raise FaultError("task_index must be >= 0")
        if self.times <= 0:
            raise FaultError("times must be positive")
        if self.delay < 0:
            raise FaultError("delay must be >= 0")

    def matches(self, stage: Optional[str], task_index: int, attempt: int) -> bool:
        if self.stage != "*" and self.stage != stage:
            return False
        return self.task_index == task_index and attempt < self.times

    def describe(self) -> str:
        extra = f" delay={self.delay}s" if self.kind == "delay" else ""
        return (
            f"{self.kind}@{self.stage}[{self.task_index}]"
            f" times={self.times}{extra}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of :class:`FaultSpec`\\ s."""

    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def targets_stage(self, stage: Optional[str]) -> bool:
        """Whether any fault could fire in ``stage``."""
        return any(
            spec.stage == "*" or spec.stage == stage for spec in self.faults
        )

    def match(
        self, stage: Optional[str], task_index: int, attempt: int
    ) -> Optional[FaultSpec]:
        """The first spec that fires for this task attempt, if any."""
        for spec in self.faults:
            if spec.matches(stage, task_index, attempt):
                return spec
        return None

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.faults) or "(empty)"

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        specs = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 3:
                raise FaultError(
                    f"bad fault spec {chunk!r}; expected "
                    "stage:index:kind[:times[:delay]]"
                )
            stage, index_text, kind = parts[0], parts[1], parts[2]
            try:
                task_index = int(index_text)
                times = int(parts[3]) if len(parts) > 3 else 1
                delay = (
                    float(parts[4])
                    if len(parts) > 4
                    else DEFAULT_DELAY_SECONDS
                )
            except ValueError as exc:
                raise FaultError(f"bad fault spec {chunk!r}: {exc}") from exc
            specs.append(
                FaultSpec(
                    stage=stage,
                    task_index=task_index,
                    kind=kind,
                    times=times,
                    delay=delay,
                )
            )
        return cls(tuple(specs))

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or None when unset."""
        text = (environ or os.environ).get(FAULTS_ENV_VAR, "").strip()
        if not text:
            return None
        return cls.parse(text)


# -- ambient stage label ------------------------------------------------------

_stage_state = threading.local()


@contextmanager
def stage_scope(name: str) -> Iterator[None]:
    """Label the current (driver-side) thread as running stage ``name``."""
    previous = getattr(_stage_state, "stage", None)
    _stage_state.stage = name
    try:
        yield
    finally:
        _stage_state.stage = previous


def current_stage() -> Optional[str]:
    """The innermost stage label on this thread, if any."""
    return getattr(_stage_state, "stage", None)


# -- plan installation --------------------------------------------------------

_installed_plan: Optional[FaultPlan] = None
_env_cache: Optional[Tuple[str, FaultPlan]] = None


def install_fault_plan(plan) -> FaultPlan:
    """Install ``plan`` (a :class:`FaultPlan` or spec string) globally."""
    global _installed_plan
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    if not isinstance(plan, FaultPlan):
        raise FaultError(f"not a fault plan: {plan!r}")
    _installed_plan = plan
    return plan


def clear_fault_plan() -> None:
    """Remove any installed plan (``REPRO_FAULTS`` stays authoritative)."""
    global _installed_plan
    _installed_plan = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, else the (cached) ``REPRO_FAULTS`` plan."""
    global _env_cache
    if _installed_plan is not None:
        return _installed_plan
    text = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not text:
        return None
    if _env_cache is None or _env_cache[0] != text:
        _env_cache = (text, FaultPlan.parse(text))
    return _env_cache[1]


# -- execution ---------------------------------------------------------------
#
# Module-level and driven purely by picklable arguments so the process
# backend can ship faulted tasks to its workers.

def run_with_fault(fn, item, spec: Optional[FaultSpec]):
    """Run ``fn(item)``, executing ``spec`` first when one fired.

    ``raise`` faults crash before the task body runs; ``delay`` faults
    sleep first (so a pooled deadline expires), then run the task;
    ``corrupt`` faults run the task and wrap its result in
    :class:`CorruptResult` for the driver's integrity check to catch.
    """
    if spec is None:
        return fn(item)
    if spec.kind == "raise":
        raise InjectedFault(
            f"injected crash: {spec.describe()}"
        )
    if spec.kind == "delay":
        time.sleep(spec.delay)
        return fn(item)
    result = fn(item)
    return CorruptResult(result)
