"""Pluggable execution backends for the dataflow engine.

The paper runs both extractors on Spark, where per-partition work fans
out across a cluster.  :class:`Executor` is the local analogue of that
scheduling layer: it maps a function over a list of partitions and
returns the per-partition results *in partition order*.  Three
backends are provided:

* :class:`SerialExecutor` — the seed behaviour: a plain loop in the
  driver.  Zero overhead, always available.
* :class:`ThreadExecutor` — a ``ThreadPoolExecutor``.  Per-partition
  folds release the GIL only around I/O, but this backend still
  exercises every ordering hazard a real cluster has (partitions
  complete out of order) and wins when partition work is
  C-level-heavy.
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor``.  True
  parallelism; requires picklable tasks.  Unpicklable closures (the
  engine is often driven with lambdas) degrade gracefully to in-driver
  serial execution, counted in
  ``repro.engine.instrument.counters`` under
  ``executor.process_fallbacks`` with the original pickling error
  preserved on the executor (``last_fallback_error``) and in its
  ``repr`` so degraded runs are visible.

Backends are value objects from the dataset's point of view: a
``LocalDataset`` holds one and threads it through every derived
dataset, so an entire lineage runs on the backend of its source.
``resolve_executor`` turns a spec string (``"serial"``, ``"threads"``,
``"threads:8"``, ``"processes:4"``) into an executor; the process-wide
default comes from the ``REPRO_EXECUTOR`` environment variable and
:func:`set_default_executor`.

Failure semantics
-----------------

A cluster loses workers; the local analogue must not lose runs.  An
executor built with a :class:`RetryPolicy` (or wrapped via
:meth:`Executor.with_retry`) runs every task through a supervision
loop: per-attempt deadline (pooled backends), exponential backoff with
deterministic seeded jitter between attempts, and — once retries are
exhausted — an ``on_failure`` escalation chain of
``retry → serial-fallback → skip``:

* ``"raise"`` — re-raise the last error after the retries;
* ``"serial"`` (default) — after retries, run the task once more in
  the driver (rescues pool-level failures: broken pools, unpicklable
  results); raise only if that also fails;
* ``"skip"`` — like ``"serial"``, but a task that still fails yields
  ``None`` in the result list instead of raising.

Every decision ticks a thread-safe counter
(``executor.retries`` / ``executor.timeouts`` /
``executor.task_failures`` / ``executor.serial_rescues`` /
``executor.skipped_tasks`` / ``executor.corrupt_results``), which is
how the chaos suite asserts a fault plan was actually exercised.  The
supervision loop is also where :mod:`repro.engine.faults` injects
crashes, delays, and corrupt results — matching happens in the driver,
execution in the worker.
"""

from __future__ import annotations

import atexit
import os
import pickle
import random
import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.engine import faults
from repro.errors import EngineError

T = TypeVar("T")
U = TypeVar("U")

#: Legal ``RetryPolicy.on_failure`` values, in escalation order.
ON_FAILURE_MODES = ("raise", "serial", "skip")


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision policy for every task an executor runs."""

    #: Extra attempts after the first (``0`` disables retries).
    max_retries: int = 2
    #: Per-attempt deadline in seconds for pooled backends.  ``None``
    #: waits forever.  The serial backend cannot preempt a running
    #: task, so it ignores the deadline (documented limitation).
    task_timeout: Optional[float] = None
    #: First backoff delay, in seconds.
    backoff_base: float = 0.01
    #: Growth factor per attempt.
    backoff_multiplier: float = 2.0
    #: Jitter fraction: each delay is stretched by up to this fraction,
    #: deterministically per ``(seed, task, attempt)``.
    jitter: float = 0.1
    #: Seed for the jitter stream.
    seed: int = 0
    #: Escalation after retries: ``raise`` / ``serial`` / ``skip``.
    on_failure: str = "serial"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise EngineError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise EngineError("task_timeout must be positive when set")
        if self.backoff_base < 0 or self.backoff_multiplier < 1.0:
            raise EngineError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter <= 1.0:
            raise EngineError("jitter must be within [0, 1]")
        if self.on_failure not in ON_FAILURE_MODES:
            known = ", ".join(ON_FAILURE_MODES)
            raise EngineError(
                f"unknown on_failure {self.on_failure!r}; known: {known}"
            )

    @property
    def attempts(self) -> int:
        """Total attempts per task (first run + retries)."""
        return 1 + self.max_retries

    def with_(self, **overrides) -> "RetryPolicy":
        return replace(self, **overrides)


def retry_delay(policy: RetryPolicy, task_index: int, attempt: int) -> float:
    """Backoff before retry number ``attempt`` (1-based) of a task.

    Pure and deterministic: exponential in the attempt number, with a
    jitter factor drawn from an RNG seeded by ``(policy.seed,
    task_index, attempt)``.  Tuple-of-int hashing is stable across
    processes, so a chaos run's sleep schedule is reproducible.
    """
    base = policy.backoff_base * (policy.backoff_multiplier ** (attempt - 1))
    if policy.jitter == 0.0:
        return base
    rng = random.Random(hash((policy.seed, task_index, attempt)))
    return base * (1.0 + policy.jitter * rng.random())


def _counters():
    from repro.engine.instrument import counters

    return counters


class Executor:
    """Maps a callable over partitions; results keep partition order."""

    #: Registry / spec name of the backend.
    name: str = "abstract"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if max_workers is not None and max_workers <= 0:
            raise EngineError("max_workers must be positive")
        self._max_workers = max_workers
        self._retry = retry

    @property
    def workers(self) -> int:
        """Number of workers this backend fans out to."""
        return 1

    @property
    def retry(self) -> Optional[RetryPolicy]:
        """The supervision policy, if one is installed."""
        return self._retry

    def with_retry(self, retry: Optional[RetryPolicy]) -> "Executor":
        """A same-backend executor with ``retry`` installed."""
        return type(self)(max_workers=self._max_workers, retry=retry)

    # -- public mapping -------------------------------------------------------

    def map_list(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        plan = faults.active_fault_plan()
        stage = faults.current_stage()
        if plan is not None and not plan.targets_stage(stage):
            plan = None
        if self._retry is None and plan is None:
            return self._map_plain(fn, items)
        return self._map_supervised(fn, items, plan, stage)

    # -- backend hooks --------------------------------------------------------

    def _map_plain(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        """The fast path: no supervision, no faults (subclass hook)."""
        raise NotImplementedError

    def _submit_attempt(self, fn, item, spec):
        """Start one task attempt; returns a backend-specific handle."""
        raise NotImplementedError

    def _wait(self, handle, timeout: Optional[float]):
        """Resolve a handle from :meth:`_submit_attempt` to a result."""
        raise NotImplementedError

    # -- the supervision loop -------------------------------------------------

    def _map_supervised(
        self,
        fn: Callable[[T], U],
        items: Sequence[T],
        plan: Optional[faults.FaultPlan],
        stage: Optional[str],
    ) -> List[U]:
        # First attempts all launch before any result is awaited, so
        # pooled backends keep their fan-out even under supervision.
        handles = [
            self._submit_attempt(fn, item, self._select_fault(plan, stage, i, 0))
            for i, item in enumerate(items)
        ]
        return [
            self._settle(fn, item, index, handles[index], plan, stage)
            for index, item in enumerate(items)
        ]

    def _select_fault(self, plan, stage, task_index, attempt):
        if plan is None:
            return None
        spec = plan.match(stage, task_index, attempt)
        if spec is not None:
            _counters().add(f"faults.injected_{spec.kind}")
        return spec

    def _settle(self, fn, item, index, handle, plan, stage):
        from concurrent.futures import TimeoutError as FutureTimeout

        policy = self._retry
        attempts = policy.attempts if policy is not None else 1
        timeout = policy.task_timeout if policy is not None else None
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt > 0:
                _counters().add("executor.retries")
                delay = retry_delay(policy, index, attempt)
                if delay > 0:
                    time.sleep(delay)
                handle = self._submit_attempt(
                    fn, item, self._select_fault(plan, stage, index, attempt)
                )
            try:
                result = self._wait(handle, timeout)
            except FutureTimeout as exc:
                _counters().add("executor.timeouts")
                last_error = EngineError(
                    f"task {index} exceeded its {timeout}s deadline"
                )
                last_error.__cause__ = exc
                continue
            except Exception as exc:
                _counters().add("executor.task_failures")
                last_error = exc
                continue
            if isinstance(result, faults.CorruptResult):
                _counters().add("executor.corrupt_results")
                last_error = EngineError(
                    f"task {index} returned a corrupt result"
                )
                continue
            return result
        # Retries exhausted: escalate per the policy.
        mode = policy.on_failure if policy is not None else "raise"
        if mode in ("serial", "skip"):
            _counters().add("executor.serial_rescues")
            try:
                return fn(item)
            except Exception as exc:
                _counters().add("executor.task_failures")
                last_error = exc
        if mode == "skip":
            _counters().add("executor.skipped_tasks")
            return None
        raise last_error  # type: ignore[misc]

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(Executor):
    """In-driver loop; the seed semantics and the safe default."""

    name = "serial"

    def _map_plain(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        return [fn(item) for item in items]

    def _submit_attempt(self, fn, item, spec):
        # Lazy: the supervision loop triggers execution at wait time,
        # which is what lets retries re-run the task.
        return lambda: faults.run_with_fault(fn, item, spec)

    def _wait(self, handle, timeout: Optional[float]):
        # A single-threaded backend cannot preempt a running task, so
        # the deadline is unenforceable here and ignored.
        return handle()


def _default_workers(max_workers: Optional[int]) -> int:
    if max_workers is not None:
        return max_workers
    return max(2, os.cpu_count() or 1)


class _PooledExecutor(Executor):
    """Shared pool plumbing for the thread and process backends."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(max_workers, retry)
        self._pool = None

    @property
    def workers(self) -> int:
        return _default_workers(self._max_workers)

    def _make_pool(self):
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _submit_attempt(self, fn, item, spec):
        return self._ensure_pool().submit(faults.run_with_fault, fn, item, spec)

    def _wait(self, handle, timeout: Optional[float]):
        return handle.result(timeout)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend; partitions complete in arbitrary order."""

    name = "threads"

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.workers)

    def _map_plain(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))


def _warm_worker() -> None:
    """Pool initializer: pre-import the hot modules in each worker.

    The first task a fresh worker runs otherwise pays the full import
    of the type system and the discovery codec *inside* the measured
    region — on small inputs that import tax is most of the wall time
    (the BENCH_PR1 processes-vs-serial regression at 4k records).
    Importing here also re-creates each worker's intern pool and
    primitive singletons before any task needs them.
    """
    import repro.discovery.codec  # noqa: F401
    import repro.discovery.state  # noqa: F401
    import repro.jsontypes.types  # noqa: F401


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend with graceful serial fallback.

    Tasks are pickled to the workers, so the function (and everything
    it closes over) must be picklable; when it is not, the work runs
    serially in the driver and ``executor.process_fallbacks`` is
    incremented — semantics never change, only the fan-out.  The
    triggering error is kept (:attr:`last_fallback_error`, also shown
    in ``repr``) so a silently degraded run can be diagnosed.
    """

    name = "processes"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(max_workers, retry)
        self._last_fallback_error: Optional[str] = None

    @property
    def last_fallback_error(self) -> Optional[str]:
        """The most recent error that forced a serial fallback."""
        return self._last_fallback_error

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.workers, initializer=_warm_worker
        )

    def _note_fallback(self, error: BaseException) -> None:
        self._last_fallback_error = f"{type(error).__name__}: {error}"
        _counters().add("executor.process_fallbacks")

    def _fallback(self, fn, items, error: BaseException):
        self._note_fallback(error)
        return [fn(item) for item in items]

    def _unpicklable(self, fn) -> Optional[BaseException]:
        try:
            pickle.dumps(fn)
        except Exception as exc:
            return exc
        return None

    def _map_plain(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        pickling_error = self._unpicklable(fn)
        if pickling_error is not None:
            return self._fallback(fn, items, pickling_error)
        try:
            return list(self._ensure_pool().map(fn, items))
        except Exception as exc:
            # A task that failed to round-trip (unpicklable argument or
            # result, broken pool) must not poison the next call.
            self.close()
            return self._fallback(fn, items, exc)

    def _map_supervised(self, fn, items, plan, stage):
        # Unpicklable work cannot reach the pool at all: degrade to the
        # serial backend's supervision (same retry/fault semantics,
        # in-driver execution) and record why.
        pickling_error = self._unpicklable(fn)
        if pickling_error is not None:
            self._note_fallback(pickling_error)
            rescue = SerialExecutor(retry=self._retry)
            return rescue._map_supervised(fn, items, plan, stage)
        return super()._map_supervised(fn, items, plan, stage)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        degraded = (
            f" degraded={self._last_fallback_error!r}"
            if self._last_fallback_error
            else ""
        )
        return f"<{type(self).__name__} workers={self.workers}{degraded}>"


_BACKENDS = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}

#: Singular spellings accepted in specs (``REPRO_EXECUTOR=process``)
#: but not advertised by :func:`executor_names`.
_BACKEND_ALIASES = {
    "thread": ThreadExecutor.name,
    "process": ProcessExecutor.name,
}

#: Environment variable consulted for the process-wide default backend.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

_default_executor: Optional[Executor] = None


def executor_names() -> List[str]:
    """The registered backend names, in definition order."""
    return list(_BACKENDS)


def resolve_executor(spec) -> Executor:
    """Turn a spec into an :class:`Executor`.

    Accepts an existing executor (returned as-is), ``None`` (the
    process default), or a string ``"<name>"`` / ``"<name>:<workers>"``.
    """
    if spec is None:
        return default_executor()
    if isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise EngineError(f"not an executor spec: {spec!r}")
    name, _, workers = spec.partition(":")
    name = name.strip()
    backend = _BACKENDS.get(_BACKEND_ALIASES.get(name, name))
    if backend is None:
        known = ", ".join(executor_names())
        raise EngineError(f"unknown executor {name!r}; known: {known}")
    if workers:
        try:
            count = int(workers)
        except ValueError:
            raise EngineError(f"bad worker count in executor spec {spec!r}")
        return backend(max_workers=count)
    return backend()


def default_executor() -> Executor:
    """The process-wide default backend (``REPRO_EXECUTOR`` or serial)."""
    global _default_executor
    if _default_executor is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR, SerialExecutor.name)
        _default_executor = resolve_executor(spec)
    return _default_executor


def set_default_executor(spec) -> Executor:
    """Install the default backend for datasets created without one."""
    global _default_executor
    _default_executor = resolve_executor(spec)
    return _default_executor


@atexit.register
def _close_default_executor() -> None:
    # Pool-backed defaults (e.g. REPRO_EXECUTOR=process) must shut
    # down before the interpreter tears down module globals, or the
    # pool's management thread dies noisily mid-cleanup.
    global _default_executor
    if _default_executor is not None:
        _default_executor.close()
        _default_executor = None
