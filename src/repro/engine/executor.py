"""Pluggable execution backends for the dataflow engine.

The paper runs both extractors on Spark, where per-partition work fans
out across a cluster.  :class:`Executor` is the local analogue of that
scheduling layer: it maps a function over a list of partitions and
returns the per-partition results *in partition order*.  Three
backends are provided:

* :class:`SerialExecutor` — the seed behaviour: a plain loop in the
  driver.  Zero overhead, always available.
* :class:`ThreadExecutor` — a ``ThreadPoolExecutor``.  Per-partition
  folds release the GIL only around I/O, but this backend still
  exercises every ordering hazard a real cluster has (partitions
  complete out of order) and wins when partition work is
  C-level-heavy.
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor``.  True
  parallelism; requires picklable tasks.  Unpicklable closures (the
  engine is often driven with lambdas) degrade gracefully to in-driver
  serial execution, counted in
  ``repro.engine.instrument.counters`` under
  ``executor.process_fallbacks``.

Backends are value objects from the dataset's point of view: a
``LocalDataset`` holds one and threads it through every derived
dataset, so an entire lineage runs on the backend of its source.
``resolve_executor`` turns a spec string (``"serial"``, ``"threads"``,
``"threads:8"``, ``"processes:4"``) into an executor; the process-wide
default comes from the ``REPRO_EXECUTOR`` environment variable and
:func:`set_default_executor`.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import EngineError

T = TypeVar("T")
U = TypeVar("U")


class Executor:
    """Maps a callable over partitions; results keep partition order."""

    #: Registry / spec name of the backend.
    name: str = "abstract"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers <= 0:
            raise EngineError("max_workers must be positive")
        self._max_workers = max_workers

    @property
    def workers(self) -> int:
        """Number of workers this backend fans out to."""
        return 1

    def map_list(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(Executor):
    """In-driver loop; the seed semantics and the safe default."""

    name = "serial"

    def map_list(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        return [fn(item) for item in items]


def _default_workers(max_workers: Optional[int]) -> int:
    if max_workers is not None:
        return max_workers
    return max(2, os.cpu_count() or 1)


class ThreadExecutor(Executor):
    """Thread-pool backend; partitions complete in arbitrary order."""

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None):
        super().__init__(max_workers)
        self._pool = None

    @property
    def workers(self) -> int:
        return _default_workers(self._max_workers)

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map_list(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Process-pool backend with graceful serial fallback.

    Tasks are pickled to the workers, so the function (and everything
    it closes over) must be picklable; when it is not, the work runs
    serially in the driver and ``executor.process_fallbacks`` is
    incremented — semantics never change, only the fan-out.
    """

    name = "processes"

    def __init__(self, max_workers: Optional[int] = None):
        super().__init__(max_workers)
        self._pool = None

    @property
    def workers(self) -> int:
        return _default_workers(self._max_workers)

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _fallback(self, fn, items):
        from repro.engine.instrument import counters

        counters.add("executor.process_fallbacks")
        return [fn(item) for item in items]

    def map_list(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        try:
            pickle.dumps(fn)
        except Exception:
            return self._fallback(fn, items)
        try:
            return list(self._ensure_pool().map(fn, items))
        except Exception:
            # A task that failed to round-trip (unpicklable argument or
            # result, broken pool) must not poison the next call.
            self.close()
            return self._fallback(fn, items)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_BACKENDS = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}

#: Environment variable consulted for the process-wide default backend.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

_default_executor: Optional[Executor] = None


def executor_names() -> List[str]:
    """The registered backend names, in definition order."""
    return list(_BACKENDS)


def resolve_executor(spec) -> Executor:
    """Turn a spec into an :class:`Executor`.

    Accepts an existing executor (returned as-is), ``None`` (the
    process default), or a string ``"<name>"`` / ``"<name>:<workers>"``.
    """
    if spec is None:
        return default_executor()
    if isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise EngineError(f"not an executor spec: {spec!r}")
    name, _, workers = spec.partition(":")
    backend = _BACKENDS.get(name.strip())
    if backend is None:
        known = ", ".join(executor_names())
        raise EngineError(f"unknown executor {name!r}; known: {known}")
    if workers:
        try:
            count = int(workers)
        except ValueError:
            raise EngineError(f"bad worker count in executor spec {spec!r}")
        return backend(max_workers=count)
    return backend()


def default_executor() -> Executor:
    """The process-wide default backend (``REPRO_EXECUTOR`` or serial)."""
    global _default_executor
    if _default_executor is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR, SerialExecutor.name)
        _default_executor = resolve_executor(spec)
    return _default_executor


def set_default_executor(spec) -> Executor:
    """Install the default backend for datasets created without one."""
    global _default_executor
    _default_executor = resolve_executor(spec)
    return _default_executor
