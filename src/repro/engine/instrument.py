"""Instrumentation: timers, pass counters, perf counters, and memory.

Table 5 (runtime) and Figure 5 (memory) both need honest, repeatable
measurement.  :class:`StageTimer` collects wall-clock per named stage;
:func:`deep_size_bytes` estimates the resident size of nested Python
structures (with cycle protection and shared-object deduplication).

:class:`Counters` is the engine's lightweight event-counter registry
(the module-level :data:`counters` singleton); :func:`perf_counters`
additionally gathers the optimisation-layer statistics — type-intern
hits, similarity-cache hits, counted-merge distinct ratios — that the
``bench_perf_core`` benchmark reports into ``BENCH_PR1.json``.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple


class Counters:
    """A mergeable bag of named numeric counters.

    Thread-safe: the entity-discovery layer flushes aggregated counts
    from executor worker threads, so the read-modify-write in
    :meth:`add` takes a lock.  Callers keep counters cheap by
    accumulating locally and adding once per logical operation, not
    once per event.
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}
        self._lock = threading.Lock()

    def add(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + amount

    def set(self, name: str, value: float) -> None:
        with self._lock:
            self._values[name] = value

    def get(self, name: str, default: float = 0) -> float:
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{name}={value}" for name, value in sorted(self._values.items())
        )
        return f"<Counters {body}>"


#: Process-wide engine counters (executor fallbacks, merge ratios, ...).
counters = Counters()


def perf_counters() -> Dict[str, float]:
    """One flat snapshot of every performance counter in the system.

    Combines the engine's :data:`counters` with the jsontypes layer's
    interning and similarity-cache statistics (imported lazily to keep
    this module dependency-free at import time).
    """
    snapshot = counters.snapshot()
    from repro.jsontypes.similarity import similarity_cache_stats
    from repro.jsontypes.types import intern_stats

    # Added (not assigned): process-pool shard workers flush their own
    # intern/similarity deltas into ``counters`` under these same keys
    # on shard completion, and the driver's local cache stats must not
    # clobber them.
    for name, value in intern_stats().items():
        key = f"intern.{name}"
        snapshot[key] = snapshot.get(key, 0) + value
    for name, value in similarity_cache_stats().items():
        key = f"similarity.{name}"
        snapshot[key] = snapshot.get(key, 0) + value
    return snapshot


def reset_perf_counters() -> None:
    """Zero the engine counters and the jsontypes-layer caches' stats."""
    counters.reset()
    from repro.jsontypes.similarity import reset_similarity_cache_stats
    from repro.jsontypes.types import reset_intern_stats

    reset_intern_stats()
    reset_similarity_cache_stats()


class StageTimer:
    """Accumulates wall-clock time per named pipeline stage.

    Entering a stage also labels the thread via
    :func:`repro.engine.faults.stage_scope`, so every timed stage name
    doubles as a fault-injection target for the chaos suite.
    """

    def __init__(self) -> None:
        self._elapsed: "OrderedDict[str, float]" = OrderedDict()
        self._counts: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        from repro.engine.faults import stage_scope

        start = time.perf_counter()
        try:
            with stage_scope(name):
                yield
        finally:
            duration = time.perf_counter() - start
            self._elapsed[name] = self._elapsed.get(name, 0.0) + duration
            self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self._elapsed.get(name, 0.0)

    def milliseconds(self, name: str) -> float:
        return 1000.0 * self.seconds(name)

    @property
    def total_seconds(self) -> float:
        return sum(self._elapsed.values())

    @property
    def total_milliseconds(self) -> float:
        return 1000.0 * self.total_seconds

    def rows(self) -> List[Tuple[str, float, int]]:
        """(stage, milliseconds, invocation count) per stage, in order."""
        return [
            (name, 1000.0 * elapsed, self._counts[name])
            for name, elapsed in self._elapsed.items()
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{name}={1000.0 * elapsed:.1f}ms"
            for name, elapsed in self._elapsed.items()
        )
        return f"<StageTimer {body}>"


def deep_size_bytes(obj: object) -> int:
    """Approximate recursive ``sys.getsizeof`` with sharing awareness.

    Each distinct object (by identity) is counted once, so aliased
    substructures — interned strings, shared tuples — do not inflate
    the estimate.
    """
    seen: set = set()
    stack: List[object] = [obj]
    total = 0
    while stack:
        current = stack.pop()
        identity = id(current)
        if identity in seen:
            continue
        seen.add(identity)
        total += sys.getsizeof(current)
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        elif hasattr(current, "__dict__"):
            stack.append(current.__dict__)
        elif hasattr(current, "__slots__"):
            for slot in current.__slots__:
                if hasattr(current, slot):
                    stack.append(getattr(current, slot))
    return total
