"""Sharded multi-process discovery over byte-range shards of a file.

PR 4 made every discovery algorithm a fold into a serializable monoid
``DiscoveryState``; BENCH_PR1/PR6 showed the process backend still
losing on the end-to-end workload because the driver parsed the whole
file, pickled record lists to workers, and got live Python objects
back.  This module removes the driver from the data path entirely:

* **Planning** (:func:`plan_shards`) splits the input into
  newline-aligned byte ranges using the fused reader's mmap'd line
  source — O(shards) ``find`` calls, no records materialized.  Files
  that cannot be range-split (gzip, empty) become one whole-file
  shard.
* **Per-shard discovery** (:func:`_run_shard`, the picklable worker
  body) runs in warm-started worker processes.  Each worker ingests
  its own byte range directly (fused path by default, building its
  own intern pool and shape cache), folds the range into a
  :class:`~repro.jsontypes.bag.CountedBag`, absorbs the bag into a
  fresh state at per-*distinct*-type cost, and ships back the state's
  ``to_bytes()`` — codec bytes, not a pickled object graph.
* **Tree-merge**: the driver decodes the partials and merges them in
  shard-index order with configurable fan-in.  Merge associativity is
  byte-exact (property-tested), so any fan-in yields bytes identical
  to a serial left fold — which in turn equals a plain serial scan,
  because shard ranges partition the file in order and
  ``CountedBag.merge`` preserves first-occurrence order.
* **Failure model**: shard tasks run under the executor's PR-3
  supervision (retry → serial rescue → skip), and stage names
  (``shard-plan`` / ``shard-discover`` / ``shard-merge``) are fault
  targets for the chaos suite.  With a ``checkpoint_dir``, each
  completed shard persists an atomic state file plus a report
  sidecar, guarded by a manifest binding them to the input and
  parameters; a killed run re-uses every completed shard's checkpoint
  and recomputes only the rest, byte-identical to an uninterrupted
  run.

Counter accounting survives the process boundary: each worker
snapshots the engine counters and the jsontypes intern/similarity
statistics around its shard and ships the *deltas* home with the
result; the driver folds in deltas only from results produced by a
different process (same-process backends already mutated the shared
singleton).  ``counters.snapshot()`` and ``perf_counters()`` are
therefore accurate under every backend.

One documented asymmetry: within a shard, line numbers are relative
to the shard's byte range.  ``skip``/``collect`` reports are re-based
to exact whole-file line numbers by
:func:`repro.io.jsonlines.merge_ingest_reports`; a ``raise``-policy
error message, however, names the shard-relative line (its byte
offset is unavailable at raise time).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.engine.executor import Executor, resolve_executor
from repro.engine.instrument import StageTimer, counters
from repro.errors import CheckpointError, EngineError

#: Default merge fan-in for the driver-side partial tree.
DEFAULT_MERGE_FANIN = 2

#: Floor on bytes per shard when sizing shard counts adaptively.
#: Below this, per-task dispatch (process pickle + queue hops)
#: dominates the range's fold work.
MIN_SHARD_BYTES = 1 << 18

#: Adaptive shard counts target this many shards per worker, so a
#: slow shard does not leave the rest of the pool idle at the tail.
SHARDS_PER_WORKER = 2

#: Manifest file name inside a shard checkpoint directory.
MANIFEST_NAME = "manifest.json"

#: Version 2: manifests carry an ``enrich`` key and state files are
#: codec-version-2 bytes (enrichment-capable).
_MANIFEST_VERSION = 2


def default_shard_count(file_size: int, workers: int) -> int:
    """Adaptive shard count from the file size and the worker count.

    :data:`SHARDS_PER_WORKER` shards per worker for tail latency,
    but never so many that a shard falls under
    :data:`MIN_SHARD_BYTES` — small files collapse toward a single
    shard, where serial dispatch wins.  The byte-range analogue of
    :func:`repro.engine.dataset.adaptive_partitions`.
    """
    if file_size <= 0:
        return 1
    by_size = max(1, file_size // MIN_SHARD_BYTES)
    return max(1, min(max(1, workers) * SHARDS_PER_WORKER, by_size))


@dataclass(frozen=True)
class ShardPlan:
    """The byte-range decomposition of one input file."""

    path: str
    file_size: int
    #: ``(start, end)`` byte ranges in file order.  A single
    #: ``(0, None)`` range means the file could not be range-split
    #: (gzip, empty, unmappable) and is read whole by one shard.
    ranges: Tuple[Tuple[int, Optional[int]], ...]

    @property
    def shard_count(self) -> int:
        return len(self.ranges)

    @property
    def splittable(self) -> bool:
        return self.ranges != ((0, None),)


def plan_shards(path, shards: Optional[int], workers: int) -> ShardPlan:
    """Compute a :class:`ShardPlan` without reading any records.

    ``shards=None`` sizes the count adaptively via
    :func:`default_shard_count`.
    """
    from repro.io.fastpath import split_byte_ranges

    path = os.fspath(path)
    try:
        file_size = os.path.getsize(path)
    except OSError:
        file_size = 0
    if shards is None:
        shards = default_shard_count(file_size, workers)
    elif shards < 1:
        raise EngineError(f"shards must be >= 1, got {shards}")
    ranges = split_byte_ranges(path, shards) if shards > 1 else None
    if shards == 1 or ranges is None:
        return ShardPlan(path=path, file_size=file_size, ranges=((0, None),))
    return ShardPlan(
        path=path, file_size=file_size, ranges=tuple(ranges)
    )


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order (picklable; crosses the pool boundary).

    ``algorithm`` is empty for record-level ingestion tasks
    (:func:`ingest_shard`), which read a range without discovering.
    """

    index: int
    path: str
    start: int
    end: Optional[int]
    algorithm: str = ""
    config: Optional[object] = None
    on_bad_record: str = "raise"
    ingest: str = "fused"
    checkpoint_dir: Optional[str] = None
    #: Parsed :class:`~repro.discovery.sketches.EnrichmentOptions`
    #: (frozen, picklable) or ``None``.  Enriched shards ingest with
    #: the typed reader — sketches need the parsed values, so the
    #: structural-hash fast path and the bag fold don't apply.
    enrich: Optional[object] = None


@dataclass
class ShardResult:
    """One shard's outcome (picklable; returned from the pool)."""

    index: int
    #: The shard's serialized ``DiscoveryState`` (codec bytes).
    state_bytes: bytes
    #: Shard-relative ingestion report (absolute byte offsets).
    report: object
    #: Counter deltas accumulated while running this shard, including
    #: ``intern.*`` / ``similarity.*`` cache statistics.
    counter_deltas: dict = field(default_factory=dict)
    #: PID of the process that produced the result; the driver flushes
    #: ``counter_deltas`` only when this differs from its own PID.
    worker_pid: int = 0
    #: Whether the result was loaded from a per-shard checkpoint.
    resumed: bool = False


def _perf_snapshot() -> dict:
    """Engine counters + intern/similarity cache stats, one flat dict."""
    from repro.jsontypes.similarity import similarity_cache_stats
    from repro.jsontypes.types import intern_stats

    snapshot = counters.snapshot()
    for name, value in intern_stats().items():
        snapshot[f"intern.{name}"] = snapshot.get(f"intern.{name}", 0) + value
    for name, value in similarity_cache_stats().items():
        key = f"similarity.{name}"
        snapshot[key] = snapshot.get(key, 0) + value
    return snapshot


def _snapshot_delta(before: dict, after: dict) -> dict:
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def _shard_state_path(checkpoint_dir: str, index: int) -> str:
    return os.path.join(checkpoint_dir, f"shard-{index:05d}.state")


def _shard_report_path(checkpoint_dir: str, index: int) -> str:
    return os.path.join(checkpoint_dir, f"shard-{index:05d}.report.json")


def _report_to_json(report) -> dict:
    return {
        "path": report.path,
        "policy": report.policy,
        "total_lines": report.total_lines,
        "record_count": report.record_count,
        "bad_records": [
            {
                "line_number": bad.line_number,
                "byte_offset": bad.byte_offset,
                "error": bad.error,
                "payload": bad.payload,
            }
            for bad in report.bad_records
        ],
    }


def _report_from_json(payload: dict):
    from repro.io.jsonlines import BadRecord, IngestReport

    report = IngestReport(
        path=payload["path"],
        policy=payload["policy"],
        total_lines=payload["total_lines"],
        record_count=payload["record_count"],
    )
    report.bad_records = [
        BadRecord(
            line_number=bad["line_number"],
            byte_offset=bad["byte_offset"],
            error=bad["error"],
            payload=bad["payload"],
        )
        for bad in payload["bad_records"]
    ]
    return report


def _atomic_write(path: str, payload: bytes) -> None:
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
    os.replace(tmp_path, path)


def _load_shard_checkpoint(task: ShardTask) -> Optional[ShardResult]:
    """A completed shard's persisted result, or ``None``."""
    state_path = _shard_state_path(task.checkpoint_dir, task.index)
    report_path = _shard_report_path(task.checkpoint_dir, task.index)
    if not (os.path.exists(state_path) and os.path.exists(report_path)):
        return None
    with open(state_path, "rb") as handle:
        state_bytes = handle.read()
    with open(report_path, "r", encoding="utf-8") as handle:
        report = _report_from_json(json.load(handle))
    return ShardResult(
        index=task.index,
        state_bytes=state_bytes,
        report=report,
        worker_pid=os.getpid(),
        resumed=True,
    )


def ingest_shard(task: ShardTask):
    """Read one shard's records (no discovery): ``(index, records,
    report)``.

    The record-level sibling of :func:`_run_shard`, for consumers
    that need the records themselves
    (:meth:`~repro.engine.dataset.LocalDataset.from_jsonlines_sharded`).
    Note the records cross the pool boundary as pickled objects — far
    heavier than state bytes — so discovery should go through
    :class:`ShardCoordinator` instead.
    """
    from repro.io.jsonlines import IngestReport

    report = IngestReport(path=task.path, policy=task.on_bad_record)
    if task.ingest == "fused":
        from repro.io.fastpath import read_jsonlines_fused

        records = list(
            read_jsonlines_fused(
                task.path,
                on_bad_record=task.on_bad_record,
                report=report,
                start=task.start,
                end=task.end,
            )
        )
    else:
        from repro.io.jsonlines import read_jsonlines

        records = list(
            read_jsonlines(
                task.path,
                on_bad_record=task.on_bad_record,
                report=report,
                start=task.start,
                end=task.end,
            )
        )
    return task.index, records, report


def _run_shard(task: ShardTask) -> ShardResult:
    """The worker body: one shard's range → serialized state partial.

    Module-level and argument-picklable, so the process backend ships
    it for real.  Reads the byte range with the selected reader, folds
    it into a :class:`~repro.jsontypes.bag.CountedBag`, and absorbs
    the bag — byte-identical to per-record absorption (bag order is
    first-occurrence order) at per-distinct-type cost.
    """
    if task.checkpoint_dir is not None:
        cached = _load_shard_checkpoint(task)
        if cached is not None:
            counters.add("sharding.shards_resumed")
            cached.counter_deltas = {"sharding.shards_resumed": 1}
            return cached

    from repro.discovery.state import state_for_algorithm
    from repro.io.jsonlines import IngestReport
    from repro.jsontypes.bag import CountedBag

    before = _perf_snapshot()
    report = IngestReport(path=task.path, policy=task.on_bad_record)
    end = task.end
    state = state_for_algorithm(
        task.algorithm, task.config, enrich=task.enrich
    )
    if task.enrich is not None:
        # Enrichment needs every record's parsed value, so the shard
        # folds per record through the typed reader instead of through
        # the bag.  Per-record absorption and the bag fold are
        # byte-identical on the structural side (bag order is
        # first-occurrence order), so enriched partials still strip to
        # the plain partials' bytes.
        if task.ingest == "fused":
            from repro.io.fastpath import read_jsonlines_typed

            for tau, value in read_jsonlines_typed(
                task.path,
                on_bad_record=task.on_bad_record,
                report=report,
                start=task.start,
                end=end,
            ):
                state.absorb_typed(tau, value)
        else:
            from repro.io.jsonlines import read_jsonlines

            for value in read_jsonlines(
                task.path,
                on_bad_record=task.on_bad_record,
                report=report,
                start=task.start,
                end=end,
            ):
                state.absorb(value)
    elif task.ingest == "fused":
        from repro.io.fastpath import read_jsonlines_fused

        bag = CountedBag()
        for tau in read_jsonlines_fused(
            task.path,
            on_bad_record=task.on_bad_record,
            report=report,
            start=task.start,
            end=end,
        ):
            bag.add(tau)
        state.absorb_bag(bag)
    else:
        from repro.io.jsonlines import read_jsonlines
        from repro.jsontypes.types import type_of

        bag = CountedBag()
        for value in read_jsonlines(
            task.path,
            on_bad_record=task.on_bad_record,
            report=report,
            start=task.start,
            end=end,
        ):
            bag.add(type_of(value))
        state.absorb_bag(bag)
    state_bytes = state.to_bytes()
    counters.add("sharding.shards_completed")
    deltas = _snapshot_delta(before, _perf_snapshot())
    result = ShardResult(
        index=task.index,
        state_bytes=state_bytes,
        report=report,
        counter_deltas=deltas,
        worker_pid=os.getpid(),
    )
    if task.checkpoint_dir is not None:
        _atomic_write(
            _shard_state_path(task.checkpoint_dir, task.index), state_bytes
        )
        _atomic_write(
            _shard_report_path(task.checkpoint_dir, task.index),
            json.dumps(_report_to_json(report), sort_keys=True).encode(
                "utf-8"
            ),
        )
    return result


@dataclass
class ShardRunResult:
    """Everything a sharded discovery run produced."""

    #: The merged :class:`~repro.discovery.state.DiscoveryState`.
    state: object
    #: Whole-file ingestion report (exact line numbers re-based from
    #: the per-shard reports).
    report: object
    plan: ShardPlan
    #: Shards whose results were loaded from per-shard checkpoints.
    resumed_shards: int = 0
    #: Shards dropped by a ``skip``-escalation supervision policy.
    skipped_shards: int = 0
    #: Total serialized partial payload shipped back to the driver.
    partial_bytes: int = 0

    @property
    def shard_count(self) -> int:
        return self.plan.shard_count


class ShardCoordinator:
    """Plans, dispatches, and merges a sharded discovery run.

    The coordinator owns no pool of its own: it fans shard tasks out
    through a PR-1 :class:`~repro.engine.executor.Executor` (any
    backend, including supervised ones), which is what gives sharded
    runs retry/rescue and fault-injection for free.
    """

    def __init__(
        self,
        algorithm: str,
        config=None,
        *,
        executor=None,
        shards: Optional[int] = None,
        merge_fanin: int = DEFAULT_MERGE_FANIN,
        on_bad_record: str = "raise",
        ingest: str = "fused",
        checkpoint_dir=None,
        enrich=None,
    ) -> None:
        from repro.discovery.sketches import parse_enrich_spec
        from repro.io.jsonlines import _check_ingest_mode, _check_policy

        _check_policy(on_bad_record)
        _check_ingest_mode(ingest)
        if merge_fanin < 2:
            raise EngineError(
                f"merge_fanin must be >= 2, got {merge_fanin}"
            )
        self.enrich = parse_enrich_spec(enrich)
        # Instantiating the empty state up front validates the
        # algorithm name and configuration before any fan-out.
        from repro.discovery.state import state_for_algorithm

        state_for_algorithm(algorithm, config, enrich=self.enrich)
        self.algorithm = algorithm
        self.config = config
        self.executor: Executor = resolve_executor(executor)
        self.shards = shards
        self.merge_fanin = merge_fanin
        self.on_bad_record = on_bad_record
        self.ingest = ingest
        self.checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )

    # -- fan-out ---------------------------------------------------------------

    def map_shards(self, fn, tasks: Sequence) -> List:
        """Dispatch shard tasks through the executor (fault target:
        the surrounding stage's name)."""
        return self.executor.map_list(fn, tasks)

    # -- checkpoint manifest ---------------------------------------------------

    def _manifest(self, plan: ShardPlan) -> dict:
        from repro.discovery.state import state_for_algorithm

        fingerprint = state_for_algorithm(
            self.algorithm, self.config, enrich=self.enrich
        ).to_bytes()
        return {
            "version": _MANIFEST_VERSION,
            "path": plan.path,
            "file_size": plan.file_size,
            "algorithm": self.algorithm,
            "on_bad_record": self.on_bad_record,
            "ingest": self.ingest,
            # Feature names only; sketch geometry is bound through
            # ``empty_state_hex`` (an enriched empty state serializes
            # its options).
            "enrich": self.enrich.spec() if self.enrich else None,
            "empty_state_hex": fingerprint.hex(),
            "ranges": [[start, end] for start, end in plan.ranges],
        }

    def _prepare_checkpoint_dir(self, plan: ShardPlan) -> None:
        """Create/validate the shard checkpoint directory.

        The manifest binds the per-shard files to this exact input and
        parameter set (including the shard ranges — resuming with a
        different shard count would silently mis-split the file), so a
        stale directory fails loudly instead of merging wrong shards.
        """
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        manifest_path = os.path.join(self.checkpoint_dir, MANIFEST_NAME)
        manifest = self._manifest(plan)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing != manifest:
                raise CheckpointError(
                    f"shard checkpoint dir {self.checkpoint_dir!r} was "
                    "built for a different input or parameter set; "
                    "remove it (or point elsewhere) to start fresh"
                )
            return
        _atomic_write(
            manifest_path,
            json.dumps(manifest, sort_keys=True).encode("utf-8"),
        )

    # -- the run ---------------------------------------------------------------

    def run(self, path, *, timer: Optional[StageTimer] = None) -> ShardRunResult:
        """Discover ``path``'s schema state via sharded fan-out.

        Returns a :class:`ShardRunResult` whose ``state`` bytes equal
        a serial whole-file run's for every algorithm and fan-in.
        """
        timer = timer if timer is not None else StageTimer()
        with timer.stage("shard-plan"):
            plan = plan_shards(path, self.shards, self.executor.workers)
            if self.checkpoint_dir is not None:
                self._prepare_checkpoint_dir(plan)
            tasks = [
                ShardTask(
                    index=index,
                    path=plan.path,
                    start=start,
                    end=end,
                    algorithm=self.algorithm,
                    config=self.config,
                    on_bad_record=self.on_bad_record,
                    ingest=self.ingest,
                    checkpoint_dir=self.checkpoint_dir,
                    enrich=self.enrich,
                )
                for index, (start, end) in enumerate(plan.ranges)
            ]
        with timer.stage("shard-discover"):
            # Shard workers intern types into the module-level
            # hash-cons table by design (idempotent canonical values;
            # per-process tables in the process backend).
            results = self.map_shards(_run_shard, tasks)  # repro-lint: disable=R9
        with timer.stage("shard-merge"):
            run_result = self._merge_results(plan, results)
        counters.add("sharding.runs")
        counters.add("sharding.shards", plan.shard_count)
        return run_result

    def _merge_results(
        self, plan: ShardPlan, results: List[Optional[ShardResult]]
    ) -> ShardRunResult:
        from repro.discovery.state import DiscoveryState, state_for_algorithm
        from repro.io.jsonlines import merge_ingest_reports

        driver_pid = os.getpid()
        settled = [result for result in results if result is not None]
        skipped = len(results) - len(settled)
        if skipped:
            counters.add("sharding.skipped_shards", skipped)
        for result in settled:
            if result.worker_pid != driver_pid:
                # Same-process results (serial/thread backends, rescue
                # re-runs) already mutated the shared counters; only
                # true cross-process results carry unflushed deltas.
                for name, value in result.counter_deltas.items():
                    counters.add(name, value)
        partial_bytes = sum(len(result.state_bytes) for result in settled)
        counters.add("sharding.partial_bytes", partial_bytes)
        # Decode once, then tree-merge in shard-index order.  Merge is
        # byte-associative, so any fan-in produces the bytes of the
        # in-order left fold — i.e. of a serial scan of the file.
        level = [
            DiscoveryState.from_bytes(result.state_bytes)
            for result in sorted(settled, key=lambda result: result.index)
        ]
        while len(level) > 1:
            merged_level = []
            for start in range(0, len(level), self.merge_fanin):
                group = level[start:start + self.merge_fanin]
                acc = group[0]
                for state in group[1:]:
                    acc = acc.merge(state)
                    counters.add("sharding.merges")
                merged_level.append(acc)
            level = merged_level
        state = (
            level[0]
            if level
            else state_for_algorithm(
                self.algorithm, self.config, enrich=self.enrich
            )
        )
        report = merge_ingest_reports(
            [
                result.report
                for result in sorted(
                    settled, key=lambda result: result.index
                )
            ],
            path=plan.path,
            policy=self.on_bad_record,
        )
        return ShardRunResult(
            state=state,
            report=report,
            plan=plan,
            resumed_shards=sum(
                1 for result in settled if result.resumed
            ),
            skipped_shards=skipped,
            partial_bytes=partial_bytes,
        )


def discover_sharded(
    path,
    algorithm: str,
    config=None,
    *,
    executor=None,
    shards: Optional[int] = None,
    merge_fanin: int = DEFAULT_MERGE_FANIN,
    on_bad_record: str = "raise",
    ingest: str = "fused",
    checkpoint_dir=None,
    enrich=None,
    timer: Optional[StageTimer] = None,
) -> ShardRunResult:
    """One-call sharded discovery (see :class:`ShardCoordinator`)."""
    coordinator = ShardCoordinator(
        algorithm,
        config,
        executor=executor,
        shards=shards,
        merge_fanin=merge_fanin,
        on_bad_record=on_bad_record,
        ingest=ingest,
        checkpoint_dir=checkpoint_dir,
        enrich=enrich,
    )
    return coordinator.run(path, timer=timer)
