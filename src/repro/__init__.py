"""repro — a reproduction of "Reducing Ambiguity in Json Schema Discovery".

JXPLAIN (SIGMOD 2021) is an ambiguity-aware JSON schema discovery
system: instead of the data-independent assumptions used in production
extractors ("arrays are collections, objects are tuples, a collection
holds one entity"), it decides per path — via entropy and similarity
heuristics — whether a nested structure is a collection or a tuple, and
partitions tuple-like bags into entities with Bimax bi-clustering.

Quickstart::

    from repro import Jxplain, render

    records = [
        {"ts": 7, "event": "login", "user": {"name": "Ada"}},
        {"ts": 8, "event": "serve", "files": ["a.txt", "b.txt"]},
    ]
    schema = Jxplain().discover(records)
    print(render(schema))
    schema.admits_value({"ts": 9, "event": "login", "user": {"name": "Bo"}})

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from repro.discovery import (
    Discoverer,
    EntityStrategy,
    Jxplain,
    JxplainConfig,
    JxplainNaive,
    JxplainPipeline,
    KReduce,
    LReduce,
    StreamingJxplain,
    StreamingKReduce,
    discoverer_names,
    find_coreferences,
    jxplain_merge,
    make_discoverer,
    merge_k,
    merge_naive,
)
from repro.jsontypes import JsonType, JsonValue, Kind, type_of
from repro.schema import (
    Schema,
    from_json_schema,
    render,
    sample_value,
    schema_entropy,
    schema_to_markdown,
    to_json_schema,
)
from repro.validation import (
    ValidationReport,
    diff_schemas,
    validate_records,
)

__version__ = "1.0.0"

__all__ = [
    "Discoverer",
    "EntityStrategy",
    "JsonType",
    "JsonValue",
    "Jxplain",
    "JxplainConfig",
    "JxplainNaive",
    "JxplainPipeline",
    "KReduce",
    "Kind",
    "LReduce",
    "Schema",
    "StreamingJxplain",
    "StreamingKReduce",
    "ValidationReport",
    "diff_schemas",
    "find_coreferences",
    "__version__",
    "discoverer_names",
    "from_json_schema",
    "jxplain_merge",
    "make_discoverer",
    "merge_k",
    "merge_naive",
    "render",
    "sample_value",
    "schema_entropy",
    "schema_to_markdown",
    "to_json_schema",
    "type_of",
    "validate_records",
]
