"""Project symbol table and call graph (the interprocedural substrate).

The whole-program rules (R8–R10) need to see *through* calls: a helper
returning ``set(...)`` two modules away must taint the codec writer
that eventually iterates it.  This module supplies the substrate in
two phases that mirror the driver's caching model:

* **Per-file extraction** (:func:`extract_module_facts`) runs inside
  the executor workers and produces a plain JSON-serializable facts
  dict — module identity, imports, classes/methods, top-level
  functions, and module-level ``functools.partial`` task bindings.
  Facts are pure functions of the file content, so they live in the
  per-file content-hash cache like any other rule output.

* **Project assembly** (:class:`SymbolTable`, :class:`CallGraph`) runs
  once, driver-side, over every file's facts: resolve call references
  to qualified function ids, build the call graph, and condense it
  into Tarjan SCCs so the summary fixpoint can run callee-first.

Call references are resolved with deliberately *optimistic*
heuristics — an unresolvable target contributes no edge rather than an
"anything could happen" edge — because the rules built on top gate CI
and must not false-positive on dynamic dispatch they cannot see:

* ``f(...)``            → module function, module-level partial task,
                          or an imported name (``from m import f``);
* ``mod.f(...)``        → through an ``import m [as mod]`` alias;
* ``self.m(...)``       → the enclosing class, then its resolvable
                          base classes;
* ``obj.m(...)``        → only when exactly one class in the whole
                          project defines method ``m`` (unique-name
                          heuristic);
* ``partial(f, ...)``   → an edge to ``f`` plus the bound-argument
                          count, so taint and mutation summaries can
                          line partial-bound arguments up with callee
                          parameters.

Function ids are ``"<module>::<qualname>"`` (``repro.discovery.codec::
write_schema``, ``repro.engine.executor::Executor.map_list``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Bump when extraction output changes shape (part of the facts dicts).
FACTS_VERSION = 1

#: Leading path components dropped when deriving a module's dotted name.
_STRIP_ROOTS = ("src",)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a lint-root-relative path.

    ``src/repro/discovery/codec.py`` → ``repro.discovery.codec``;
    package ``__init__`` files name the package itself.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    while parts and parts[0] in _STRIP_ROOTS:
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# call-reference encoding
# ---------------------------------------------------------------------------
#
# References are compact strings so they serialize verbatim in facts:
#   "n:f"       a bare name
#   "d:a.b.c"   a dotted access rooted at a name
#   "s:m"       self.m(...) inside a method
#   "a:m"       obj.m(...) on an unresolved receiver


def encode_call_ref(func: ast.expr) -> Optional[str]:
    """Encode a call target expression as a reference string."""
    if isinstance(func, ast.Name):
        return f"n:{func.id}"
    if isinstance(func, ast.Attribute):
        chain: List[str] = [func.attr]
        node = func.value
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            if node.id == "self" and len(chain) == 1:
                return f"s:{chain[0]}"
            chain.append(node.id)
            return "d:" + ".".join(reversed(chain))
        return f"a:{func.attr}"
    return None


def _base_ref(node: ast.expr) -> Optional[str]:
    """A class-base expression as a reference string (``Name`` or dotted)."""
    if isinstance(node, ast.Name):
        return f"n:{node.id}"
    if isinstance(node, ast.Attribute):
        return encode_call_ref(node)
    return None


def _is_stub_body(body: Sequence[ast.stmt]) -> bool:
    """Whether a method body is an abstract stub (docstring +
    ``raise NotImplementedError`` / ``...`` / ``pass`` only)."""
    meaningful = [
        stmt
        for stmt in body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, (str, type(Ellipsis)))
        )
        and not isinstance(stmt, ast.Pass)
    ]
    if not meaningful:
        return True
    if len(meaningful) == 1 and isinstance(meaningful[0], ast.Raise):
        exc = meaningful[0].exc
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        return name == "NotImplementedError"
    return False


def _function_signature(node) -> dict:
    """Positional-signature facts for the codec arity law (R10)."""
    args = node.args
    signature = {
        "line": node.lineno,
        "arity": len(args.posonlyargs) + len(args.args),
        "defaults": len(args.defaults),
    }
    if args.vararg is not None:
        signature["vararg"] = True
    return signature


def _partial_binding(node: ast.expr) -> Optional[Tuple[str, int]]:
    """``partial(f, a, b)`` → (ref-of-f, bound-positional-count)."""
    if not isinstance(node, ast.Call):
        return None
    callee = node.func
    name = (
        callee.id
        if isinstance(callee, ast.Name)
        else callee.attr
        if isinstance(callee, ast.Attribute)
        else None
    )
    if name != "partial" or not node.args:
        return None
    ref = encode_call_ref(node.args[0]) if isinstance(
        node.args[0], (ast.Name, ast.Attribute)
    ) else None
    if ref is None:
        return None
    return ref, len(node.args) - 1


def extract_module_facts(path: str, tree: ast.Module) -> dict:
    """The symbol skeleton of one file, as a serializable dict."""
    module = module_name_for_path(path)
    imports: Dict[str, str] = {}
    package_parts = module.split(".") if module else []
    if path.replace("\\", "/").split("/")[-1] != "__init__.py":
        package_parts = package_parts[:-1] if package_parts else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports[bound] = alias.name if alias.asname else (
                    alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            if node.level:
                base = package_parts[: len(package_parts) - node.level + 1]
                source = ".".join(base + (node.module.split(".") if node.module else []))
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{source}.{alias.name}" if source else alias.name

    classes: Dict[str, dict] = {}
    functions: Dict[str, dict] = {}
    partial_tasks: Dict[str, dict] = {}
    module_globals: List[str] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = _function_signature(node)
        elif isinstance(node, ast.ClassDef):
            methods: Dict[str, str] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = (
                        "stub" if _is_stub_body(item.body) else "concrete"
                    )
            classes[node.name] = {
                "line": node.lineno,
                "bases": [
                    ref
                    for ref in (_base_ref(base) for base in node.bases)
                    if ref is not None
                ],
                "methods": methods,
            }
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    module_globals.append(target.id)
            binding = _partial_binding(value)
            if binding is not None:
                for target in targets:
                    if isinstance(target, ast.Name):
                        partial_tasks[target.id] = {
                            "callee": binding[0],
                            "bound": binding[1],
                        }
    return {
        "version": FACTS_VERSION,
        "path": path,
        "module": module,
        "imports": imports,
        "functions": functions,
        "classes": classes,
        "partial_tasks": partial_tasks,
        "globals": sorted(set(module_globals)),
    }


# ---------------------------------------------------------------------------
# the project symbol table
# ---------------------------------------------------------------------------


class SymbolTable:
    """Every file's symbol facts, resolvable project-wide."""

    def __init__(self, facts_by_file: Dict[str, dict]):
        #: rel path → module facts.
        self.facts_by_file = dict(facts_by_file)
        #: dotted module name → facts.
        self.modules: Dict[str, dict] = {}
        #: dotted module name → rel path.
        self.module_paths: Dict[str, str] = {}
        #: method name → sorted ["module::Class"] owners (for the
        #: unique-name attribute heuristic).
        self._method_owners: Dict[str, List[str]] = {}
        for path in sorted(facts_by_file):
            facts = facts_by_file[path]
            module = facts.get("module", "")
            self.modules[module] = facts
            self.module_paths[module] = path
            for class_name, klass in sorted(facts.get("classes", {}).items()):
                for method in klass.get("methods", {}):
                    self._method_owners.setdefault(method, []).append(
                        f"{module}::{class_name}"
                    )

    # -- lookup ---------------------------------------------------------------

    def function_id(self, module: str, name: str) -> Optional[str]:
        """``module::name`` if the module defines a top-level function."""
        facts = self.modules.get(module)
        if facts is not None and name in facts.get("functions", ()):
            return f"{module}::{name}"
        return None

    def method_id(self, owner: str, name: str) -> Optional[str]:
        """``module::Class.name`` if the class defines the method."""
        module, _, class_name = owner.partition("::")
        facts = self.modules.get(module)
        if facts is None:
            return None
        klass = facts.get("classes", {}).get(class_name)
        if klass is not None and name in klass.get("methods", {}):
            return f"{module}::{class_name}.{name}"
        return None

    def class_bases(self, owner: str) -> List[str]:
        """Resolved ``module::Class`` owners of a class's bases."""
        module, _, class_name = owner.partition("::")
        facts = self.modules.get(module)
        if facts is None:
            return []
        klass = facts.get("classes", {}).get(class_name)
        if klass is None:
            return []
        resolved = []
        for ref in klass.get("bases", ()):
            base = self.resolve_class(module, ref)
            if base is not None:
                resolved.append(base)
        return resolved

    def resolve_class(self, module: str, ref: str) -> Optional[str]:
        """A class-base reference → ``module::Class`` (or None)."""
        kind, _, target = ref.partition(":")
        facts = self.modules.get(module, {})
        if kind == "n":
            if target in facts.get("classes", {}):
                return f"{module}::{target}"
            source = facts.get("imports", {}).get(target)
            if source is not None:
                owner_module, _, name = source.rpartition(".")
                if (
                    owner_module in self.modules
                    and name in self.modules[owner_module].get("classes", {})
                ):
                    return f"{owner_module}::{name}"
        elif kind == "d":
            head, _, rest = target.partition(".")
            source = facts.get("imports", {}).get(head, head)
            owner_module = source
            if owner_module in self.modules and "." not in rest:
                if rest in self.modules[owner_module].get("classes", {}):
                    return f"{owner_module}::{rest}"
        return None

    def mro(self, owner: str) -> List[str]:
        """The resolvable inheritance chain of a class, root-last."""
        chain: List[str] = []
        seen: Set[str] = set()
        stack = [owner]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            chain.append(current)
            stack.extend(self.class_bases(current))
        return chain

    def subclasses(self, owner: str) -> List[str]:
        """Direct project subclasses of ``module::Class``."""
        out = []
        for module, facts in sorted(self.modules.items()):
            for class_name in sorted(facts.get("classes", {})):
                candidate = f"{module}::{class_name}"
                if owner in self.class_bases(candidate):
                    out.append(candidate)
        return out

    # -- call-reference resolution -------------------------------------------

    def resolve_call(
        self,
        module: str,
        ref: str,
        enclosing_class: Optional[str] = None,
    ) -> Optional[str]:
        """A call reference → a qualified function id (or None).

        ``enclosing_class`` is the ``module::Class`` owner when the
        reference was made inside a method (for ``self.m()``).
        """
        kind, _, target = ref.partition(":")
        if kind == "n":
            return self._resolve_name(module, target)
        if kind == "d":
            return self._resolve_dotted(module, target)
        if kind == "s":
            if enclosing_class is None:
                return None
            for owner in self.mro(enclosing_class):
                found = self.method_id(owner, target)
                if found is not None:
                    return found
            return None
        if kind == "a":
            return self._resolve_unique_method(target)
        return None

    def _resolve_name(self, module: str, name: str) -> Optional[str]:
        facts = self.modules.get(module, {})
        found = self.function_id(module, name)
        if found is not None:
            return found
        task = facts.get("partial_tasks", {}).get(name)
        if task is not None:
            return self.resolve_call(module, task["callee"])
        source = facts.get("imports", {}).get(name)
        if source is not None:
            owner_module, _, func = source.rpartition(".")
            found = self.function_id(owner_module, func)
            if found is not None:
                return found
            # ``from m import task`` where task is a partial binding.
            owner_facts = self.modules.get(owner_module)
            if owner_facts is not None:
                task = owner_facts.get("partial_tasks", {}).get(func)
                if task is not None:
                    return self.resolve_call(owner_module, task["callee"])
        return None

    def _resolve_dotted(self, module: str, dotted: str) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        facts = self.modules.get(module, {})
        source = facts.get("imports", {}).get(head)
        if source is None:
            # ``Class.method`` on a class defined in this module.
            if head in facts.get("classes", {}) and "." not in rest:
                return self.method_id(f"{module}::{head}", rest)
            return None
        # ``alias.attr...`` — the alias may name a module or a class.
        parts = rest.split(".")
        candidate_module = source
        for index, part in enumerate(parts):
            remaining = parts[index:]
            if candidate_module in self.modules:
                if len(remaining) == 1:
                    found = self.function_id(candidate_module, part)
                    if found is not None:
                        return found
                    task = self.modules[candidate_module].get(
                        "partial_tasks", {}
                    ).get(part)
                    if task is not None:
                        return self.resolve_call(candidate_module, task["callee"])
                if len(remaining) == 2 and part in self.modules[
                    candidate_module
                ].get("classes", {}):
                    return self.method_id(
                        f"{candidate_module}::{part}", remaining[1]
                    )
            candidate_module = f"{candidate_module}.{part}"
        # The import may itself target a class: ``from m import C`` then
        # ``C.method``.
        owner_module, _, name = source.rpartition(".")
        if (
            owner_module in self.modules
            and name in self.modules[owner_module].get("classes", {})
            and "." not in rest
        ):
            return self.method_id(f"{owner_module}::{name}", rest)
        return None

    def _resolve_unique_method(self, name: str) -> Optional[str]:
        owners = self._method_owners.get(name, ())
        if len(owners) == 1:
            return self.method_id(owners[0], name)
        return None


# ---------------------------------------------------------------------------
# the call graph
# ---------------------------------------------------------------------------


class CallGraph:
    """Resolved call edges between qualified function ids."""

    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        #: caller id → sorted callee ids.
        self.edges: Dict[str, List[str]] = {}
        #: callee id → sorted caller ids.
        self.reverse: Dict[str, List[str]] = {}
        #: function id → rel path of its defining file.
        self.file_of: Dict[str, str] = {}

    def add_function(self, function_id: str, path: str) -> None:
        self.edges.setdefault(function_id, [])
        self.file_of[function_id] = path

    def add_edge(self, caller: str, callee: str) -> None:
        bucket = self.edges.setdefault(caller, [])
        if callee not in bucket:
            bucket.append(callee)
            bucket.sort()
        back = self.reverse.setdefault(callee, [])
        if caller not in back:
            back.append(caller)
            back.sort()

    def callees(self, function_id: str) -> List[str]:
        return self.edges.get(function_id, [])

    def callers(self, function_id: str) -> List[str]:
        return self.reverse.get(function_id, [])

    # -- orderings ------------------------------------------------------------

    def sccs(self) -> List[List[str]]:
        """Tarjan SCCs in reverse-topological (callee-first) order."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        out: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, iterator-position) frames.
            work = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                callees = self.edges.get(node, [])
                for next_pos in range(pos, len(callees)):
                    callee = callees[next_pos]
                    if callee not in self.edges:
                        continue
                    if callee not in index:
                        work.append((node, next_pos + 1))
                        work.append((callee, 0))
                        recurse = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(lowlink[node], index[callee])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    out.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for node in sorted(self.edges):
            if node not in index:
                strongconnect(node)
        return out

    def scc_levels(self) -> List[List[List[str]]]:
        """SCCs grouped into dependency levels.

        Every SCC in level *k* only calls into SCCs of levels < *k* (or
        itself), so all SCCs within one level can resolve in parallel —
        the unit the driver fans out over the executor.
        """
        components = self.sccs()
        component_of: Dict[str, int] = {}
        for position, component in enumerate(components):
            for member in component:
                component_of[member] = position
        depth: Dict[int, int] = {}
        for position, component in enumerate(components):
            level = 0
            for member in component:
                for callee in self.edges.get(member, []):
                    target = component_of.get(callee)
                    if target is not None and target != position:
                        level = max(level, depth[target] + 1)
            depth[position] = level
        levels: Dict[int, List[List[str]]] = {}
        for position, component in enumerate(components):
            levels.setdefault(depth[position], []).append(component)
        return [levels[key] for key in sorted(levels)]

    def dependent_files(self, changed: Iterable[str]) -> Set[str]:
        """Files whose summaries a change to ``changed`` files can
        affect: the changed files plus transitive *callers* of any
        function they define."""
        changed_set = set(changed)
        dirty_functions = [
            function_id
            for function_id, path in self.file_of.items()
            if path in changed_set
        ]
        seen: Set[str] = set(dirty_functions)
        queue = list(dirty_functions)
        while queue:
            current = queue.pop()
            for caller in self.callers(current):
                if caller not in seen:
                    seen.add(caller)
                    queue.append(caller)
        out = set(changed_set)
        for function_id in seen:
            path = self.file_of.get(function_id)
            if path is not None:
                out.add(path)
        return out


def build_call_graph(
    symbols: SymbolTable,
    calls_by_function: Dict[str, Tuple[str, List[str]]],
) -> CallGraph:
    """Assemble the graph from per-function call references.

    ``calls_by_function`` maps a qualified function id to
    ``(rel_path, [call refs])``; the enclosing class for ``self.``
    resolution is recovered from the id itself.
    """
    graph = CallGraph(symbols)
    for function_id, (path, _) in sorted(calls_by_function.items()):
        graph.add_function(function_id, path)
    for function_id, (path, refs) in sorted(calls_by_function.items()):
        module, _, qualname = function_id.partition("::")
        enclosing = (
            f"{module}::{qualname.rsplit('.', 1)[0]}"
            if "." in qualname
            else None
        )
        for ref in refs:
            callee = symbols.resolve_call(module, ref, enclosing)
            if callee is not None and callee in graph.edges:
                graph.add_edge(function_id, callee)
    return graph
