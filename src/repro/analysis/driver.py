"""The lint driver: file discovery, caching, executor fan-out.

Per-file analysis is a pure function of (file content, rule set), so
the driver:

* fans file tasks out over a pluggable
  :class:`~repro.engine.executor.Executor` backend (the same
  serial/threads/processes registry the discovery engine uses — tasks
  and reports are plain picklable values, so the process backend
  genuinely ships them to workers);
* memoizes per-file reports in a content-hash cache keyed by a
  signature of (analyzer version, active rules), so a re-run after a
  small edit re-analyzes only the edited files;
* runs each rule's cross-file :meth:`~repro.analysis.base.Rule.finalize`
  over the accumulated facts — cached files contribute their facts
  without re-parsing.

Inline suppressions are honoured inside the per-file task (they are
part of the hashed content); the checked-in baseline is applied at the
end, in the driver.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import (
    FinalizeContext,
    LintError,
    Rule,
    RuleContext,
    all_rules,
    rules_signature,
)
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import Suppressions
from repro.engine.executor import resolve_executor
from repro.engine.instrument import counters

#: Directory names never descended into during file discovery.
DEFAULT_EXCLUDES = (
    "__pycache__",
    ".git",
    "build",
    "dist",
    "lint_fixtures",
)

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

#: Rule id attached to files that fail to parse.
PARSE_FAILURE_RULE = "R0"

_CACHE_VERSION = 2


def discover_files(
    paths: Sequence[str],
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    excluded = set(excludes)
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name not in excluded and not name.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        else:
            raise LintError(f"no such file or directory: {path}")
    # De-duplicate while keeping a stable, sorted order.
    return sorted(set(found))


def _relative(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive on Windows
        rel = path
    return rel.replace(os.sep, "/")


def analyze_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    *,
    respect_suppressions: bool = True,
) -> Tuple[List[Finding], Dict[str, List[dict]]]:
    """Analyze one in-memory buffer; returns (findings, facts-by-rule).

    The public single-buffer entry point (the fixture tests drive the
    rules through it); :func:`run_lint` uses the same code path per
    file.
    """
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            file=path,
            line=exc.lineno or 1,
            column=(exc.offset or 1) - 1,
            rule_id=PARSE_FAILURE_RULE,
            severity=Severity.ERROR,
            message=f"file does not parse: {exc.msg}",
        )
        return [finding], {}
    ctx = RuleContext(path, source, tree)
    suppressions = Suppressions(source) if respect_suppressions else None
    findings: List[Finding] = []
    facts: Dict[str, List[dict]] = {}
    for rule in rules:
        rule_findings, rule_facts = rule.check(ctx)
        if suppressions is not None:
            rule_findings = [
                finding
                for finding in rule_findings
                if not suppressions.suppresses(finding.rule_id, finding.line)
            ]
        findings.extend(rule_findings)
        if rule_facts:
            # Rules sharing a facts key (R8–R10's interprocedural
            # payload) store it once; the first producer wins.
            facts.setdefault(rule.facts_key or rule.rule_id, list(rule_facts))
    return findings, facts


def _analyze_file_task(task: Tuple[str, str, Tuple[str, ...]]) -> dict:
    """One file's analysis, as a picklable executor task."""
    abs_path, rel_path, rule_ids = task
    rules = all_rules(only=list(rule_ids))
    try:
        with open(abs_path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        finding = Finding(
            file=rel_path,
            line=1,
            column=0,
            rule_id=PARSE_FAILURE_RULE,
            severity=Severity.ERROR,
            message=f"file is unreadable: {exc}",
        )
        return {"findings": [finding.to_dict()], "facts": {}}
    findings, facts = analyze_source(source, rel_path, rules)
    return {
        "findings": [finding.to_dict() for finding in findings],
        "facts": facts,
    }


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: All findings, sorted, with baseline matches marked.
    findings: List[Finding]
    #: Lint-root-relative paths of every file considered.
    files: List[str]
    #: Files actually (re-)analyzed this run.
    analyzed_count: int
    #: Files served from the content-hash cache.
    cache_hit_count: int
    #: The baseline applied, if any.
    baseline: Optional[Baseline] = None
    #: Active rules, for reporting.
    rules: List[Rule] = field(default_factory=list)

    @property
    def fresh_findings(self) -> List[Finding]:
        """Findings not grandfathered by the baseline."""
        return [f for f in self.findings if not f.baselined]

    def worst_fresh_severity(self) -> Optional[Severity]:
        fresh = self.fresh_findings
        if not fresh:
            return None
        return max((f.severity for f in fresh), key=lambda s: s.rank)

    def fails(self, fail_on: Optional[Severity]) -> bool:
        """Whether the run should gate, given a severity threshold."""
        if fail_on is None:
            return False
        worst = self.worst_fresh_severity()
        return worst is not None and worst >= fail_on


class _LintCache:
    """Content-hash cache of per-file reports (findings + facts), plus
    the finalize-phase entry keyed on the rule-set-wide digest vector."""

    def __init__(self, path: Optional[str], signature: str):
        self._path = path
        self._signature = signature
        self._files: Dict[str, dict] = {}
        self._finalize: Optional[dict] = None
        if path is None or not os.path.exists(path):
            return
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return  # a corrupt cache is just a cold cache
        if (
            payload.get("version") == _CACHE_VERSION
            and payload.get("signature") == signature
        ):
            self._files = payload.get("files", {})
            self._finalize = payload.get("finalize")

    def lookup(self, rel_path: str, digest: str) -> Optional[dict]:
        entry = self._files.get(rel_path)
        if entry is not None and entry.get("sha256") == digest:
            return entry["report"]
        return None

    def store(self, rel_path: str, digest: str, report: dict) -> None:
        self._files[rel_path] = {"sha256": digest, "report": report}

    def finalize_entry(self) -> Optional[dict]:
        """The stored finalize phase: vector, findings, rule state."""
        return self._finalize

    def store_finalize(self, entry: dict) -> None:
        self._finalize = entry

    def save(self) -> None:
        if self._path is None:
            return
        payload = {
            "version": _CACHE_VERSION,
            "signature": self._signature,
            "files": self._files,
        }
        if self._finalize is not None:
            payload["finalize"] = self._finalize
        tmp_path = f"{self._path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_path, self._path)


def run_lint(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[str]] = None,
    executor=None,
    cache_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
    root: Optional[str] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> LintResult:
    """Lint ``paths`` and return a :class:`LintResult`.

    ``rules`` restricts the run to the given rule ids; ``executor`` is
    an :class:`~repro.engine.executor.Executor` or spec string (the
    process-wide default when None); ``cache_path`` enables the
    content-hash cache; ``baseline_path`` applies a checked-in
    baseline.  ``root`` anchors the relative paths findings report
    (defaults to the working directory).
    """
    root = os.path.abspath(root or os.getcwd())
    active_rules = all_rules(only=list(rules) if rules is not None else None)
    rule_ids = tuple(rule.rule_id for rule in active_rules)
    signature = rules_signature(active_rules)
    cache = _LintCache(cache_path, signature)
    backend = resolve_executor(executor)

    files = discover_files(paths, excludes)
    rel_paths = [_relative(path, root) for path in files]

    reports: Dict[str, dict] = {}
    pending: List[Tuple[str, str, Tuple[str, ...]]] = []
    digests: Dict[str, str] = {}
    for abs_path, rel_path in zip(files, rel_paths):
        try:
            with open(abs_path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            digest = ""
        digests[rel_path] = digest
        cached = cache.lookup(rel_path, digest) if digest else None
        if cached is not None:
            reports[rel_path] = cached
        else:
            pending.append((abs_path, rel_path, rule_ids))

    cache_hits = len(files) - len(pending)
    if pending:
        produced = backend.map_list(_analyze_file_task, pending)
        for (_, rel_path, _), report in zip(pending, produced):
            if report is None:
                # A supervised backend escalated this file to "skip".
                report = {
                    "findings": [
                        Finding(
                            file=rel_path,
                            line=1,
                            column=0,
                            rule_id=PARSE_FAILURE_RULE,
                            severity=Severity.ERROR,
                            message="analysis task was skipped by the "
                            "executor's failure policy",
                        ).to_dict()
                    ],
                    "facts": {},
                }
            reports[rel_path] = report
            if digests[rel_path]:
                cache.store(rel_path, digests[rel_path], report)
    counters.add("lint.files_analyzed", len(pending))
    counters.add("lint.cache_hits", cache_hits)

    findings: List[Finding] = []
    for rel_path in rel_paths:
        report = reports.get(rel_path)
        if report is None:
            continue
        findings.extend(
            Finding.from_dict(payload) for payload in report["findings"]
        )

    # The finalize phase is keyed on the rule-set-wide content-hash
    # vector: any single-file edit changes the vector and re-runs every
    # cross-file rule over fresh facts (no stale cross-file verdicts),
    # while an untouched tree replays the stored findings outright.
    vector_basis = "\n".join(
        f"{rel_path}\0{digests.get(rel_path, '')}"
        for rel_path in sorted(rel_paths)
    )
    vector = hashlib.sha256(
        f"{signature}\n{vector_basis}".encode("utf-8")
    ).hexdigest()
    stored = cache.finalize_entry()
    if stored is not None and stored.get("vector") == vector:
        finalize_findings = [
            Finding.from_dict(payload)
            for payload in stored.get("findings", ())
        ]
        counters.add("lint.finalize_cache_hits", 1)
    else:
        finalize_context = FinalizeContext(
            digests=digests,
            executor=backend,
            previous=(stored or {}).get("state", {}),
        )
        finalize_findings = _finalized_findings(
            active_rules, rel_paths, files, reports, finalize_context
        )
        cache.store_finalize(
            {
                "vector": vector,
                "findings": [
                    finding.to_dict() for finding in finalize_findings
                ],
                "state": finalize_context.new_state,
            }
        )
        counters.add("lint.finalize_runs", 1)
    cache.save()

    findings.extend(finalize_findings)
    findings.sort(key=lambda finding: finding.sort_key)

    baseline = None
    if baseline_path is not None:
        baseline = Baseline.load(baseline_path)
        findings = baseline.apply(findings)
    counters.add("lint.findings", len(findings))
    return LintResult(
        findings=findings,
        files=rel_paths,
        analyzed_count=len(pending),
        cache_hit_count=cache_hits,
        baseline=baseline,
        rules=active_rules,
    )


def _finalized_findings(
    active_rules: Sequence[Rule],
    rel_paths: Sequence[str],
    files: Sequence[str],
    reports: Dict[str, dict],
    context: Optional[FinalizeContext] = None,
) -> List[Finding]:
    """Cross-file findings, with inline suppressions re-applied."""
    abs_by_rel = dict(zip(rel_paths, files))
    out: List[Finding] = []
    for rule in active_rules:
        facts_key = rule.facts_key or rule.rule_id
        facts_by_file = {
            rel_path: reports[rel_path]["facts"].get(facts_key, [])
            for rel_path in rel_paths
            if rel_path in reports
        }
        for finding in rule.finalize(facts_by_file, context=context):
            abs_path = abs_by_rel.get(finding.file)
            if abs_path is not None:
                try:
                    with open(abs_path, encoding="utf-8") as handle:
                        suppressions = Suppressions(handle.read())
                except OSError:
                    suppressions = None
                if suppressions is not None and suppressions.suppresses(
                    finding.rule_id, finding.line
                ):
                    continue
            out.append(finding)
    return out
