"""SARIF 2.1.0 emission (and in-tree validation) for lint results.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/>`_ is the
interchange format CI systems ingest to annotate pull requests.  The
emitter maps the analyzer's model onto it directly:

* every registered rule becomes a ``reportingDescriptor`` under
  ``tool.driver.rules`` (id, short description, the law as full
  description);
* every :class:`~repro.analysis.findings.Finding` becomes a ``result``
  with one physical location and the finding's stable fingerprint
  under ``partialFingerprints`` — the *same* fingerprint the JSON
  report and the baseline use, so the two outputs cross-reference;
* baselined findings carry ``suppressions`` entries (kind
  ``external``) instead of being dropped, which is how SARIF models a
  checked-in waiver.

:func:`validate_sarif` is a structural validator for the subset of the
2.1.0 schema the emitter produces (the full JSON schema is ~250 KB and
the toolchain has no network access, so the load-bearing constraints
are checked directly: required properties, type shapes, level/kind
enums, 1-based region coordinates).  CI runs it over the artifact it
uploads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import Finding, Severity

#: The schema URI stamped into emitted logs.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

#: Severity → SARIF result level.
_LEVELS: Dict[str, str] = {
    "error": "error",
    "warning": "warning",
    "info": "note",
}

_VALID_LEVELS = frozenset({"none", "note", "warning", "error"})


def severity_level(severity: Severity) -> str:
    return _LEVELS.get(severity.value, "warning")


def sarif_report(
    findings: Sequence[Finding],
    rules: Sequence[object] = (),
    *,
    tool_version: Optional[str] = None,
) -> dict:
    """Findings → a SARIF 2.1.0 log (a plain JSON-serializable dict)."""
    descriptors = []
    for rule in rules:
        descriptor = {
            "id": rule.rule_id,
            "name": getattr(rule, "name", "") or rule.rule_id,
        }
        law = getattr(rule, "law", "")
        if law:
            descriptor["shortDescription"] = {"text": law}
        descriptors.append(descriptor)

    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "level": severity_level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.file},
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.column + 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "reproLint/v1": finding.fingerprint,
            },
        }
        if finding.baselined:
            result["suppressions"] = [{"kind": "external"}]
        results.append(result)

    driver: dict = {"name": "repro-lint", "rules": descriptors}
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def result_fingerprints(report: dict) -> List[str]:
    """Every ``reproLint/v1`` fingerprint in a SARIF log, in order."""
    out = []
    for run in report.get("runs", ()):
        for result in run.get("results", ()):
            fingerprint = result.get("partialFingerprints", {}).get(
                "reproLint/v1"
            )
            if fingerprint is not None:
                out.append(fingerprint)
    return out


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def validate_sarif(report: object) -> List[str]:
    """Structural problems in a SARIF 2.1.0 log ([] when valid)."""
    problems: List[str] = []

    def err(path: str, message: str) -> None:
        problems.append(f"{path}: {message}")

    if not isinstance(report, dict):
        return ["$: log must be a JSON object"]
    if report.get("version") != SARIF_VERSION:
        err("$.version", f"must be {SARIF_VERSION!r}")
    runs = report.get("runs")
    if not isinstance(runs, list) or not runs:
        err("$.runs", "must be a non-empty array")
        return problems
    for run_index, run in enumerate(runs):
        base = f"$.runs[{run_index}]"
        if not isinstance(run, dict):
            err(base, "must be an object")
            continue
        tool = run.get("tool")
        if not isinstance(tool, dict):
            err(f"{base}.tool", "is required and must be an object")
        else:
            driver = tool.get("driver")
            if not isinstance(driver, dict):
                err(
                    f"{base}.tool.driver",
                    "is required and must be an object",
                )
            else:
                if not isinstance(driver.get("name"), str) or not driver.get(
                    "name"
                ):
                    err(
                        f"{base}.tool.driver.name",
                        "is required and must be a non-empty string",
                    )
                rule_ids = set()
                for rule_index, rule in enumerate(driver.get("rules", ())):
                    rule_base = f"{base}.tool.driver.rules[{rule_index}]"
                    if not isinstance(rule, dict) or not isinstance(
                        rule.get("id"), str
                    ):
                        err(rule_base, "must be an object with a string id")
                        continue
                    if rule["id"] in rule_ids:
                        err(rule_base, f"duplicate rule id {rule['id']!r}")
                    rule_ids.add(rule["id"])
        results = run.get("results")
        if results is None:
            continue
        if not isinstance(results, list):
            err(f"{base}.results", "must be an array")
            continue
        for result_index, result in enumerate(results):
            _validate_result(
                result, f"{base}.results[{result_index}]", err
            )
    return problems


def _validate_result(result: object, base: str, err) -> None:
    if not isinstance(result, dict):
        err(base, "must be an object")
        return
    message = result.get("message")
    if not isinstance(message, dict) or not isinstance(
        message.get("text"), str
    ):
        err(f"{base}.message", "is required and must carry a text string")
    level = result.get("level")
    if level is not None and level not in _VALID_LEVELS:
        err(f"{base}.level", f"must be one of {sorted(_VALID_LEVELS)}")
    rule_id = result.get("ruleId")
    if rule_id is not None and not isinstance(rule_id, str):
        err(f"{base}.ruleId", "must be a string")
    for loc_index, location in enumerate(result.get("locations", ())):
        loc_base = f"{base}.locations[{loc_index}]"
        if not isinstance(location, dict):
            err(loc_base, "must be an object")
            continue
        physical = location.get("physicalLocation")
        if physical is None:
            continue
        if not isinstance(physical, dict):
            err(f"{loc_base}.physicalLocation", "must be an object")
            continue
        artifact = physical.get("artifactLocation")
        if artifact is not None and (
            not isinstance(artifact, dict)
            or not isinstance(artifact.get("uri"), str)
        ):
            err(
                f"{loc_base}.physicalLocation.artifactLocation",
                "must be an object with a string uri",
            )
        region = physical.get("region")
        if region is None:
            continue
        if not isinstance(region, dict):
            err(f"{loc_base}.physicalLocation.region", "must be an object")
            continue
        for field in ("startLine", "startColumn", "endLine", "endColumn"):
            value = region.get(field)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                err(
                    f"{loc_base}.physicalLocation.region.{field}",
                    "must be an integer",
                )
            elif value < 1:
                err(
                    f"{loc_base}.physicalLocation.region.{field}",
                    "must be >= 1 (SARIF regions are 1-based)",
                )
    suppressions = result.get("suppressions")
    if suppressions is None:
        return
    if not isinstance(suppressions, list):
        err(f"{base}.suppressions", "must be an array")
        return
    for sup_index, suppression in enumerate(suppressions):
        if not isinstance(suppression, dict) or suppression.get(
            "kind"
        ) not in ("inSource", "external"):
            err(
                f"{base}.suppressions[{sup_index}]",
                "must be an object with kind inSource|external",
            )
