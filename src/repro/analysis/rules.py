"""The codebase-specific rules (R1–R10).

Each rule machine-checks one of the cross-cutting laws PRs 1–4
introduced:

====  =======================  ==================================================
id    name                     law
====  =======================  ==================================================
R1    codec-determinism        equal states must encode to equal bytes: no
                               unordered set/frozenset iteration feeding output
                               in determinism-critical modules, no ``id()`` /
                               ``hash()`` sort keys anywhere
R2    picklability             work shipped through ``Executor.map_list`` /
                               ``tree_aggregate*`` must be picklable: no
                               lambdas or locally-defined functions at fan-out
                               call sites (the process backend silently
                               degrades to a serial rescue)
R3    exception-discipline     supervision never swallows errors: a broad
                               ``except`` must record (counter, log, or
                               ``last_*_error``) or re-raise
R4    rng-discipline           all randomness flows through seeded RNG
                               instances, never the global ``random`` module
                               state
R5    counter-discipline       ``instrument`` counters mutate only through the
                               thread-safe ``add`` / ``set`` helpers
R6    registry-completeness    every codec encoder has a decoder (and vice
                               versa); ``__init__`` ``__all__`` lists match
                               what is actually imported
R7    stage-name-discipline    fault-plan stage names must match a
                               ``StageTimer`` / ``stage_scope`` label defined
                               somewhere in the linted tree
R8    determinism-taint        nondeterminism sources must not reach codec /
                               ``to_bytes`` / render sinks through *any* call
                               path (interprocedural; ``sorted()`` sanitizes
                               order taint)
R9    shared-state-mutation    tasks handed to executor fan-out must not
                               mutate driver-side shared objects (the static
                               analogue of a race detector)
R10   monoid-protocol          ``DiscoveryState``/``Sketch`` implementers
                               cover the full monoid+codec surface; paired
                               codec functions agree on arity
====  =======================  ==================================================

R1–R6 are per-file; R7 contributes per-file *facts* (labels defined,
stages referenced) and reconciles them in :meth:`Rule.finalize`.
R8–R10 share one per-file extraction (symbol skeleton + taint facts)
and resolve everything on the driver-side project model built from the
call graph — see :mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.taint`, and :mod:`repro.analysis.summaries`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.base import Rule, RuleContext, register_rule
from repro.analysis.findings import Finding, Severity

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _callable_name(func: ast.expr) -> Optional[str]:
    """The trailing name of a call target (``a.b.c()`` → ``"c"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _string_value(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_unordered_expr(node: ast.expr) -> bool:
    """Syntactically a set/frozenset value (hash-ordered iteration)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _callable_name(node.func) in ("set", "frozenset")
    return False


class _ScopeStack:
    """Names bound to nested functions / lambdas, per enclosing scope."""

    def __init__(self) -> None:
        self._scopes: List[Set[str]] = []

    def push(self) -> None:
        self._scopes.append(set())

    def pop(self) -> None:
        self._scopes.pop()

    def bind_local_callable(self, name: str) -> None:
        if self._scopes:
            self._scopes[-1].add(name)

    def is_local_callable(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    @property
    def depth(self) -> int:
        return len(self._scopes)


# ---------------------------------------------------------------------------
# R1 — codec-determinism
# ---------------------------------------------------------------------------

#: Modules whose output bytes must be a pure function of the value.
DETERMINISM_CRITICAL_MODULES = (
    "repro/discovery/codec.py",
    "repro/discovery/state.py",
    "repro/io/fastpath.py",
    "repro/jsontypes/tokenizer.py",
    "repro/schema/render.py",
    "repro/schema/jsonschema.py",
)

#: Sort keys whose value changes across processes (PYTHONHASHSEED, heap
#: layout), so any ordering built on them is unstable.
_UNSTABLE_KEY_FUNCS = ("id", "hash")


@register_rule
class CodecDeterminismRule(Rule):
    rule_id = "R1"
    name = "codec-determinism"
    severity = Severity.ERROR
    law = (
        "equal states encode to equal bytes: determinism-critical "
        "modules never let hash-ordered set iteration reach output, "
        "and nothing sorts by id()/hash()"
    )

    def check(self, ctx: RuleContext):
        findings: List[Finding] = []
        critical = any(
            ctx.matches_module(module)
            for module in DETERMINISM_CRITICAL_MODULES
        )
        visitor = _DeterminismVisitor(self, ctx, findings, critical)
        visitor.visit(ctx.tree)
        return findings, []


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, rule, ctx, findings, critical: bool):
        self._rule = rule
        self._ctx = ctx
        self._findings = findings
        self._critical = critical
        # Name → bool: locals assigned a set-valued expression.  One
        # flat map with function-scoped save/restore keeps it simple.
        self._set_valued: Dict[str, bool] = {}

    # -- scope bookkeeping ---------------------------------------------------

    def visit_FunctionDef(self, node):
        saved = dict(self._set_valued)
        self.generic_visit(node)
        self._set_valued = saved

    visit_AsyncFunctionDef = visit_FunctionDef

    def _note_assignment(self, target, value) -> None:
        if isinstance(target, ast.Name):
            self._set_valued[target.id] = _is_unordered_expr(value)

    def visit_Assign(self, node):
        for target in node.targets:
            self._note_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._note_assignment(node.target, node.value)
        self.generic_visit(node)

    # -- detection -----------------------------------------------------------

    def _is_unordered(self, node: ast.expr) -> bool:
        if _is_unordered_expr(node):
            return True
        return isinstance(node, ast.Name) and self._set_valued.get(
            node.id, False
        )

    def _flag_iteration(self, node: ast.expr, how: str) -> None:
        if self._critical and self._is_unordered(node):
            self._findings.append(
                self._rule.finding(
                    self._ctx,
                    node,
                    f"hash-ordered set iteration {how} in a "
                    "determinism-critical module; wrap in sorted()",
                )
            )

    def visit_For(self, node):
        self._flag_iteration(node.iter, "drives a for loop")
        self.generic_visit(node)

    def _visit_comprehension_generators(self, node):
        for gen in node.generators:
            self._flag_iteration(gen.iter, "drives a comprehension")

    def visit_ListComp(self, node):
        self._visit_comprehension_generators(node)
        self.generic_visit(node)

    visit_GeneratorExp = visit_ListComp
    visit_DictComp = visit_ListComp

    def visit_SetComp(self, node):
        # Building another set is fine; consuming one is what's flagged.
        self._visit_comprehension_generators(node)
        self.generic_visit(node)

    def visit_Call(self, node):
        name = _callable_name(node.func)
        if name in ("list", "tuple", "enumerate", "join") and node.args:
            consumer = "feeds " + (
                "str.join" if name == "join" else f"{name}()"
            )
            self._flag_iteration(node.args[0], consumer)
        self._check_sort_key(node, name)
        self.generic_visit(node)

    def _check_sort_key(self, node: ast.Call, name: Optional[str]) -> None:
        # Unstable sort keys are flagged in EVERY module: a repr-stable
        # order is a law of the whole codebase (PR 2's determinism fix).
        if name not in ("sorted", "sort", "min", "max"):
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            bad = self._unstable_key(keyword.value)
            if bad is not None:
                self._findings.append(
                    self._rule.finding(
                        self._ctx,
                        keyword.value,
                        f"sort key uses {bad}(), which is not stable "
                        "across processes; sort by value or repr",
                    )
                )

    @staticmethod
    def _unstable_key(key: ast.expr) -> Optional[str]:
        if isinstance(key, ast.Name) and key.id in _UNSTABLE_KEY_FUNCS:
            return key.id
        if isinstance(key, ast.Lambda):
            for sub in ast.walk(key.body):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in _UNSTABLE_KEY_FUNCS
                ):
                    return sub.func.id
        return None


# ---------------------------------------------------------------------------
# R2 — picklability
# ---------------------------------------------------------------------------

# Methods that hand their callable arguments to an executor backend
# (``map_shards`` is the shard coordinator's fan-out).  One definition,
# shared with the interprocedural engine: R2 checks the *shape* of the
# task expression, R9 checks what the task *does*.
from repro.analysis.taint import FANOUT_METHODS  # noqa: E402


@register_rule
class PicklabilityRule(Rule):
    rule_id = "R2"
    name = "picklability"
    severity = Severity.WARNING
    law = (
        "ops shipped to the process backend must pickle: executor "
        "fan-out call sites take module-level callables (or partials "
        "over them), never lambdas or locally-defined functions"
    )

    def check(self, ctx: RuleContext):
        findings: List[Finding] = []
        visitor = _PicklabilityVisitor(self, ctx, findings)
        visitor.visit(ctx.tree)
        return findings, []


class _PicklabilityVisitor(ast.NodeVisitor):
    def __init__(self, rule, ctx, findings):
        self._rule = rule
        self._ctx = ctx
        self._findings = findings
        self._scopes = _ScopeStack()

    def visit_FunctionDef(self, node):
        # A def nested inside another function is only picklable by
        # value, which stock pickle cannot do.
        self._scopes.bind_local_callable(node.name)
        self._scopes.push()
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node):
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes.bind_local_callable(target.id)
        self.generic_visit(node)

    def visit_Call(self, node):
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in FANOUT_METHODS
        ):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                self._check_arg(node.func.attr, arg)
        self.generic_visit(node)

    def _check_arg(self, method: str, arg: ast.expr) -> None:
        if isinstance(arg, ast.Lambda):
            self._emit(arg, method, "a lambda")
        elif isinstance(arg, ast.Name) and self._scopes.is_local_callable(
            arg.id
        ):
            self._emit(
                arg, method, f"locally-defined function {arg.id!r}"
            )
        elif (
            isinstance(arg, ast.Call)
            and _callable_name(arg.func) == "partial"
            and arg.args
        ):
            # partial(...) is picklable iff the wrapped callable is.
            self._check_arg(method, arg.args[0])

    def _emit(self, node: ast.expr, method: str, what: str) -> None:
        self._findings.append(
            self._rule.finding(
                self._ctx,
                node,
                f"{what} passed to {method}() cannot pickle; the "
                "process backend degrades to a serial rescue — use a "
                "module-level function (or functools.partial over one)",
            )
        )


# ---------------------------------------------------------------------------
# R3 — exception-discipline
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS = ("Exception", "BaseException")
#: Assignment-target substrings that count as recording the failure.
_RECORDING_NAME_HINTS = ("error", "err", "fail", "last")


@register_rule
class ExceptionDisciplineRule(Rule):
    rule_id = "R3"
    name = "exception-discipline"
    severity = Severity.ERROR
    law = (
        "supervision never swallows errors: a bare/broad except must "
        "re-raise, call a recording helper, or store the error"
    )

    def check(self, ctx: RuleContext):
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if not self._records(node.body):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{caught} swallows the error: record it "
                        "(counter / log / last_*_error) or re-raise",
                    )
                )
        return findings, []

    @staticmethod
    def _is_broad(node: Optional[ast.expr]) -> bool:
        if node is None:
            return True
        names: List[ast.expr] = (
            list(node.elts) if isinstance(node, ast.Tuple) else [node]
        )
        return any(
            isinstance(name, ast.Name) and name.id in _BROAD_EXCEPTIONS
            for name in names
        )

    @classmethod
    def _records(cls, body) -> bool:
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, (ast.Raise, ast.Call)):
                    return True
                # ``return exc`` propagates the error as a value; only a
                # bare ``return``/``return None`` counts as swallowing.
                if isinstance(node, ast.Return) and node.value is not None:
                    if not (
                        isinstance(node.value, ast.Constant)
                        and node.value.value is None
                    ):
                        return True
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if any(cls._is_recording_target(t) for t in targets):
                        return True
        return False

    @staticmethod
    def _is_recording_target(target: ast.expr) -> bool:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return False
        lowered = name.lower()
        return any(hint in lowered for hint in _RECORDING_NAME_HINTS)


# ---------------------------------------------------------------------------
# R4 — rng-discipline
# ---------------------------------------------------------------------------

#: ``random`` module attributes that *construct* seeded generators.
_SEEDED_RNG_FACTORIES = frozenset({"Random", "SystemRandom"})
#: ``numpy.random`` attributes that construct seeded generators.
_SEEDED_NP_FACTORIES = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64"}
)


@register_rule
class RngDisciplineRule(Rule):
    rule_id = "R4"
    name = "rng-discipline"
    severity = Severity.ERROR
    law = (
        "all randomness flows through seeded RNG instances "
        "(random.Random(seed), numpy default_rng(seed)); the global "
        "module-level RNG is shared mutable state and unseedable per "
        "call site"
    )

    def check(self, ctx: RuleContext):
        findings: List[Finding] = []
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        from_imports: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name in ("numpy", "numpy.random"):
                        numpy_aliases.add(
                            (alias.asname or alias.name).split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _SEEDED_RNG_FACTORIES:
                            from_imports.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_aliases.add(alias.asname or "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            flagged = self._flagged_call(
                node.func, random_aliases, numpy_aliases, from_imports
            )
            if flagged is not None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{flagged} draws from the global RNG; use a "
                        "seeded random.Random / numpy default_rng "
                        "instance instead",
                    )
                )
        return findings, []

    @staticmethod
    def _flagged_call(
        func, random_aliases, numpy_aliases, from_imports
    ) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in from_imports:
            return f"random.{func.id}"
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if isinstance(value, ast.Name) and value.id in random_aliases:
            if func.attr not in _SEEDED_RNG_FACTORIES:
                return f"{value.id}.{func.attr}"
            return None
        # numpy.random.<fn>(...) — either via ``np.random`` or a direct
        # ``from numpy import random as nprand`` alias.
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in numpy_aliases
            and func.attr not in _SEEDED_NP_FACTORIES
        ):
            return f"{value.value.id}.random.{func.attr}"
        return None


# ---------------------------------------------------------------------------
# R5 — counter-discipline
# ---------------------------------------------------------------------------

#: The thread-safe public surface of :class:`repro.engine.instrument.Counters`.
_COUNTER_METHODS = frozenset({"add", "set", "get", "snapshot", "reset"})

#: The module that implements the helpers (exempt by definition).
_COUNTERS_HOME = "repro/engine/instrument.py"


@register_rule
class CounterDisciplineRule(Rule):
    rule_id = "R5"
    name = "counter-discipline"
    severity = Severity.ERROR
    law = (
        "instrument counters mutate only through the lock-taking "
        "add()/set() helpers; direct attribute pokes race with worker "
        "threads"
    )

    def check(self, ctx: RuleContext):
        findings: List[Finding] = []
        if ctx.matches_module(_COUNTERS_HOME):
            return findings, []
        assignment_targets = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                assignment_targets.update(id(t) for t in targets)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and self._is_counters(
                node.value
            ):
                if node.attr.startswith("_"):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"access to private counter state "
                            f"'.{node.attr}' bypasses the lock; use "
                            "counters.add()/set()/snapshot()",
                        )
                    )
                elif id(node) in assignment_targets or (
                    node.attr not in _COUNTER_METHODS
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"counter attribute '.{node.attr}' is not a "
                            "thread-safe helper; use counters.add() or "
                            "counters.set()",
                        )
                    )
            elif isinstance(node, ast.Subscript) and self._is_counters(
                node.value
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "counters does not support item access; use "
                        "counters.add()/get()",
                    )
                )
        return findings, []

    @staticmethod
    def _is_counters(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "counters"
        return isinstance(node, ast.Attribute) and node.attr == "counters"


# ---------------------------------------------------------------------------
# R6 — registry-completeness
# ---------------------------------------------------------------------------

#: Modules whose top-level functions are held to the encoder/decoder
#: pairing law: the state codec plus the PR-8 enrichment modules,
#: which serialize sketches and tagged-union decisions themselves.
_CODEC_MODULES = ("codec", "sketches", "tagged_unions")

#: Encoder/decoder name-prefix pairs checked in codec modules.
_CODEC_PAIRS = (
    ("dumps_", "loads_"),
    ("write_", "read_"),
    ("_write_", "_read_"),
)


@register_rule
class RegistryCompletenessRule(Rule):
    rule_id = "R6"
    name = "registry-completeness"
    severity = Severity.ERROR
    law = (
        "registries stay closed under their operations: every codec "
        "encoder kind has a decoder arm (and vice versa), and "
        "__init__ __all__ lists match what is imported"
    )

    def check(self, ctx: RuleContext):
        findings: List[Finding] = []
        basename = ctx.module_parts[-1]
        if basename in _CODEC_MODULES:
            self._check_codec_pairs(ctx, findings)
        if basename == "__init__":
            self._check_all_drift(ctx, findings)
        return findings, []

    def _check_codec_pairs(self, ctx, findings) -> None:
        functions: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        for forward, backward in _CODEC_PAIRS:
            for name, node in functions.items():
                for this, other in ((forward, backward), (backward, forward)):
                    if not name.startswith(this):
                        continue
                    counterpart = other + name[len(this):]
                    if counterpart not in functions:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"codec {name}() has no matching "
                                f"{counterpart}(): every encoder kind "
                                "needs a decoder arm (and vice versa)",
                            )
                        )
                    break

    def _check_all_drift(self, ctx, findings) -> None:
        all_node = None
        exported: List[str] = []
        bound: Set[str] = set()
        from_imported: Dict[str, ast.stmt] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if target.id == "__all__":
                            all_node = node
                            exported = [
                                element.value
                                for element in getattr(
                                    node.value, "elts", []
                                )
                                if isinstance(element, ast.Constant)
                                and isinstance(element.value, str)
                            ]
            elif isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    name = alias.asname or alias.name
                    bound.add(name)
                    if not name.startswith("_") and alias.name != "*":
                        from_imported[name] = node
        if all_node is None:
            return
        for name in exported:
            if name not in bound:
                findings.append(
                    self.finding(
                        ctx,
                        all_node,
                        f"__all__ exports {name!r} but the module never "
                        "imports or defines it",
                    )
                )
        listed = set(exported)
        for name, node in from_imported.items():
            if name not in listed:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{name!r} is imported into the package "
                        "namespace but missing from __all__",
                        severity=Severity.WARNING,
                    )
                )


# ---------------------------------------------------------------------------
# R7 — stage-name-discipline
# ---------------------------------------------------------------------------


def _fault_spec_stages(text: str) -> List[str]:
    """Stage labels referenced by a ``REPRO_FAULTS``-grammar string."""
    stages = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk or ":" not in chunk:
            continue
        stage = chunk.split(":", 1)[0].strip()
        if stage and stage != "*":
            stages.append(stage)
    return stages


@register_rule
class StageNameDisciplineRule(Rule):
    rule_id = "R7"
    name = "stage-name-discipline"
    severity = Severity.WARNING
    law = (
        "fault-plan stage names target real pipeline stages: every "
        "stage referenced by a FaultSpec / REPRO_FAULTS string matches "
        "a StageTimer.stage() / stage_scope() label defined in the "
        "linted tree"
    )

    def check(self, ctx: RuleContext):
        facts: List[dict] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callable_name(node.func)
            if name in ("stage", "stage_scope") and node.args:
                label = _string_value(node.args[0])
                if label is not None:
                    facts.append({"kind": "defined", "stage": label})
            self._collect_references(node, name, facts)
        return [], facts

    @staticmethod
    def _collect_references(node: ast.Call, name, facts: List[dict]) -> None:
        spec_text = None
        if name in ("parse", "install_fault_plan") and node.args:
            spec_text = _string_value(node.args[0])
        elif name == "setenv" and len(node.args) >= 2:
            if _string_value(node.args[0]) == "REPRO_FAULTS":
                spec_text = _string_value(node.args[1])
        elif name == "FaultSpec":
            stage = None
            if node.args:
                stage = _string_value(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "stage":
                    stage = _string_value(keyword.value)
            if stage is not None and stage != "*":
                facts.append(
                    {"kind": "ref", "stage": stage, "line": node.lineno}
                )
            return
        if spec_text is None:
            return
        for stage in _fault_spec_stages(spec_text):
            facts.append({"kind": "ref", "stage": stage, "line": node.lineno})

    def finalize(self, facts_by_file, context=None):
        defined: Set[str] = set()
        references: List[Tuple[str, str, int]] = []
        for path, facts in facts_by_file.items():
            for fact in facts:
                if fact.get("kind") == "defined":
                    defined.add(fact["stage"])
                elif fact.get("kind") == "ref":
                    references.append(
                        (path, fact["stage"], fact.get("line", 1))
                    )
        if not defined:
            # Linting a subtree with no stage definitions in sight:
            # there is nothing to reconcile against.
            return []
        findings = []
        for path, stage, line in sorted(references):
            if stage not in defined:
                # The known-stage enumeration is deliberately NOT part of
                # the message: messages feed baseline fingerprints, and a
                # stage added anywhere would invalidate every R7 entry.
                findings.append(
                    Finding(
                        file=path,
                        line=line,
                        column=0,
                        rule_id=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"fault plan targets stage {stage!r}, which "
                            f"no StageTimer/stage_scope defines"
                        ),
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# R8/R9/R10 — the interprocedural rules
# ---------------------------------------------------------------------------
#
# All three share one per-file extraction (symbol skeleton + taint
# facts) stored under the common facts key "XP", and one driver-side
# project model (symbol table → call graph → SCC-ordered summary
# fixpoint) built at most once per finalize pass and memoized on the
# FinalizeContext.

from repro.analysis.summaries import (  # noqa: E402
    build_project_model,
    extract_interproc_facts,
    resolve_taint,
)
from repro.analysis.taint import ORDER_KINDS  # noqa: E402
from repro.engine.instrument import counters  # noqa: E402

#: Shared facts key for the interprocedural payload.
_XP_FACTS_KEY = "XP"
#: Finalize-state key for the summary store (digests + summaries + deps).
_XP_STATE_KEY = "XP"


def _xp_payload(ctx: RuleContext) -> dict:
    """The per-file interprocedural payload, computed once per file
    even when several XP rules are active (memoized on the context)."""
    payload = ctx.__dict__.get("_xp_payload")
    if payload is None:
        payload = extract_interproc_facts(ctx.path, ctx.tree)
        ctx.__dict__["_xp_payload"] = payload
    return payload


def _short_id(function_id: str) -> str:
    return function_id.partition("::")[2] or function_id


def _is_method_id(function_id: str) -> bool:
    return "." in function_id.partition("::")[2]


def _prev_dep_closure(
    changed: Set[str], prev_deps: Dict[str, List[str]]
) -> Set[str]:
    """Files that depended (last run) on any changed file, transitively.

    The current call graph cannot see edges into functions a change
    *removed*; the previous run's file-dependency map can.
    """
    reverse: Dict[str, List[str]] = {}
    for path, deps in prev_deps.items():
        for dep in deps:
            reverse.setdefault(dep, []).append(path)
    seen = set(changed)
    queue = list(changed)
    while queue:
        for caller in reverse.get(queue.pop(), ()):
            if caller not in seen:
                seen.add(caller)
                queue.append(caller)
    return seen


def _file_deps(model) -> Dict[str, List[str]]:
    """rel path → sorted rel paths of files its functions call into."""
    deps: Dict[str, Set[str]] = {}
    for caller, callees in model.graph.edges.items():
        caller_file = model.file_of.get(caller)
        if caller_file is None:
            continue
        bucket = deps.setdefault(caller_file, set())
        for callee in callees:
            callee_file = model.file_of.get(callee)
            if callee_file is not None and callee_file != caller_file:
                bucket.add(callee_file)
    return {path: sorted(files) for path, files in deps.items() if files}


def _project_model(facts_by_file, context):
    """Build (or reuse) the project model for one finalize pass.

    With a :class:`~repro.analysis.base.FinalizeContext`, summaries are
    incremental: files whose digests match the previous finalize state
    reuse their resolved summaries, and only the changed files plus
    their transitive callers re-resolve (counted in
    ``lint.summary_files_recomputed``).
    """
    if context is not None and "xp_model" in context.shared:
        return context.shared["xp_model"]

    payloads = {
        path: facts[0]
        for path, facts in facts_by_file.items()
        if facts and isinstance(facts[0], dict) and "symbols" in facts[0]
    }

    previous_summaries = None
    changed = None
    executor = None
    if context is not None:
        executor = context.executor
        previous = context.previous.get(_XP_STATE_KEY) or {}
        prev_digests = previous.get("digests") or {}
        current_digests = {
            path: context.digests.get(path, "") for path in payloads
        }
        if prev_digests and set(prev_digests) == set(current_digests):
            changed_set = {
                path
                for path, digest in current_digests.items()
                if digest != prev_digests.get(path) or not digest
            }
            changed_set = _prev_dep_closure(
                changed_set, previous.get("deps") or {}
            )
            changed = sorted(changed_set)
            previous_summaries = previous.get("summaries") or {}

    model = build_project_model(
        payloads,
        executor=executor,
        previous_summaries=previous_summaries,
        changed_files=changed,
    )
    counters.add("lint.summary_files_recomputed", len(model.dirty_files))
    counters.add(
        "lint.summary_functions_recomputed",
        sum(
            1
            for path in model.file_of.values()
            if path in model.dirty_files
        ),
    )
    if context is not None:
        context.new_state[_XP_STATE_KEY] = {
            "digests": {
                path: context.digests.get(path, "") for path in payloads
            },
            "summaries": model.summaries_by_file(),
            "deps": _file_deps(model),
        }
        context.shared["xp_model"] = model
    return model


class _InterprocRule(Rule):
    """Base for the engine-backed rules: shared extraction, no
    per-file findings (everything resolves in finalize)."""

    facts_key = _XP_FACTS_KEY

    def check(self, ctx: RuleContext):
        return [], [_xp_payload(ctx)]


@register_rule
class DeterminismTaintRule(_InterprocRule):
    rule_id = "R8"
    name = "determinism-taint"
    severity = Severity.ERROR
    law = (
        "nondeterminism sources (hash-ordered sets, completion order, "
        "urandom/time, unstable sort keys) never reach codec/to_bytes/"
        "render sinks through any call path; sorted() sanitizes order"
    )

    def finalize(self, facts_by_file, context=None):
        model = _project_model(facts_by_file, context)
        previous = {}
        if context is not None:
            previous = (context.previous.get(self.rule_id) or {}).get(
                "findings", {}
            )
        findings_by_file: Dict[str, List[dict]] = {}
        for path in sorted(facts_by_file):
            if path in model.dirty_files or path not in previous:
                findings_by_file[path] = self._file_findings(path, model)
            else:
                findings_by_file[path] = previous[path]
        if context is not None:
            context.new_state[self.rule_id] = {
                "findings": findings_by_file
            }
        return [
            Finding.from_dict(payload)
            for path in sorted(findings_by_file)
            for payload in findings_by_file[path]
        ]

    def _file_findings(self, path: str, model) -> List[dict]:
        env = model.env
        out: List[dict] = []
        seen: Set[Tuple[int, str]] = set()

        def emit(line: int, column: int, message: str) -> None:
            if (line, message) in seen:
                return
            seen.add((line, message))
            out.append(
                Finding(
                    file=path,
                    line=line,
                    column=column,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=message,
                ).to_dict()
            )

        for function_id in sorted(
            fid for fid, p in model.file_of.items() if p == path
        ):
            facts = model.functions[function_id]
            qualname = _short_id(function_id)
            for sink in facts.get("sinks", ()):
                kinds, _ = resolve_taint(sink.get("taint"), env)
                if sink["kind"] == "iteration":
                    kinds = kinds & ORDER_KINDS
                if not kinds:
                    continue
                emit(
                    sink["line"],
                    sink.get("col", 0),
                    f"nondeterministic value ({', '.join(sorted(kinds))}) "
                    f"reaches the {sink['detail']} {sink['kind']} sink in "
                    f"{qualname}(); order output with sorted() or use a "
                    "canonical collection",
                )
            for event in facts.get("calls", ()):
                callee = event.get("f")
                if callee is None:
                    continue
                offset = event.get("o", 0)
                for param_str, centry in sorted(
                    env.ps.get(callee, {}).items()
                ):
                    arg = event.get("a", {}).get(
                        str(int(param_str) - offset)
                    )
                    if arg is None:
                        continue
                    kinds, _ = resolve_taint(arg, env)
                    if centry.get("z"):
                        kinds = kinds - ORDER_KINDS
                    if centry["kind"] == "iteration":
                        kinds = kinds & ORDER_KINDS
                    if not kinds:
                        continue
                    chain = " -> ".join(
                        _short_id(link[0]) for link in centry["chain"]
                    )
                    emit(
                        event["line"],
                        0,
                        "nondeterministic value "
                        f"({', '.join(sorted(kinds))}) passed from "
                        f"{qualname}() reaches the {centry['detail']} "
                        f"{centry['kind']} sink via {chain}; order it "
                        "with sorted() before handing it to the codec",
                    )
        return out


@register_rule
class SharedStateMutationRule(_InterprocRule):
    rule_id = "R9"
    name = "shared-state-mutation"
    severity = Severity.ERROR
    law = (
        "tasks handed to executor fan-out never mutate driver-side "
        "shared objects (captured instances, partial-bound arguments, "
        "module globals) except through the counters API"
    )

    def finalize(self, facts_by_file, context=None):
        model = _project_model(facts_by_file, context)
        env = model.env
        findings: List[Finding] = []
        for function_id in sorted(model.functions):
            facts = model.functions[function_id]
            path = model.file_of[function_id]
            for fanout in facts.get("fanouts", ()):
                for task in fanout.get("tasks", ()):
                    callee = task.get("f")
                    if callee is None:
                        continue
                    mutations = env.mut.get(callee)
                    if not mutations:
                        continue
                    reasons = self._shared_mutations(callee, task, mutations)
                    if not reasons:
                        continue
                    findings.append(
                        Finding(
                            file=path,
                            line=fanout["line"],
                            column=0,
                            rule_id=self.rule_id,
                            severity=self.severity,
                            message=(
                                f"task {_short_id(callee)}() handed to "
                                f"{fanout['method']}() mutates "
                                f"{'; '.join(reasons)} — parallel workers "
                                "race on driver-side state; return values "
                                "or use the counters API"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _shared_mutations(
        callee: str, task: dict, mutations: dict
    ) -> List[str]:
        reasons: List[str] = []
        mutated_globals = mutations.get("g", ())
        if mutated_globals:
            names = ", ".join(sorted(mutated_globals))
            reasons.append(f"module global(s) {names}")
        mutated_params = set(mutations.get("p", ()))
        bound = task.get("bound")
        if bound is not None:
            # partial(f, a, b): bound argument k is callee parameter k,
            # shared by every invocation the executor makes.
            for index, root in enumerate(bound):
                if index not in mutated_params:
                    continue
                if root.get("k") == "literal":
                    continue
                if root.get("k") == "global":
                    what = f"partial-bound module global {root['n']!r}"
                else:
                    what = f"partial-bound argument {index}"
                reasons.append(what)
        elif _is_method_id(callee) and 0 in mutated_params:
            reasons.append("shared instance state (self)")
        return reasons


#: The serialization-monoid surface every implementer must cover.
_PROTOCOL_SURFACE = ("empty", "absorb", "merge", "to_bytes", "from_bytes")
#: Base-class names that put a class under the protocol law.
_PROTOCOL_ROOTS = frozenset({"DiscoveryState", "Sketch"})
#: (writer prefix, reader prefix, expected writer−reader arity delta):
#: ``write_x(enc, value)`` pairs with ``read_x(dec)``; ``dumps_x(value)``
#: pairs with ``loads_x(data)``.
_SIGNATURE_PAIRS = (
    ("dumps_", "loads_", 0),
    ("write_", "read_", 1),
    ("_write_", "_read_", 1),
)


@register_rule
class MonoidProtocolRule(_InterprocRule):
    rule_id = "R10"
    name = "monoid-protocol"
    severity = Severity.ERROR
    law = (
        "every DiscoveryState/Sketch implementer covers the full "
        "empty/absorb/merge/to_bytes/from_bytes surface with concrete "
        "methods, and paired codec functions agree on arity"
    )

    def finalize(self, facts_by_file, context=None):
        model = _project_model(facts_by_file, context)
        symbols = model.symbols
        findings: List[Finding] = []
        for module in sorted(symbols.modules):
            facts = symbols.modules[module]
            path = symbols.module_paths[module]
            self._check_protocol_surface(
                symbols, module, facts, path, findings
            )
            if module.rsplit(".", 1)[-1] in _CODEC_MODULES:
                self._check_signatures(facts, path, findings)
        return findings

    def _check_protocol_surface(
        self, symbols, module, facts, path, findings
    ) -> None:
        for class_name in sorted(facts.get("classes", {})):
            if class_name in _PROTOCOL_ROOTS:
                continue  # the protocol bases themselves define the stubs
            owner = f"{module}::{class_name}"
            chain = symbols.mro(owner)
            if not any(
                link.partition("::")[2] in _PROTOCOL_ROOTS
                for link in chain[1:]
            ):
                continue
            if symbols.subclasses(owner):
                # Intermediate bases may stay abstract; the law binds
                # the leaves that get instantiated.
                continue
            klass = facts["classes"][class_name]
            for method in _PROTOCOL_SURFACE:
                status = self._surface_status(symbols, chain, method)
                if status == "concrete":
                    continue
                how = (
                    "defines no"
                    if status is None
                    else "inherits only an abstract stub for"
                )
                findings.append(
                    Finding(
                        file=path,
                        line=klass.get("line", 1),
                        column=0,
                        rule_id=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"{class_name} implements the "
                            "DiscoveryState/Sketch protocol but "
                            f"{how} {method}(); the full "
                            "empty/absorb/merge/to_bytes/from_bytes "
                            "surface is required for checkpoint, "
                            "shard-merge, and resume"
                        ),
                    )
                )

    @staticmethod
    def _surface_status(symbols, chain, method: str):
        for link in chain:
            module, _, class_name = link.partition("::")
            owner_facts = symbols.modules.get(module)
            if owner_facts is None:
                continue
            methods = owner_facts.get("classes", {}).get(class_name, {}).get(
                "methods", {}
            )
            if method in methods:
                return methods[method]
        return None

    def _check_signatures(self, facts, path, findings) -> None:
        functions = facts.get("functions", {})
        if not isinstance(functions, dict):
            return
        for name in sorted(functions):
            for writer_prefix, reader_prefix, delta in _SIGNATURE_PAIRS:
                if not name.startswith(writer_prefix):
                    continue
                counterpart = reader_prefix + name[len(writer_prefix):]
                writer = functions[name]
                reader = functions.get(counterpart)
                # Existence of the counterpart is R6's law; R10 only
                # judges pairs that do exist.
                if reader is None:
                    break
                if writer.get("vararg") or reader.get("vararg"):
                    break
                writer_arity = writer.get("arity")
                reader_arity = reader.get("arity")
                if writer_arity is None or reader_arity is None:
                    break
                if reader_arity != writer_arity - delta:
                    findings.append(
                        Finding(
                            file=path,
                            line=writer.get("line", 1),
                            column=0,
                            rule_id=self.rule_id,
                            severity=self.severity,
                            message=(
                                f"codec pair {name}()/{counterpart}() "
                                "disagree on arity: a reader takes "
                                "exactly the writer's parameters minus "
                                "the value being written, so the pair "
                                "cannot round-trip"
                            ),
                        )
                    )
                break
