"""The finding model shared by every lint rule.

A :class:`Finding` is one rule violation at one source location.  It is
a plain, picklable value object so per-file analysis can fan out over
the process executor backend, and it serializes to/from JSON dicts so
findings survive the content-hash cache and the ``--format json``
report unchanged.

Baseline matching uses :attr:`Finding.fingerprint` — deliberately
line-number-free (file, rule, message) so grandfathered findings stay
matched while unrelated edits shift them around a file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple


class Severity(Enum):
    """Ordered severity ladder: ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.INFO: 0,
    Severity.WARNING: 1,
    Severity.ERROR: 2,
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file, relative to the lint root.
    file: str
    #: 1-based source line.
    line: int
    #: 0-based column.
    column: int
    #: Rule identifier (``"R1"`` ... ``"R7"``).
    rule_id: str
    #: Severity the rule assigns this violation.
    severity: Severity
    #: Human-readable description of the violation.
    message: str
    #: Whether a checked-in baseline entry grandfathers this finding.
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number-free)."""
        digest = hashlib.sha256(
            f"{self.file}\x00{self.rule_id}\x00{self.message}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    @property
    def sort_key(self) -> Tuple:
        return (self.file, self.line, self.column, self.rule_id, self.message)

    def describe(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.column + 1}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            file=payload["file"],
            line=payload["line"],
            column=payload["column"],
            rule_id=payload["rule"],
            severity=Severity(payload["severity"]),
            message=payload["message"],
            baselined=bool(payload.get("baselined", False)),
        )

    def with_baselined(self, baselined: bool) -> "Finding":
        return Finding(
            file=self.file,
            line=self.line,
            column=self.column,
            rule_id=self.rule_id,
            severity=self.severity,
            message=self.message,
            baselined=baselined,
        )
