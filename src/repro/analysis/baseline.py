"""Checked-in baseline of grandfathered findings.

A baseline entry matches findings by :attr:`Finding.fingerprint`
(file + rule + message, no line number) with a count, so a
grandfathered finding stays matched across unrelated edits but a *new*
occurrence of the same violation in the same file still fails the
gate.  ``repro lint --update-baseline`` regenerates the file from the
current findings.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.base import LintError
from repro.analysis.findings import Finding

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE_PATH = "lint-baseline.json"

_BASELINE_VERSION = 1


class Baseline:
    """Fingerprint → allowed-occurrence-count map."""

    def __init__(self, allowed: Dict[str, int] = None, entries=None):
        self._allowed: Dict[str, int] = dict(allowed or {})
        #: The raw entries, kept for round-tripping / reporting.
        self.entries: List[dict] = list(entries or [])

    def __len__(self) -> int:
        return sum(self._allowed.values())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls()
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"unreadable baseline {path}: {exc}") from exc
        if payload.get("version") != _BASELINE_VERSION:
            raise LintError(
                f"baseline {path} has version {payload.get('version')!r}; "
                f"this build reads version {_BASELINE_VERSION}"
            )
        allowed: Dict[str, int] = {}
        entries = payload.get("findings", [])
        for entry in entries:
            allowed[entry["fingerprint"]] = (
                allowed.get(entry["fingerprint"], 0) + entry.get("count", 1)
            )
        return cls(allowed, entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts: "Counter[Tuple[str, str, str, str]]" = Counter()
        for finding in findings:
            counts[
                (
                    finding.fingerprint,
                    finding.file,
                    finding.rule_id,
                    finding.message,
                )
            ] += 1
        entries = [
            {
                "fingerprint": fingerprint,
                "file": file,
                "rule": rule_id,
                "message": message,
                "count": count,
            }
            for (fingerprint, file, rule_id, message), count in sorted(
                counts.items(), key=lambda item: (item[0][1], item[0][2])
            )
        ]
        allowed = {
            entry["fingerprint"]: entry["count"] for entry in entries
        }
        return cls(allowed, entries)

    def save(self, path: str) -> None:
        payload = {"version": _BASELINE_VERSION, "findings": self.entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def updated(
        cls,
        previous: "Baseline",
        findings: Sequence[Finding],
        *,
        linted_files: Iterable[str] = (),
    ) -> Tuple["Baseline", List[dict], List[dict]]:
        """Regenerate the baseline, pruning fingerprints that no longer
        occur.

        Entries for files *outside* ``linted_files`` are carried over
        untouched — a scoped ``--update-baseline src/repro/codec.py``
        run must not discard valid waivers for files it never looked
        at.  Returns ``(baseline, added_entries, removed_entries)``
        where added/removed compare against ``previous`` by
        fingerprint (count changes show up as both).
        """
        fresh = cls.from_findings(findings)
        linted = set(linted_files)
        carried = [
            entry
            for entry in previous.entries
            if entry.get("file") not in linted
        ]
        entries = sorted(
            carried + fresh.entries,
            key=lambda entry: (
                entry.get("file", ""),
                entry.get("rule", ""),
                entry.get("message", ""),
            ),
        )
        allowed: Dict[str, int] = {}
        for entry in entries:
            allowed[entry["fingerprint"]] = (
                allowed.get(entry["fingerprint"], 0) + entry.get("count", 1)
            )

        def signature(entry: dict) -> Tuple[str, int]:
            return (entry["fingerprint"], entry.get("count", 1))

        previous_keys = Counter(signature(e) for e in previous.entries)
        current_keys = Counter(signature(e) for e in entries)
        added = [e for e in entries if previous_keys[signature(e)] == 0]
        removed = [
            e for e in previous.entries if current_keys[signature(e)] == 0
        ]
        return cls(allowed, entries), added, removed

    def apply(self, findings: Sequence[Finding]) -> List[Finding]:
        """Mark findings covered by the baseline (first-come within the
        allowed count per fingerprint)."""
        budget = dict(self._allowed)
        marked: List[Finding] = []
        for finding in findings:
            remaining = budget.get(finding.fingerprint, 0)
            if remaining > 0:
                budget[finding.fingerprint] = remaining - 1
                marked.append(finding.with_baselined(True))
            else:
                marked.append(finding)
        return marked
