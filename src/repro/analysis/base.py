"""Rule framework: contexts, the :class:`Rule` protocol, the registry.

A rule sees one file at a time through a :class:`RuleContext` (source,
parsed AST, module identity) and returns findings plus optional
*facts*.  Facts are small JSON-serializable payloads a cross-file rule
needs from every file before it can judge any of them — e.g. R7
collects the set of defined stage labels and the set of referenced
fault-spec stages separately, then reconciles them in
:meth:`Rule.finalize` once the whole run has been scanned.  Keeping
facts serializable is what lets per-file analysis fan out over the
process executor backend and survive the content-hash cache.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.findings import Finding, Severity
from repro.errors import ReproError

#: Bump when rule semantics change, to invalidate cached file reports.
ANALYZER_VERSION = 2


class LintError(ReproError, RuntimeError):
    """The analyzer was configured or invoked incorrectly."""


class FinalizeContext:
    """What the driver knows at finalize time, offered to the rules.

    The finalize phase is keyed on the rule-set-wide content-hash
    vector (every linted file's digest), so a rule can trust that
    ``previous`` state corresponds exactly to the digests it recorded
    there — the basis for incremental recomputation (R8's summary
    invalidation) and for the finalize-phase cache itself.
    """

    def __init__(
        self,
        *,
        digests: Optional[Dict[str, str]] = None,
        executor=None,
        previous: Optional[Dict[str, dict]] = None,
    ):
        #: rel path → sha256 of the file content this run.
        self.digests: Dict[str, str] = dict(digests or {})
        #: The run's executor backend, for fan-out inside finalize.
        self.executor = executor
        #: state key → payload stored by the previous finalize run.
        self.previous: Dict[str, dict] = dict(previous or {})
        #: state key → payload to persist for the next run.
        self.new_state: Dict[str, dict] = {}
        #: Scratch space shared by the rules of one finalize pass
        #: (e.g. the interprocedural project model, built once).
        self.shared: dict = {}


class RuleContext:
    """Everything a rule may inspect about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        #: Lint-root-relative, ``/``-separated path of the file.
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    @property
    def module_parts(self) -> Tuple[str, ...]:
        """The path as module-ish parts (``repro/cli.py`` →
        ``("repro", "cli")``), used for module-scoped rules."""
        parts = self.path.replace("\\", "/").split("/")
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        return tuple(parts)

    def matches_module(self, suffix: str) -> bool:
        """Whether the file path ends with ``suffix`` (``/``-separated,
        ``.py`` optional)."""
        want = tuple(
            part[: -len(".py")] if part.endswith(".py") else part
            for part in suffix.replace("\\", "/").split("/")
        )
        parts = self.module_parts
        return parts[-len(want):] == want if len(want) <= len(parts) else False


class Rule:
    """One statically checkable law.  Subclass and register."""

    #: Stable identifier, e.g. ``"R1"``.
    rule_id: str = ""
    #: Short name used in docs and reports.
    name: str = ""
    #: Severity assigned to this rule's findings.
    severity: Severity = Severity.WARNING
    #: One-line statement of the law the rule guards.
    law: str = ""
    #: Key the rule's facts are stored under in per-file reports.
    #: Rules sharing one extraction (R8–R10's interprocedural payload)
    #: use a common key so the cache holds the payload once; ``None``
    #: means the rule id.
    facts_key: Optional[str] = None

    def check(
        self, ctx: RuleContext
    ) -> Tuple[List[Finding], List[dict]]:
        """Analyze one file: return (findings, facts)."""
        raise NotImplementedError

    def finalize(
        self,
        facts_by_file: Dict[str, List[dict]],
        context: Optional[FinalizeContext] = None,
    ) -> List[Finding]:
        """Cross-file reconciliation over every file's facts.

        Called once per run, in the driver, after all files have been
        analyzed (or served from cache).  ``context`` (when the driver
        supplies one) carries digests, the executor backend, and the
        previous run's finalize state.  The default is no cross-file
        component.
        """
        return []

    def finding(
        self,
        ctx: RuleContext,
        node: ast.AST,
        message: str,
        *,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            file=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
        )


_RULES: "Dict[str, Type[Rule]]" = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (id must be unique)."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise LintError(f"rule {rule_class.__name__} has no rule_id")
    if rule_id in _RULES and _RULES[rule_id] is not rule_class:
        raise LintError(f"duplicate rule id {rule_id!r}")
    _RULES[rule_id] = rule_class
    return rule_class


def rule_ids() -> List[str]:
    """Registered rule ids, in registration order."""
    return list(_RULES)


def all_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules (optionally a subset by id)."""
    # Importing the rules module populates the registry on first use.
    import repro.analysis.rules  # noqa: F401

    if only is None:
        return [rule_class() for rule_class in _RULES.values()]
    unknown = [rule_id for rule_id in only if rule_id not in _RULES]
    if unknown:
        known = ", ".join(_RULES)
        raise LintError(f"unknown rule ids {unknown}; known: {known}")
    return [_RULES[rule_id]() for rule_id in only]


def rules_signature(rules: Sequence[Rule]) -> str:
    """Cache key component: analyzer version + active rule ids."""
    ids = ",".join(sorted(rule.rule_id for rule in rules))
    return f"v{ANALYZER_VERSION}:{ids}"
