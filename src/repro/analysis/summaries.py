"""Interprocedural summary resolution (the fixpoint half of R8/R9).

:mod:`repro.analysis.taint` produces *symbolic* per-function facts in
executor workers; this module resolves them project-wide, driver-side:

1. assemble the :class:`~repro.analysis.callgraph.SymbolTable` and
   :class:`~repro.analysis.callgraph.CallGraph` from every file's
   facts;
2. *pre-resolve* every call reference in the taint facts to a
   qualified function id (so the fixpoint below is pure data-flow over
   plain dicts — picklable, executor-shippable);
3. run the summary fixpoint over Tarjan SCCs in callee-first level
   order, fanning the independent SCCs of each level out over the
   PR-1 executor backend;
4. answer rule queries: resolved sink taints and call-site parameter
   sinks for R8, transitive mutation summaries for R9.

Per-function resolved summaries:

``ret``
    concrete source kinds reaching the return value;
``rp``
    parameter indices passing through to the return value, each
    flagged ``True`` when every path runs through ``sorted(...)``
    (order kinds cleaned);
``ps``
    parameter sinks — parameters that reach an iteration/write sink in
    this function or any callee, with a witness chain;
``mut``
    parameters and module globals the function (transitively) mutates.

Summaries are **keyed per file and invalidated transitively**: a warm
run reuses the resolved summaries of every file outside
``CallGraph.dependent_files(changed)`` and recomputes only the changed
files and their transitive callers, which is what the driver counters
``lint.summary_files_recomputed`` / ``lint.summary_functions_recomputed``
measure.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    SymbolTable,
    build_call_graph,
    extract_module_facts,
)
from repro.analysis.taint import ORDER_KINDS, extract_taint_facts

#: Recursion guard for nested symbolic taint payloads.
_MAX_DEPTH = 24
#: Witness chains longer than this are abandoned (and with them the
#: corresponding parameter-sink export — deliberate, bounded reporting).
_MAX_CHAIN = 8


def extract_interproc_facts(path: str, tree: ast.Module) -> dict:
    """The per-file payload shared by R8/R9/R10 (runs in workers)."""
    symbols = extract_module_facts(path, tree)
    taint = extract_taint_facts(path, tree, symbols)
    return {"symbols": symbols, "taint": taint}


# ---------------------------------------------------------------------------
# pre-resolution: call refs → function ids, in place
# ---------------------------------------------------------------------------


def _is_method(function_id: str) -> bool:
    return "." in function_id.partition("::")[2]


def _resolve_entry(
    entry: dict, symbols: SymbolTable, module: str, enclosing: Optional[str]
) -> None:
    if "z" in entry:
        _preresolve_taint(entry["z"], symbols, module, enclosing)
        return
    ref = entry.get("ref")
    if ref is not None:
        callee = symbols.resolve_call(module, ref, enclosing)
        if callee is not None:
            entry["f"] = callee
            # Bound calls (``self.m()`` / ``obj.m()``) do not carry the
            # receiver in the argument list, so call-site argument *i*
            # lines up with callee parameter *i + 1*.
            entry["o"] = (
                1 if ref[:2] in ("s:", "a:") and _is_method(callee) else 0
            )
    for arg in entry.get("a", {}).values():
        _preresolve_taint(arg, symbols, module, enclosing)


def _preresolve_taint(
    taint: Optional[dict],
    symbols: SymbolTable,
    module: str,
    enclosing: Optional[str],
) -> None:
    if not taint:
        return
    for entry in taint.get("c", ()):
        _resolve_entry(entry, symbols, module, enclosing)


def _preresolve_function(
    facts: dict, symbols: SymbolTable, module: str, enclosing: Optional[str]
) -> None:
    _preresolve_taint(facts.get("returns"), symbols, module, enclosing)
    for sink in facts.get("sinks", ()):
        _preresolve_taint(sink.get("taint"), symbols, module, enclosing)
    for event in facts.get("calls", ()):
        _resolve_entry(event, symbols, module, enclosing)
    for fanout in facts.get("fanouts", ()):
        for task in fanout.get("tasks", ()):
            ref = task.get("ref")
            if ref is None:
                continue
            callee = symbols.resolve_call(module, ref, enclosing)
            if callee is not None:
                task["f"] = callee


# ---------------------------------------------------------------------------
# the resolved-summary environment and the core resolver
# ---------------------------------------------------------------------------


class SummaryEnv:
    """Resolved summaries, updated as the fixpoint ascends levels."""

    __slots__ = ("ret", "rp", "ps", "mut", "attr")

    def __init__(self):
        self.ret: Dict[str, List[str]] = {}
        self.rp: Dict[str, Dict[str, bool]] = {}
        self.ps: Dict[str, Dict[str, dict]] = {}
        self.mut: Dict[str, dict] = {}
        self.attr: Dict[str, List[str]] = {}

    def load(self, function_id: str, summary: dict) -> None:
        self.ret[function_id] = summary.get("ret", [])
        self.rp[function_id] = summary.get("rp", {})
        self.ps[function_id] = summary.get("ps", {})
        self.mut[function_id] = summary.get(
            "mut", {"p": [], "g": []}
        )

    def summary_of(self, function_id: str) -> dict:
        out: dict = {}
        if self.ret.get(function_id):
            out["ret"] = self.ret[function_id]
        if self.rp.get(function_id):
            out["rp"] = self.rp[function_id]
        if self.ps.get(function_id):
            out["ps"] = self.ps[function_id]
        mut = self.mut.get(function_id)
        if mut and (mut.get("p") or mut.get("g")):
            out["mut"] = mut
        return out

    def as_subset(self, function_ids: Iterable[str], attrs: Iterable[str]):
        """A plain-dict slice shippable to an executor worker."""
        ids = set(function_ids)
        return {
            "ret": {f: self.ret[f] for f in ids if f in self.ret},
            "rp": {f: self.rp[f] for f in ids if f in self.rp},
            "ps": {f: self.ps[f] for f in ids if f in self.ps},
            "mut": {f: self.mut[f] for f in ids if f in self.mut},
            "attr": {a: self.attr[a] for a in attrs if a in self.attr},
        }

    @classmethod
    def from_dicts(cls, payload: dict) -> "SummaryEnv":
        env = cls()
        env.ret = payload.get("ret", {})
        env.rp = payload.get("rp", {})
        env.ps = payload.get("ps", {})
        env.mut = payload.get("mut", {})
        env.attr = payload.get("attr", {})
        return env


def _merge_param(params: Dict[int, bool], index: int, sanitized: bool):
    # An unsanitized path dominates a sanitized one.
    params[index] = params.get(index, True) and sanitized


def resolve_taint(
    taint: Optional[dict], env: SummaryEnv, depth: int = 0
) -> Tuple[Set[str], Dict[int, bool]]:
    """A symbolic taint payload → (concrete kinds, live params).

    ``params`` maps a parameter index to ``True`` when every flow from
    it runs through the ``sorted(...)`` sanitizer.
    """
    if not taint or depth > _MAX_DEPTH:
        return set(), {}
    kinds: Set[str] = set(taint.get("s", ()))
    params: Dict[int, bool] = {}
    for index in taint.get("p", ()):
        _merge_param(params, index, False)
    for key in taint.get("t", ()):
        kinds.update(env.attr.get(key, ()))
    for entry in taint.get("c", ()):
        if "z" in entry:
            inner_kinds, inner_params = resolve_taint(
                entry["z"], env, depth + 1
            )
            kinds.update(inner_kinds - ORDER_KINDS)
            for index, sanitized in inner_params.items():
                _merge_param(params, index, True)
            continue
        callee = entry.get("f")
        if callee is None:
            continue  # optimistic: an unresolved callee returns clean
        kinds.update(env.ret.get(callee, ()))
        offset = entry.get("o", 0)
        for param_str, sanitized in env.rp.get(callee, {}).items():
            arg = entry.get("a", {}).get(str(int(param_str) - offset))
            if arg is None:
                continue
            inner_kinds, inner_params = resolve_taint(arg, env, depth + 1)
            if sanitized:
                inner_kinds = inner_kinds - ORDER_KINDS
            kinds.update(inner_kinds)
            for index, inner_sanitized in inner_params.items():
                _merge_param(params, index, sanitized or inner_sanitized)
    return kinds, params


def _short(function_id: str) -> str:
    return function_id.partition("::")[2] or function_id


def _resolve_one(function_id: str, facts: dict, env: SummaryEnv) -> dict:
    """One function's resolved summary under the current environment."""
    ret_kinds, ret_params = resolve_taint(facts.get("returns"), env)
    summary: dict = {}
    if ret_kinds:
        summary["ret"] = sorted(ret_kinds)
    if ret_params:
        summary["rp"] = {
            str(index): sanitized
            for index, sanitized in sorted(ret_params.items())
        }

    psink: Dict[str, dict] = {}
    for sink in facts.get("sinks", ()):
        _, params = resolve_taint(sink.get("taint"), env)
        for index, sanitized in sorted(params.items()):
            key = str(index)
            if key in psink:
                continue
            psink[key] = {
                "kind": sink["kind"],
                "detail": sink["detail"],
                "z": sanitized,
                "chain": [
                    [function_id, sink["line"], sink["detail"], sink["kind"]]
                ],
            }
    for event in facts.get("calls", ()):
        callee = event.get("f")
        if callee is None:
            continue
        offset = event.get("o", 0)
        for param_str, centry in sorted(env.ps.get(callee, {}).items()):
            arg = event.get("a", {}).get(str(int(param_str) - offset))
            if arg is None:
                continue
            _, params = resolve_taint(arg, env)
            chain = [
                [function_id, event["line"], f"call {_short(callee)}", "call"]
            ] + centry["chain"]
            if len(chain) > _MAX_CHAIN:
                continue
            for index, sanitized in sorted(params.items()):
                key = str(index)
                if key in psink:
                    continue
                psink[key] = {
                    "kind": centry["kind"],
                    "detail": centry["detail"],
                    "z": sanitized or centry.get("z", False),
                    "chain": chain,
                }
    if psink:
        summary["ps"] = psink

    mutations = facts.get("mutations", {})
    mut_params: Set[int] = set(mutations.get("params", ()))
    mut_globals: Set[str] = set(mutations.get("globals", ()))
    for event in facts.get("calls", ()):
        callee = event.get("f")
        if callee is None:
            continue
        callee_mut = env.mut.get(callee)
        if not callee_mut:
            continue
        mut_globals.update(callee_mut.get("g", ()))
        offset = event.get("o", 0)
        ref = event.get("ref", "")
        for param in callee_mut.get("p", ()):
            arg_index = param - offset
            if arg_index < 0:
                # The callee mutates its receiver; for a ``self.m()``
                # call that receiver is this function's own ``self``.
                if ref.startswith("s:"):
                    mut_params.add(0)
                continue
            root = event.get("r", {}).get(str(arg_index))
            if root is None:
                continue
            if root.get("k") == "param":
                mut_params.add(root["i"])
            elif root.get("k") == "global":
                mut_globals.add(root["n"])
    if mut_params or mut_globals:
        summary["mut"] = {
            "p": sorted(mut_params),
            "g": sorted(mut_globals),
        }
    return summary


def _resolve_component(payload: dict) -> Dict[str, dict]:
    """Fixpoint one SCC given its callee environment (executor task)."""
    env = SummaryEnv.from_dicts(payload["env"])
    members: Dict[str, dict] = payload["functions"]
    for function_id in members:
        env.load(function_id, {})
    for _ in range(max(2, 2 * len(members))):
        changed = False
        for function_id in sorted(members):
            summary = _resolve_one(function_id, members[function_id], env)
            if summary != env.summary_of(function_id):
                env.load(function_id, summary)
                changed = True
        if not changed:
            break
    return {
        function_id: env.summary_of(function_id) for function_id in members
    }


def _referenced_ids_and_attrs(
    facts: dict, ids: Set[str], attrs: Set[str]
) -> None:
    """Collect every function id / attr key a facts dict can query."""

    def walk(taint: Optional[dict]) -> None:
        if not taint:
            return
        attrs.update(taint.get("t", ()))
        for entry in taint.get("c", ()):
            if "z" in entry:
                walk(entry["z"])
                continue
            callee = entry.get("f")
            if callee is not None:
                ids.add(callee)
            for arg in entry.get("a", {}).values():
                walk(arg)

    walk(facts.get("returns"))
    for sink in facts.get("sinks", ()):
        walk(sink.get("taint"))
    for event in facts.get("calls", ()):
        walk({"c": [event]})


# ---------------------------------------------------------------------------
# the project model
# ---------------------------------------------------------------------------


class ProjectModel:
    """Everything the interprocedural rules query, fully resolved."""

    def __init__(
        self,
        symbols: SymbolTable,
        graph: CallGraph,
        functions: Dict[str, dict],
        file_of: Dict[str, str],
        env: SummaryEnv,
        dirty_files: Set[str],
    ):
        self.symbols = symbols
        self.graph = graph
        #: function id → pre-resolved taint facts.
        self.functions = functions
        #: function id → rel path.
        self.file_of = file_of
        self.env = env
        #: Files whose summaries were recomputed this run.
        self.dirty_files = dirty_files

    def summaries_by_file(self) -> Dict[str, Dict[str, dict]]:
        out: Dict[str, Dict[str, dict]] = {}
        for function_id, path in self.file_of.items():
            out.setdefault(path, {})[function_id] = self.env.summary_of(
                function_id
            )
        return out


def build_project_model(
    facts_by_file: Dict[str, dict],
    *,
    executor=None,
    previous_summaries: Optional[Dict[str, Dict[str, dict]]] = None,
    changed_files: Optional[Iterable[str]] = None,
) -> ProjectModel:
    """Assemble symbols, the call graph, and resolved summaries.

    ``facts_by_file`` maps rel path → the per-file payload of
    :func:`extract_interproc_facts`.  When ``previous_summaries`` (rel
    path → function id → summary) and ``changed_files`` are given, only
    the changed files and their transitive callers are re-resolved; the
    rest load from the previous run.
    """
    symbol_facts = {
        path: payload["symbols"] for path, payload in facts_by_file.items()
    }
    symbols = SymbolTable(symbol_facts)

    functions: Dict[str, dict] = {}
    file_of: Dict[str, str] = {}
    calls_by_function: Dict[str, Tuple[str, List[str]]] = {}
    attr_env: Dict[str, dict] = {}
    for path in sorted(facts_by_file):
        payload = facts_by_file[path]
        module = payload["symbols"]["module"]
        taint = payload.get("taint", {})
        for qualname, facts in taint.get("functions", {}).items():
            function_id = f"{module}::{qualname}"
            enclosing = (
                f"{module}::{qualname.rsplit('.', 1)[0]}"
                if "." in qualname
                else None
            )
            _preresolve_function(facts, symbols, module, enclosing)
            functions[function_id] = facts
            file_of[function_id] = path
            calls_by_function[function_id] = (
                path,
                [
                    event["ref"]
                    for event in facts.get("calls", ())
                    if "ref" in event
                ],
            )
        for key, taint_payload in taint.get("attr_writes", {}).items():
            _preresolve_taint(taint_payload, symbols, module, None)
            attr_env[key] = taint_payload

    graph = build_call_graph(symbols, calls_by_function)

    all_files = set(facts_by_file)
    if previous_summaries is None or changed_files is None:
        dirty_files = set(all_files)
    else:
        present_changed = {f for f in changed_files if f in all_files}
        dirty_files = graph.dependent_files(present_changed) & all_files
        dirty_files |= {f for f in all_files if f not in previous_summaries}

    env = SummaryEnv()
    # Attribute-write kinds resolve against an empty env first; a
    # second pass after the fixpoint would catch writes of call
    # results — one pass is the deliberate optimistic cut.
    for key in sorted(attr_env):
        kinds, _ = resolve_taint(attr_env[key], env)
        if kinds:
            env.attr[key] = sorted(kinds)

    # Seed clean files from the previous run.
    if previous_summaries:
        for path in sorted(all_files - dirty_files):
            for function_id, summary in previous_summaries.get(
                path, {}
            ).items():
                if function_id in functions:
                    env.load(function_id, summary)

    dirty_ids = {
        function_id
        for function_id, path in file_of.items()
        if path in dirty_files
    }

    for level in graph.scc_levels():
        pending = [
            component
            for component in level
            if any(member in dirty_ids for member in component)
        ]
        if not pending:
            continue
        payloads = []
        for component in pending:
            needed_ids: Set[str] = set()
            needed_attrs: Set[str] = set()
            for member in component:
                _referenced_ids_and_attrs(
                    functions.get(member, {}), needed_ids, needed_attrs
                )
            needed_ids -= set(component)
            payloads.append(
                {
                    "functions": {
                        member: functions.get(member, {})
                        for member in component
                    },
                    "env": env.as_subset(needed_ids, needed_attrs),
                }
            )
        if executor is not None and len(payloads) > 1:
            resolved_batches = executor.map_list(_resolve_component, payloads)
        else:
            resolved_batches = [
                _resolve_component(payload) for payload in payloads
            ]
        for batch in resolved_batches:
            if batch is None:
                continue  # a supervised backend skipped the component
            for function_id, summary in sorted(batch.items()):
                env.load(function_id, summary)

    # Functions outside the graph's dirty cone but with no previous
    # summary (e.g. first run with an empty previous map) resolve here.
    for function_id in sorted(dirty_ids):
        if function_id not in env.ret:
            env.load(
                function_id,
                _resolve_one(function_id, functions[function_id], env),
            )

    return ProjectModel(symbols, graph, functions, file_of, env, dirty_files)
