"""Static analysis of the repro codebase itself (``repro lint``).

PRs 1–4 made correctness rest on cross-cutting *laws* — deterministic
encoding, picklable executor tasks, supervision that never swallows
errors, seeded randomness, thread-safe counters, closed codec
registries, real fault-target stage names.  This package machine-checks
them: an AST rule framework (:mod:`~repro.analysis.base`), the seven
codebase-specific rules (:mod:`~repro.analysis.rules`), and a driver
(:mod:`~repro.analysis.driver`) with per-file content-hash caching that
fans file analysis out over the engine's executor backends.

Quick use::

    from repro.analysis import run_lint
    result = run_lint(["src", "tests"], baseline_path="lint-baseline.json")
    for finding in result.fresh_findings:
        print(finding.describe())

The CLI front end is ``repro lint`` (also ``jxplain lint``); inline
waivers use ``# repro-lint: disable=R2`` comments and grandfathered
findings live in a checked-in baseline file.
"""

from repro.analysis.base import (
    ANALYZER_VERSION,
    FinalizeContext,
    LintError,
    Rule,
    RuleContext,
    all_rules,
    register_rule,
    rule_ids,
    rules_signature,
)
from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_PATH
from repro.analysis.driver import (
    DEFAULT_CACHE_PATH,
    DEFAULT_EXCLUDES,
    LintResult,
    analyze_source,
    discover_files,
    run_lint,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.report import render_json, render_text, summary_line
from repro.analysis.sarif import (
    result_fingerprints,
    sarif_report,
    validate_sarif,
)
from repro.analysis.suppressions import Suppressions

__all__ = [
    "ANALYZER_VERSION",
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "DEFAULT_EXCLUDES",
    "FinalizeContext",
    "Finding",
    "LintError",
    "LintResult",
    "Rule",
    "RuleContext",
    "Severity",
    "Suppressions",
    "all_rules",
    "analyze_source",
    "discover_files",
    "register_rule",
    "render_json",
    "render_text",
    "result_fingerprints",
    "rule_ids",
    "rules_signature",
    "run_lint",
    "sarif_report",
    "summary_line",
    "validate_sarif",
]
