"""Inline suppression comments.

Grammar (anywhere in a comment)::

    # repro-lint: disable=R1            suppress R1 on this line
    # repro-lint: disable=R1,R3         suppress several rules
    # repro-lint: disable=all           suppress every rule on this line
    # repro-lint: disable-next-line=R2  suppress on the following line
    # repro-lint: disable-file=R4       suppress R4 for the whole file

``disable-file`` is honoured only within the first
:data:`FILE_PRAGMA_WINDOW` lines, so a file-wide waiver is always
visible at the top of the file rather than buried mid-module.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

#: ``disable-file`` pragmas must appear within this many leading lines.
FILE_PRAGMA_WINDOW = 10

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*"
    r"(?P<verb>disable(?:-next-line|-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: Sentinel rule set meaning "every rule".
ALL = frozenset({"all"})


class Suppressions:
    """Per-file map of suppressed rule ids by line."""

    def __init__(self, source: str):
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" not in text:
                continue
            for match in _PRAGMA.finditer(text):
                rules = {
                    chunk.strip()
                    for chunk in match.group("rules").split(",")
                    if chunk.strip()
                }
                verb = match.group("verb")
                if verb == "disable-file":
                    if lineno <= FILE_PRAGMA_WINDOW:
                        self._file_wide |= rules
                    continue
                target = lineno + 1 if verb == "disable-next-line" else lineno
                self._by_line.setdefault(target, set()).update(rules)

    @property
    def file_wide(self) -> FrozenSet[str]:
        return frozenset(self._file_wide)

    def suppresses(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is waived at ``line``."""
        if "all" in self._file_wide or rule_id in self._file_wide:
            return True
        rules = self._by_line.get(line)
        if not rules:
            return False
        return "all" in rules or rule_id in rules
