"""Text and JSON rendering of a :class:`~repro.analysis.driver.LintResult`."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from repro.analysis.driver import LintResult

#: Schema version of the JSON report (the CI artifact format).
REPORT_VERSION = 1


def render_text(result: LintResult, *, show_baselined: bool = False) -> str:
    """Human-readable findings plus a one-line summary."""
    lines: List[str] = []
    for finding in result.findings:
        if finding.baselined and not show_baselined:
            continue
        suffix = "  (baselined)" if finding.baselined else ""
        lines.append(finding.describe() + suffix)
    lines.append(summary_line(result))
    return "\n".join(lines)


def summary_line(result: LintResult) -> str:
    fresh = result.fresh_findings
    by_severity = Counter(finding.severity.value for finding in fresh)
    breakdown = (
        ", ".join(
            f"{count} {severity}"
            for severity, count in sorted(by_severity.items())
        )
        or "none"
    )
    baselined = len(result.findings) - len(fresh)
    cache_note = (
        f", {result.cache_hit_count} cached"
        if result.cache_hit_count
        else ""
    )
    return (
        f"checked {len(result.files)} files "
        f"({result.analyzed_count} analyzed{cache_note}): "
        f"findings: {breakdown}"
        + (f" (+{baselined} baselined)" if baselined else "")
    )


def render_json(result: LintResult) -> str:
    """The machine-readable report uploaded as a CI artifact."""
    fresh = result.fresh_findings
    payload = {
        "version": REPORT_VERSION,
        "files_checked": len(result.files),
        "files_analyzed": result.analyzed_count,
        "cache_hits": result.cache_hit_count,
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "severity": rule.severity.value,
                "law": rule.law,
            }
            for rule in result.rules
        ],
        "findings": [finding.to_dict() for finding in result.findings],
        "summary": {
            "total": len(result.findings),
            "fresh": len(fresh),
            "baselined": len(result.findings) - len(fresh),
            "by_severity": dict(
                Counter(finding.severity.value for finding in fresh)
            ),
            "by_rule": dict(
                Counter(finding.rule_id for finding in fresh)
            ),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
