"""Local taint extraction: the per-function half of the R8/R9 engine.

Each function is abstractly interpreted once, file-locally, into a
serializable summary — nondeterminism *sources* that reach its return
value, its sink events, its calls (with per-argument taint), its
mutations of parameters/globals, and its executor fan-out sites.  The
summaries are deliberately **parameterized on unknowns**: taint that
flows in from a parameter, a callee's return value, or a class
attribute is recorded symbolically and resolved later by the
SCC-ordered fixpoint in :mod:`repro.analysis.summaries` using the
project call graph.

Source model (``kind`` strings):

================  =====  ======================================
kind              class  construct
================  =====  ======================================
set-order         order  ``set``/``frozenset`` literals, comps,
                         and constructor calls
completion-order  order  ``as_completed(...)`` result streams
unstable-sort     order  ``sorted(..., key=id/hash)``
urandom           value  ``os.urandom``, ``uuid.uuid4/uuid1``,
                         ``secrets.*``
time              value  ``time.time/monotonic/perf_counter*``,
                         ``datetime.now/utcnow/today``
================  =====  ======================================

Sanitizer model: ``sorted(E)`` erases *order* kinds (a sorted sequence
has a canonical order) but never *value* kinds — sorting random bytes
still yields random bytes.  An ``id()``/``hash()`` sort key re-taints
with ``unstable-sort``.

Sink model: inside **sink-scope** functions — any function in a
determinism-critical module, or any function whose name looks like a
codec writer (``to_bytes``, ``write_*``, ``_write_*``, ``dumps_*``,
``render*``) — iteration events (``for``, comprehension generators,
``list``/``tuple``/``enumerate``/``join`` consumption) and write
events (calls into ``write_*``-family helpers and low-level writer
methods) are recorded with the taint of the consumed expression.
Taint arriving through a parameter is exported as a *parameter sink*
so call sites anywhere in the project are checked against it.

The analysis is **optimistic** at every unresolved edge: an unknown
callee, an ambiguous attribute, or dynamic dispatch contributes no
taint.  These rules gate CI; a false positive on code the analysis
cannot understand would be worse than a miss it documents.  Known
blind spots, accepted deliberately: nested function bodies, local
(non-module-level) ``partial`` bindings, and taint carried by loop
variables element-wise.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.callgraph import encode_call_ref

#: Source kinds whose nondeterminism is in *iteration order*.
ORDER_KINDS = frozenset({"set-order", "completion-order", "unstable-sort"})
#: Source kinds whose nondeterminism is in the *value itself*.
VALUE_KINDS = frozenset({"urandom", "time"})

#: Fully-qualified callables that introduce value/order taint.
SOURCE_CALLS = {
    "os.urandom": "urandom",
    "uuid.uuid1": "urandom",
    "uuid.uuid4": "urandom",
    "secrets.token_bytes": "urandom",
    "secrets.token_hex": "urandom",
    "secrets.token_urlsafe": "urandom",
    "secrets.randbits": "urandom",
    "time.time": "time",
    "time.time_ns": "time",
    "time.monotonic": "time",
    "time.monotonic_ns": "time",
    "time.perf_counter": "time",
    "time.perf_counter_ns": "time",
    "datetime.datetime.now": "time",
    "datetime.datetime.utcnow": "time",
    "datetime.datetime.today": "time",
    "datetime.date.today": "time",
    "concurrent.futures.as_completed": "completion-order",
}

#: Trailing call names tainting with completion order even when the
#: import path cannot be resolved (``as_completed`` is unambiguous).
_COMPLETION_NAMES = frozenset({"as_completed"})

#: Builtins whose result carries no taint regardless of arguments.
_PURE_BUILTINS = frozenset(
    {
        "len", "sum", "min", "max", "any", "all", "abs", "round",
        "int", "float", "bool", "str", "repr", "format", "bytes",
        "bytearray", "isinstance", "issubclass", "hasattr", "getattr",
        "callable", "ord", "chr", "hex", "oct", "divmod", "pow",
        "range", "type", "vars", "print",
    }
)

#: Calls that pass their arguments' taint straight through.
_PASSTHROUGH_CALLS = frozenset(
    {"list", "tuple", "reversed", "iter", "enumerate", "zip", "map",
     "filter", "next"}
)

#: Methods that return a view/copy carrying the receiver's taint.
_PASSTHROUGH_METHODS = frozenset(
    {"copy", "union", "intersection", "difference",
     "symmetric_difference", "keys", "values", "items"}
)

#: Methods that mutate their receiver in place (the R9 model).
MUTATING_METHODS = frozenset(
    {
        "append", "appendleft", "add", "update", "extend", "insert",
        "setdefault", "pop", "popleft", "popitem", "remove", "discard",
        "clear", "sort", "reverse",
    }
)

#: Executor fan-out entry points whose callables cross the
#: thread/process boundary (shared with rule R2).
FANOUT_METHODS = frozenset(
    {
        "map_list",
        "map",
        "flat_map",
        "filter",
        "map_partitions",
        "map_shards",
        "aggregate",
        "tree_aggregate",
        "tree_aggregate_serialized",
        "with_retry",
    }
)

#: Modules whose output bytes must be a pure function of the value
#: (kept in step with rule R1's list).
DETERMINISM_CRITICAL_MODULES = (
    "repro/discovery/codec.py",
    "repro/discovery/state.py",
    "repro/io/fastpath.py",
    "repro/jsontypes/tokenizer.py",
    "repro/schema/render.py",
    "repro/schema/jsonschema.py",
)

#: Function-name shapes that put a function in sink scope anywhere.
_SINK_NAME_PREFIXES = ("write_", "_write_", "dumps_", "render")
_SINK_NAMES = frozenset({"to_bytes"})

#: Low-level writer methods treated as write sinks inside sink scope.
_WRITER_METHODS = frozenset({"raw", "string", "uvarint", "svarint"})

#: Unstable sort-key callables (mirrors R1).
_UNSTABLE_KEY_FUNCS = ("id", "hash")


def is_sink_scope_path(path: str) -> bool:
    """Whether every function in ``path`` is in sink scope."""
    normalized = path.replace("\\", "/")
    return any(
        normalized.endswith(suffix)
        for suffix in DETERMINISM_CRITICAL_MODULES
    )


def is_sink_scope_name(name: str) -> bool:
    """Whether a function name alone places it in sink scope."""
    short = name.rsplit(".", 1)[-1]
    if short in _SINK_NAMES:
        return True
    return any(short.startswith(prefix) for prefix in _SINK_NAME_PREFIXES)


# ---------------------------------------------------------------------------
# the taint lattice value
# ---------------------------------------------------------------------------


class Taint:
    """Sources ∪ parameters ∪ callee-returns ∪ attributes, symbolically."""

    __slots__ = ("srcs", "params", "calls", "attrs")

    def __init__(self, srcs=(), params=(), calls=(), attrs=()):
        self.srcs: Set[str] = set(srcs)
        self.params: Set[int] = set(params)
        #: Each entry: {"ref": str, "line": int, "a": {index: taint-dict}}.
        self.calls: List[dict] = list(calls)
        self.attrs: Set[str] = set(attrs)

    @classmethod
    def empty(cls) -> "Taint":
        return cls()

    def is_empty(self) -> bool:
        return not (self.srcs or self.params or self.calls or self.attrs)

    def union(self, other: "Taint") -> "Taint":
        if other is None or other.is_empty():
            return self
        if self.is_empty():
            return other
        return Taint(
            self.srcs | other.srcs,
            self.params | other.params,
            self.calls + other.calls,
            self.attrs | other.attrs,
        )

    def to_dict(self) -> Optional[dict]:
        """Sparse serializable form (None when empty)."""
        if self.is_empty():
            return None
        payload: dict = {}
        if self.srcs:
            payload["s"] = sorted(self.srcs)
        if self.params:
            payload["p"] = sorted(self.params)
        if self.calls:
            payload["c"] = self.calls
        if self.attrs:
            payload["t"] = sorted(self.attrs)
        return payload

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> "Taint":
        if not payload:
            return cls()
        return cls(
            payload.get("s", ()),
            payload.get("p", ()),
            payload.get("c", ()),
            payload.get("t", ()),
        )


def sanitize_taint(taint: Taint) -> Taint:
    """The value of ``sorted(E)``: known order sources dropped; the
    symbolic remainder is wrapped in a ``{"z": ...}`` marker so the
    resolver strips order kinds the symbols may contribute."""
    payload = taint.to_dict()
    if payload is None:
        return Taint.empty()
    kept_sources = [
        kind for kind in payload.get("s", ()) if kind not in ORDER_KINDS
    ]
    symbolic = Taint(
        params=payload.get("p", ()),
        calls=payload.get("c", ()),
        attrs=payload.get("t", ()),
    )
    out = Taint(srcs=kept_sources)
    symbolic_payload = symbolic.to_dict()
    if symbolic_payload is not None:
        # A sanitized-symbol marker rides along as a pseudo call entry
        # the resolver understands.
        out.calls.append({"z": symbolic_payload})
    return out


# ---------------------------------------------------------------------------
# per-function extraction
# ---------------------------------------------------------------------------


class _FunctionExtractor:
    """One function's abstract interpretation."""

    def __init__(
        self,
        qualname: str,
        node: ast.AST,
        *,
        module: str,
        imports: Dict[str, str],
        module_globals: Set[str],
        global_taints: Dict[str, dict],
        exempt_globals: Set[str],
        enclosing_class: Optional[str],
        sink_scope: bool,
    ):
        self.qualname = qualname
        self.node = node
        self.module = module
        self.imports = imports
        self.module_globals = module_globals
        self.global_taints = global_taints
        self.exempt_globals = exempt_globals
        self.enclosing_class = enclosing_class
        self.sink_scope = sink_scope or is_sink_scope_name(qualname)
        self.params: List[str] = [
            arg.arg
            for arg in (
                list(node.args.posonlyargs) + list(node.args.args)
            )
        ]
        self._param_index = {name: i for i, name in enumerate(self.params)}
        self._env: Dict[str, Taint] = {}
        self._locals: Set[str] = set(self.params)
        self._declared_globals: Set[str] = set()
        self.returns = Taint.empty()
        self.sinks: List[dict] = []
        self.calls: List[dict] = []
        self.fanouts: List[dict] = []
        self.mutated_params: Set[int] = set()
        self.mutated_globals: Set[str] = set()

    # -- driving --------------------------------------------------------------

    def run(self) -> dict:
        body = list(self.node.body)
        self.prepare(body)
        # Two env passes stabilize simple forward/backward flows; the
        # third pass records sinks/calls/returns with the final env.
        for _ in range(2):
            self._interpret(body, record=False)
        self._interpret(body, record=True)
        facts: dict = {"line": self.node.lineno, "params": self.params}
        returns = self.returns.to_dict()
        if returns:
            facts["returns"] = returns
        if self.sinks:
            facts["sinks"] = self.sinks
        if self.calls:
            facts["calls"] = self.calls
        if self.fanouts:
            facts["fanouts"] = self.fanouts
        if self.mutated_params or self.mutated_globals:
            facts["mutations"] = {
                "params": sorted(self.mutated_params),
                "globals": sorted(self.mutated_globals),
            }
        if self.sink_scope:
            facts["sink_scope"] = True
        return facts

    def prepare(self, body: Sequence[ast.stmt]) -> None:
        """Pre-scan for locally bound names and ``global`` declarations."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._locals.add(node.name)
                elif isinstance(node, ast.Global):
                    self._declared_globals.update(node.names)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        self._bind_target(target)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    self._bind_target(node.target)
                elif isinstance(node, ast.For):
                    self._bind_target(node.target)
                elif isinstance(node, ast.withitem):
                    if node.optional_vars is not None:
                        self._bind_target(node.optional_vars)
                elif isinstance(node, ast.ExceptHandler):
                    if node.name:
                        self._locals.add(node.name)
                elif isinstance(node, ast.comprehension):
                    self._bind_target(node.target)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        self._locals.add(
                            (alias.asname or alias.name).split(".")[0]
                        )
        self._locals -= self._declared_globals

    def _bind_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._locals.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value)

    # -- statement interpretation ---------------------------------------------

    def _interpret(self, body: Sequence[ast.stmt], *, record: bool) -> None:
        for stmt in body:
            self._statement(stmt, record)

    def _statement(self, stmt: ast.stmt, record: bool) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are not summarized
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, record)
            for target in stmt.targets:
                self._assign(target, value, record)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(
                    stmt.target, self._eval(stmt.value, record), record
                )
            return
        if isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, record)
            old = self._lookup_target(stmt.target)
            self._assign(stmt.target, value.union(old), record)
            if record and not isinstance(stmt.target, ast.Name):
                self._note_mutation_target(stmt.target)
            elif record and isinstance(stmt.target, ast.Name):
                if stmt.target.id in self._declared_globals:
                    self._record_mutation(
                        {"k": "global", "n": stmt.target.id}
                    )
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, record)
                if record:
                    self.returns = self.returns.union(value)
                    if is_sink_scope_name(self.qualname):
                        # Returning from to_bytes/dumps_* IS the write.
                        self._note_sink(
                            "write", "return value", stmt, value
                        )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter, record)
            if record:
                self._note_sink("iteration", "for loop", stmt.iter, iterable)
            # Loop variables carry *elements*, whose identity is
            # order-independent — stay optimistic about them.
            self._interpret(stmt.body, record=record)
            self._interpret(stmt.orelse, record=record)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self._eval(stmt.test, record)
            self._interpret(stmt.body, record=record)
            self._interpret(stmt.orelse, record=record)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, record)
            self._interpret(stmt.body, record=record)
            return
        if isinstance(stmt, ast.Try):
            self._interpret(stmt.body, record=record)
            for handler in stmt.handlers:
                self._interpret(handler.body, record=record)
            self._interpret(stmt.orelse, record=record)
            self._interpret(stmt.finalbody, record=record)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, record)
            return
        if isinstance(stmt, ast.Delete):
            if record:
                for target in stmt.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        self._note_mutation_target(target)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, record)
            return
        # Pass/Break/Continue/Global/Nonlocal/Import: nothing to do.

    def _assign(self, target: ast.expr, value: Taint, record: bool) -> None:
        if isinstance(target, ast.Name):
            self._env[target.id] = value
            if record and target.id in self._declared_globals:
                self._record_mutation({"k": "global", "n": target.id})
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value, record)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, record)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            if record:
                self._note_mutation_target(target)

    def _lookup_target(self, target: ast.expr) -> Taint:
        if isinstance(target, ast.Name):
            return self._lookup(target.id)
        return Taint.empty()

    # -- expression evaluation ------------------------------------------------

    def _lookup(self, name: str) -> Taint:
        if name in self._env:
            return self._env[name]
        if name in self._param_index:
            return Taint(params={self._param_index[name]})
        if name not in self._locals:
            global_taint = self.global_taints.get(name)
            if global_taint:
                return Taint.from_dict(global_taint)
        return Taint.empty()

    def _eval(self, node: ast.expr, record: bool) -> Taint:
        if isinstance(node, ast.Constant):
            return Taint.empty()
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Set):
            for element in node.elts:
                self._eval(element, record)
            return Taint(srcs={"set-order"})
        if isinstance(node, ast.SetComp):
            self._eval_comprehension(node, record)
            return Taint(srcs={"set-order"})
        if isinstance(node, ast.Call):
            return self._eval_call(node, record)
        if isinstance(node, ast.Attribute):
            self._eval(node.value, record)
            return self._attr_read(node)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, record)
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node, record)
            return Taint.empty()
        if isinstance(node, ast.BinOp):
            return self._eval(node.left, record).union(
                self._eval(node.right, record)
            )
        if isinstance(node, ast.BoolOp):
            out = Taint.empty()
            for value in node.values:
                out = out.union(self._eval(value, record))
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, record)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, record)
            return self._eval(node.body, record).union(
                self._eval(node.orelse, record)
            )
        if isinstance(node, ast.Compare):
            self._eval(node.left, record)
            for comparator in node.comparators:
                self._eval(comparator, record)
            return Taint.empty()
        if isinstance(node, ast.Subscript):
            self._eval(node.slice, record)
            return self._eval(node.value, record)
        if isinstance(node, (ast.List, ast.Tuple)):
            out = Taint.empty()
            for element in node.elts:
                out = out.union(self._eval(element, record))
            return out
        if isinstance(node, ast.Dict):
            out = Taint.empty()
            for key in node.keys:
                if key is not None:
                    out = out.union(self._eval(key, record))
            for value in node.values:
                out = out.union(self._eval(value, record))
            return out
        if isinstance(node, ast.Starred):
            return self._eval(node.value, record)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                self._eval(value, record)
            return Taint.empty()
        if isinstance(node, ast.FormattedValue):
            self._eval(node.value, record)
            return Taint.empty()
        if isinstance(node, ast.Await):
            return self._eval(node.value, record)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, record)
            self._assign(node.target, value, record)
            return value
        if isinstance(node, ast.Lambda):
            return Taint.empty()
        return Taint.empty()

    def _eval_comprehension(self, node, record: bool) -> Taint:
        # A comprehension's output order is its first generator's
        # iteration order, so order taint propagates from that iter.
        out = Taint.empty()
        for index, gen in enumerate(node.generators):
            iterable = self._eval(gen.iter, record)
            if index == 0:
                out = iterable
            if record:
                self._note_sink(
                    "iteration", "comprehension", gen.iter, iterable
                )
            for condition in gen.ifs:
                self._eval(condition, record)
        if isinstance(node, ast.DictComp):
            self._eval(node.key, record)
            self._eval(node.value, record)
        else:
            self._eval(node.elt, record)
        return out

    def _attr_read(self, node: ast.Attribute) -> Taint:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.enclosing_class is not None
        ):
            return Taint(
                attrs={f"{self.module}::{self.enclosing_class}.{node.attr}"}
            )
        return Taint(attrs={f"?.{node.attr}"})

    # -- calls ----------------------------------------------------------------

    def _dotted_name(self, func: ast.expr) -> Optional[str]:
        """``a.b.c`` normalized through the import table."""
        ref = encode_call_ref(func)
        if ref is None:
            return None
        kind, _, target = ref.partition(":")
        if kind == "n":
            return self.imports.get(target, target)
        if kind == "d":
            head, _, rest = target.partition(".")
            resolved = self.imports.get(head, head)
            return f"{resolved}.{rest}"
        return None

    def _eval_call(self, node: ast.Call, record: bool) -> Taint:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr

        self._maybe_note_fanout(node, func, record)

        # sorted(E, key=...) — the sanitizer (and the unstable re-taint).
        if name == "sorted" and isinstance(func, ast.Name) and node.args:
            inner = self._eval(node.args[0], record)
            for keyword in node.keywords:
                self._eval(keyword.value, record)
            sanitized = sanitize_taint(inner)
            for keyword in node.keywords:
                if keyword.arg == "key" and self._unstable_key(keyword.value):
                    sanitized = sanitized.union(Taint(srcs={"unstable-sort"}))
            return sanitized

        # Intrinsic sources, resolved through the import table.
        dotted = self._dotted_name(func)
        source_kind = SOURCE_CALLS.get(dotted) if dotted else None
        if source_kind is None and name in _COMPLETION_NAMES:
            source_kind = "completion-order"
        if source_kind is not None:
            for arg in node.args:
                self._eval(arg, record)
            return Taint(srcs={source_kind})

        if isinstance(func, ast.Name) and name in ("set", "frozenset"):
            for arg in node.args:
                self._eval(arg, record)
            return Taint(srcs={"set-order"})

        if isinstance(func, ast.Name) and name in _PURE_BUILTINS:
            for arg in node.args:
                self._eval(arg, record)
            for keyword in node.keywords:
                self._eval(keyword.value, record)
            return Taint.empty()

        if isinstance(func, ast.Name) and name in _PASSTHROUGH_CALLS:
            out = Taint.empty()
            first = None
            for index, arg in enumerate(node.args):
                taint = self._eval(arg, record)
                if index == 0:
                    first = (arg, taint)
                out = out.union(taint)
            for keyword in node.keywords:
                self._eval(keyword.value, record)
            if (
                record
                and name in ("list", "tuple", "enumerate")
                and first is not None
            ):
                self._note_sink("iteration", f"{name}()", first[0], first[1])
            return out

        receiver = None
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value, record)
            if name == "join" and node.args:
                joined = self._eval(node.args[0], record)
                if record:
                    self._note_sink(
                        "iteration", "str.join", node.args[0], joined
                    )
                return joined
            if name in _PASSTHROUGH_METHODS:
                out = receiver
                for arg in node.args:
                    out = out.union(self._eval(arg, record))
                return out
            if record:
                self._note_method_mutation(func)

        # A generic call: evaluate arguments once, record the event,
        # note sinks, and return a symbolic callee-return taint.
        arg_taints = [self._eval(arg, record) for arg in node.args]
        for keyword in node.keywords:
            self._eval(keyword.value, record)
        sparse_args = {
            str(index): taint.to_dict()
            for index, taint in enumerate(arg_taints)
            if not taint.is_empty()
        }

        if record and isinstance(func, ast.Attribute):
            if name in _WRITER_METHODS:
                for index, taint in enumerate(arg_taints):
                    self._note_sink(
                        "write", f".{name}()", node.args[index], taint
                    )

        ref = encode_call_ref(func)
        if ref is None:
            return Taint.empty()

        if record:
            event: dict = {"ref": ref, "line": node.lineno}
            if sparse_args:
                event["a"] = dict(sparse_args)
            roots = {}
            for index, arg in enumerate(node.args):
                root = self._root_of(arg)
                if root is not None:
                    roots[str(index)] = root
            if roots:
                event["r"] = roots
            self.calls.append(event)
            if name and is_sink_scope_name(name):
                # write_*/dumps_* helpers consume their value args.
                for index, taint in enumerate(arg_taints):
                    self._note_sink(
                        "write", f"{name}()", node.args[index], taint
                    )

        call_taint: dict = {"ref": ref, "line": node.lineno}
        if sparse_args:
            call_taint["a"] = sparse_args
        return Taint(calls=[call_taint])

    @staticmethod
    def _unstable_key(key: ast.expr) -> bool:
        if isinstance(key, ast.Name) and key.id in _UNSTABLE_KEY_FUNCS:
            return True
        if isinstance(key, ast.Lambda):
            for sub in ast.walk(key.body):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in _UNSTABLE_KEY_FUNCS
                ):
                    return True
        return False

    # -- R9 bookkeeping -------------------------------------------------------

    def _root_of(self, node: ast.expr) -> Optional[dict]:
        """The driver-side object a call argument is rooted in."""
        current = node
        while isinstance(current, (ast.Attribute, ast.Subscript, ast.Starred)):
            current = current.value
        if isinstance(current, ast.Name):
            name = current.id
            if name == "self":
                return {"k": "param", "i": 0}
            if name in self._param_index:
                return {"k": "param", "i": self._param_index[name]}
            if name in self._declared_globals:
                return {"k": "global", "n": name}
            if name not in self._locals and (
                name in self.module_globals or name in self.imports
            ):
                return {"k": "global", "n": name}
        return None

    def _is_counters(self, node: ast.expr) -> bool:
        current = node
        while isinstance(current, (ast.Attribute, ast.Subscript)):
            if (
                isinstance(current, ast.Attribute)
                and current.attr == "counters"
            ):
                return True
            current = current.value
        return isinstance(current, ast.Name) and current.id == "counters"

    def _note_mutation_target(self, target: ast.expr) -> None:
        """A subscript/attribute store mutates the object it is rooted
        in (``self`` counts: a bound method handed to an executor must
        not write instance state)."""
        base = target
        if isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if self._is_counters(base):
            return
        self._record_mutation(self._root_of(base))

    def _note_method_mutation(self, func: ast.Attribute) -> None:
        if func.attr not in MUTATING_METHODS:
            return
        if self._is_counters(func.value):
            return
        self._record_mutation(self._root_of(func.value))

    def _record_mutation(self, root: Optional[dict]) -> None:
        if root is None:
            return
        if root["k"] == "param":
            self.mutated_params.add(root["i"])
        elif root["k"] == "global":
            # Thread-local / context-var storage is per-worker by
            # construction — mutating it is not shared state.
            if root["n"] not in self.exempt_globals:
                self.mutated_globals.add(root["n"])

    def _maybe_note_fanout(
        self, node: ast.Call, func: ast.expr, record: bool
    ) -> None:
        if not record:
            return
        if not (
            isinstance(func, ast.Attribute) and func.attr in FANOUT_METHODS
        ):
            return
        tasks: List[dict] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            task = self._task_candidate(arg)
            if task is not None:
                tasks.append(task)
        if tasks:
            self.fanouts.append(
                {"method": func.attr, "line": node.lineno, "tasks": tasks}
            )

    def _task_candidate(self, arg: ast.expr) -> Optional[dict]:
        if isinstance(arg, (ast.Name, ast.Attribute)):
            ref = encode_call_ref(arg)
            if ref is None:
                return None
            if isinstance(arg, ast.Name) and (
                arg.id in self._locals and arg.id not in self._param_index
            ):
                return None  # a local binding; R2's territory
            return {"ref": ref}
        if isinstance(arg, ast.Call):
            func_name = None
            if isinstance(arg.func, ast.Name):
                func_name = arg.func.id
            elif isinstance(arg.func, ast.Attribute):
                func_name = arg.func.attr
            if func_name == "partial" and arg.args:
                ref = encode_call_ref(arg.args[0])
                if ref is None:
                    return None
                bound = []
                for bound_arg in arg.args[1:]:
                    root = self._root_of(bound_arg)
                    if root is not None:
                        bound.append(root)
                    elif isinstance(bound_arg, ast.Constant):
                        bound.append({"k": "literal"})
                    else:
                        bound.append({"k": "other"})
                return {"ref": ref, "bound": bound}
        return None

    # -- sinks ----------------------------------------------------------------

    def _note_sink(
        self, kind: str, detail: str, node: ast.expr, taint: Taint
    ) -> None:
        if not self.sink_scope or taint.is_empty():
            return
        self.sinks.append(
            {
                "kind": kind,
                "detail": detail,
                "line": getattr(node, "lineno", self.node.lineno),
                "col": getattr(node, "col_offset", 0),
                "taint": taint.to_dict(),
            }
        )


# ---------------------------------------------------------------------------
# per-file extraction
# ---------------------------------------------------------------------------


def _set_valued(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


#: Constructors whose instances are per-thread/per-context storage, so
#: module globals bound to them are exempt from the R9 model.
_WORKER_LOCAL_FACTORIES = frozenset({"local", "ContextVar"})


def _worker_local_valued(node: Optional[ast.expr]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else None
    )
    return name in _WORKER_LOCAL_FACTORIES


def extract_taint_facts(path: str, tree: ast.Module, symbols: dict) -> dict:
    """All function summaries + attribute writes for one file.

    ``symbols`` is the :func:`~repro.analysis.callgraph
    .extract_module_facts` dict for the same file (imports and module
    globals feed the local analysis).
    """
    module = symbols["module"]
    imports = symbols.get("imports", {})
    module_globals = set(symbols.get("globals", ()))
    file_sink_scope = is_sink_scope_path(path)

    # Module-level bindings of tainted values (``_IDS = set()``): reads
    # of these names inside functions resolve to the binding's taint.
    global_taints: Dict[str, dict] = {}
    exempt_globals: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = getattr(stmt, "value", None)
            set_taint = _set_valued(value)
            worker_local = _worker_local_valued(value)
            if not set_taint and not worker_local:
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if set_taint:
                        global_taints[target.id] = {"s": ["set-order"]}
                    else:
                        exempt_globals.add(target.id)

    functions: Dict[str, dict] = {}
    attr_writes: Dict[str, dict] = {}

    def make_extractor(node, qualname, enclosing_class) -> _FunctionExtractor:
        return _FunctionExtractor(
            qualname,
            node,
            module=module,
            imports=imports,
            module_globals=module_globals,
            global_taints=global_taints,
            exempt_globals=exempt_globals,
            enclosing_class=enclosing_class,
            sink_scope=file_sink_scope,
        )

    def note_attr_write(key: str, taint: Taint) -> None:
        merged = Taint.from_dict(attr_writes.get(key)).union(taint).to_dict()
        if merged:
            attr_writes[key] = merged

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[stmt.name] = make_extractor(stmt, stmt.name, None).run()
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{stmt.name}.{item.name}"
                    extractor = make_extractor(item, qualname, stmt.name)
                    functions[qualname] = extractor.run()
                    # Instance-attribute writes (``self.x = <tainted>``)
                    # merged across every method of the class.
                    for method_stmt in ast.walk(item):
                        if not isinstance(
                            method_stmt, (ast.Assign, ast.AnnAssign)
                        ):
                            continue
                        value = getattr(method_stmt, "value", None)
                        if value is None:
                            continue
                        targets = (
                            method_stmt.targets
                            if isinstance(method_stmt, ast.Assign)
                            else [method_stmt.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                taint = extractor._eval(value, False)
                                if not taint.is_empty():
                                    note_attr_write(
                                        f"{module}::{stmt.name}"
                                        f".{target.attr}",
                                        taint,
                                    )
                elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                    # Class-level attribute defaults (``x = set()``).
                    if not _set_valued(getattr(item, "value", None)):
                        continue
                    targets = (
                        item.targets
                        if isinstance(item, ast.Assign)
                        else [item.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            note_attr_write(
                                f"{module}::{stmt.name}.{target.id}",
                                Taint(srcs={"set-order"}),
                            )

    out: dict = {"functions": functions}
    if attr_writes:
        out["attr_writes"] = attr_writes
    return out
