"""Sampling and train/test splitting (Section 7's protocol).

The paper's experiments: reserve a uniform 10% of each dataset as the
test set, then train on 1%-, 10%-, 50%-, and 90%- uniform samples of
the remainder, 5 trials each with fresh sampling.  These helpers make
that protocol explicit and deterministic under seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: The training fractions swept in Tables 1, 2 and 5.
PAPER_TRAINING_FRACTIONS = (0.01, 0.10, 0.50, 0.90)

#: The paper's held-out test fraction.
PAPER_TEST_FRACTION = 0.10

#: The paper's trial count.
PAPER_TRIALS = 5


def uniform_sample(
    records: Sequence[T], fraction: float, seed: int = 0
) -> List[T]:
    """A uniform random sample of ``round(fraction * n)`` records.

    Exact-size sampling (not Bernoulli), deterministic under ``seed``,
    order-preserving.  Never returns fewer than one record for a
    positive fraction on non-empty input.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if not records or fraction == 0.0:
        return []
    count = int(round(fraction * len(records)))
    count = max(1, min(count, len(records)))
    rng = random.Random(seed)
    chosen = sorted(rng.sample(range(len(records)), count))
    return [records[i] for i in chosen]


@dataclass
class TrainTestSplit:
    """A train/test partition of a record collection."""

    train: List
    test: List

    @property
    def train_size(self) -> int:
        return len(self.train)

    @property
    def test_size(self) -> int:
        return len(self.test)


def train_test_split(
    records: Sequence[T],
    test_fraction: float = PAPER_TEST_FRACTION,
    seed: int = 0,
) -> TrainTestSplit:
    """Reserve a uniform ``test_fraction`` of records for testing."""
    if not 0.0 <= test_fraction < 1.0:
        raise ValueError("test_fraction must be within [0, 1)")
    indices = list(range(len(records)))
    rng = random.Random(seed)
    rng.shuffle(indices)
    test_count = int(round(test_fraction * len(records)))
    test_indices = set(indices[:test_count])
    train = [records[i] for i in range(len(records)) if i not in test_indices]
    test = [records[i] for i in sorted(test_indices)]
    return TrainTestSplit(train=train, test=test)


def trial_samples(
    train: Sequence[T],
    fraction: float,
    trials: int = PAPER_TRIALS,
    base_seed: int = 0,
) -> List[List[T]]:
    """``trials`` independent uniform samples of the training pool."""
    return [
        uniform_sample(train, fraction, seed=base_seed * 1000 + trial)
        for trial in range(trials)
    ]


def paper_protocol(
    records: Sequence[T],
    *,
    fraction: float,
    trial: int,
    seed: int = 0,
) -> Tuple[List[T], List[T]]:
    """One (train sample, test set) pair under the paper's protocol."""
    split = train_test_split(records, seed=seed)
    sample = uniform_sample(
        split.train, fraction, seed=seed * 1000 + trial
    )
    return sample, split.test
