"""IO: JSON-lines streaming (with an error channel), the fused
bytes-to-type fast path, and sampling."""

from repro.io.fastpath import (
    absorb_jsonlines_fused,
    ingest_jsonlines_fused,
    open_line_source,
    read_jsonlines_fused,
    split_byte_ranges,
)
from repro.io.jsonlines import (
    BAD_PAYLOAD_LIMIT,
    BadRecord,
    INGEST_MODES,
    INGEST_POLICIES,
    IngestReport,
    ingest_jsonlines,
    load_jsonlines,
    merge_ingest_reports,
    read_jsonlines,
    write_jsonlines,
)
from repro.io.sampling import (
    PAPER_TEST_FRACTION,
    PAPER_TRAINING_FRACTIONS,
    PAPER_TRIALS,
    TrainTestSplit,
    paper_protocol,
    train_test_split,
    trial_samples,
    uniform_sample,
)

__all__ = [
    "BAD_PAYLOAD_LIMIT",
    "BadRecord",
    "INGEST_MODES",
    "INGEST_POLICIES",
    "IngestReport",
    "PAPER_TEST_FRACTION",
    "PAPER_TRAINING_FRACTIONS",
    "PAPER_TRIALS",
    "TrainTestSplit",
    "absorb_jsonlines_fused",
    "ingest_jsonlines",
    "ingest_jsonlines_fused",
    "load_jsonlines",
    "merge_ingest_reports",
    "open_line_source",
    "paper_protocol",
    "read_jsonlines",
    "read_jsonlines_fused",
    "split_byte_ranges",
    "train_test_split",
    "trial_samples",
    "uniform_sample",
    "write_jsonlines",
]
