"""IO: JSON-lines streaming and the paper's sampling protocol."""

from repro.io.jsonlines import load_jsonlines, read_jsonlines, write_jsonlines
from repro.io.sampling import (
    PAPER_TEST_FRACTION,
    PAPER_TRAINING_FRACTIONS,
    PAPER_TRIALS,
    TrainTestSplit,
    paper_protocol,
    train_test_split,
    trial_samples,
    uniform_sample,
)

__all__ = [
    "PAPER_TEST_FRACTION",
    "PAPER_TRAINING_FRACTIONS",
    "PAPER_TRIALS",
    "TrainTestSplit",
    "load_jsonlines",
    "paper_protocol",
    "read_jsonlines",
    "train_test_split",
    "trial_samples",
    "uniform_sample",
    "write_jsonlines",
]
