"""IO: JSON-lines streaming (with an error channel) and sampling."""

from repro.io.jsonlines import (
    BAD_PAYLOAD_LIMIT,
    BadRecord,
    INGEST_POLICIES,
    IngestReport,
    ingest_jsonlines,
    load_jsonlines,
    read_jsonlines,
    write_jsonlines,
)
from repro.io.sampling import (
    PAPER_TEST_FRACTION,
    PAPER_TRAINING_FRACTIONS,
    PAPER_TRIALS,
    TrainTestSplit,
    paper_protocol,
    train_test_split,
    trial_samples,
    uniform_sample,
)

__all__ = [
    "BAD_PAYLOAD_LIMIT",
    "BadRecord",
    "INGEST_POLICIES",
    "IngestReport",
    "PAPER_TEST_FRACTION",
    "PAPER_TRAINING_FRACTIONS",
    "PAPER_TRIALS",
    "TrainTestSplit",
    "ingest_jsonlines",
    "load_jsonlines",
    "paper_protocol",
    "read_jsonlines",
    "train_test_split",
    "trial_samples",
    "uniform_sample",
    "write_jsonlines",
]
