"""JSON-lines reading and writing.

All of the paper's corpora ship as newline-delimited JSON; these
helpers stream them without materializing the file, tolerate blank
lines, and surface the offending line number on parse errors.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path as FsPath
from typing import IO, Iterable, Iterator, Union

from repro.errors import DatasetError
from repro.jsontypes.types import JsonValue

PathLike = Union[str, FsPath]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = FsPath(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_jsonlines(path: PathLike) -> Iterator[JsonValue]:
    """Stream records from a ``.jsonl`` (optionally ``.gz``) file."""
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc


def write_jsonlines(path: PathLike, records: Iterable[JsonValue]) -> int:
    """Write records as newline-delimited JSON; returns the count."""
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_jsonlines(path: PathLike) -> list:
    """Read a whole ``.jsonl`` file into a list."""
    return list(read_jsonlines(path))
