"""JSON-lines reading and writing, with an error channel.

All of the paper's corpora ship as newline-delimited JSON; these
helpers stream them without materializing the file.  Real collections
are dirty — truncated tails, byte-order marks, NUL bytes, nesting
deeper than the parser's stack, garbage lines — and a single bad line
must not abort a million-record run, so ingestion supports three
``on_bad_record`` policies:

* ``"raise"`` (default, the seed behaviour) — abort on the first
  malformed line with a :class:`~repro.errors.DatasetError` naming the
  line;
* ``"skip"`` — drop malformed lines, recording each one's line number,
  byte offset, and error in the :class:`IngestReport` (payloads are
  not retained);
* ``"collect"`` — like ``skip``, but additionally retain a truncated
  copy of each bad line's payload for postmortems.

Every read fills a per-file :class:`IngestReport`; pass your own to
:func:`read_jsonlines` to observe it, or use :func:`ingest_jsonlines`
to get ``(records, report)`` in one call.  Files are read as raw
bytes and split on ``\\n`` only, so byte offsets are sums of raw line
lengths in the (decompressed) stream — exact for CRLF files and for
multi-byte UTF-8 content alike, with no re-encoding step that could
drift.  Each line is decoded to UTF-8 individually; a line that is
not valid UTF-8 is a bad record under the active policy rather than a
stream-killing exception.

Tolerated without counting as errors: blank lines, and a UTF-8 BOM at
the start of the file.  Lines whose JSON is syntactically valid but
abusive (e.g. nesting past the recursion limit) are treated as bad
records rather than crashing the reader.

:mod:`repro.io.fastpath` provides the fused variant of this reader —
same files, same policies, same report accounting, but yielding
interned record *types* directly; ``ingest="fused"`` on
:func:`load_jsonlines` (and on the dataset/pipeline/CLI layers above)
selects it.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path as FsPath
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import DatasetError
from repro.jsontypes.types import JsonValue

PathLike = Union[str, FsPath]

#: The recognised ``on_bad_record`` policies.
INGEST_POLICIES = ("raise", "skip", "collect")

#: The recognised ingestion modes: the classic value reader and the
#: fused bytes\u2192type reader of :mod:`repro.io.fastpath`.
INGEST_MODES = ("classic", "fused")

#: Longest bad-line payload retained under the ``collect`` policy.
BAD_PAYLOAD_LIMIT = 160

#: The UTF-8 byte-order mark, as raw bytes (readers work on bytes).
_BOM_BYTES = b"\xef\xbb\xbf"


@dataclass(frozen=True)
class BadRecord:
    """One malformed line: where it was and why it failed."""

    #: 1-based line number in the file.
    line_number: int
    #: Byte offset of the line's first byte in the decompressed stream.
    byte_offset: int
    #: What the parser objected to.
    error: str
    #: The offending line, truncated to :data:`BAD_PAYLOAD_LIMIT`
    #: characters (empty under the ``skip`` policy, which does not
    #: retain payloads).
    payload: str = ""


@dataclass
class IngestReport:
    """Per-file account of an ingestion run."""

    path: str
    policy: str = "raise"
    #: Lines seen, including blank and malformed ones.
    total_lines: int = 0
    #: Well-formed records yielded.
    record_count: int = 0
    bad_records: List[BadRecord] = field(default_factory=list)

    @property
    def bad_count(self) -> int:
        return len(self.bad_records)

    @property
    def ok(self) -> bool:
        """Whether every non-blank line parsed."""
        return not self.bad_records

    def bad_line_numbers(self) -> List[int]:
        return [bad.line_number for bad in self.bad_records]

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.path}: {self.record_count} records, no bad lines"
            )
        positions = ", ".join(
            str(number) for number in self.bad_line_numbers()[:8]
        )
        suffix = ", ..." if self.bad_count > 8 else ""
        return (
            f"{self.path}: {self.record_count} records, "
            f"{self.bad_count} bad line(s) at {positions}{suffix}"
        )


def merge_ingest_reports(
    reports: Iterable[IngestReport],
    *,
    path: Optional[str] = None,
    policy: Optional[str] = None,
) -> IngestReport:
    """Combine shard-relative reports into one whole-file report.

    ``reports`` must come in shard order (ascending byte ranges).
    Each ranged read numbers lines relative to its own range, so bad
    records are re-based by the total line count of every preceding
    report; byte offsets are already absolute and pass through
    untouched.  With newline-aligned ranges covering the file exactly,
    the merged report equals the one a single whole-file read under
    the same policy would have produced.
    """
    reports = list(reports)
    merged = IngestReport(
        path=path
        if path is not None
        else (reports[0].path if reports else ""),
        policy=policy
        if policy is not None
        else (reports[0].policy if reports else "raise"),
    )
    lines_before = 0
    for report in reports:
        for bad in report.bad_records:
            merged.bad_records.append(
                BadRecord(
                    line_number=lines_before + bad.line_number,
                    byte_offset=bad.byte_offset,
                    error=bad.error,
                    payload=bad.payload,
                )
            )
        merged.record_count += report.record_count
        lines_before += report.total_lines
    merged.total_lines = lines_before
    return merged


def _open_text(path: PathLike, mode: str, newline: Optional[str] = None) -> IO[str]:
    path = FsPath(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8", newline=newline)
    return open(path, mode, encoding="utf-8", newline=newline)


def _open_binary(path: PathLike) -> IO[bytes]:
    """Open a (possibly gzipped) file as a raw byte stream.

    Line iteration over the result splits on ``\\n`` only, matching
    text mode with newline translation disabled; byte offsets are then
    plain sums of line lengths.
    """
    path = FsPath(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return open(path, "rb")


def _check_policy(on_bad_record: str) -> None:
    if on_bad_record not in INGEST_POLICIES:
        known = ", ".join(INGEST_POLICIES)
        raise DatasetError(
            f"unknown on_bad_record policy {on_bad_record!r}; known: {known}"
        )


def _check_ingest_mode(ingest: str) -> None:
    if ingest not in INGEST_MODES:
        known = ", ".join(INGEST_MODES)
        raise DatasetError(f"unknown ingest mode {ingest!r}; known: {known}")


def _seek_range_start(handle: IO[bytes], path: PathLike, start: int) -> None:
    """Position a byte stream at a shard range's first line.

    Ranged reads require random access to the *stored* bytes, so they
    are defined only for uncompressed files; a gzip member would have
    to be inflated from byte 0 anyway, which is why the sharding layer
    gives compressed inputs a single whole-file range instead.
    """
    if isinstance(handle, gzip.GzipFile):
        raise DatasetError(
            f"{path}: ranged reads require an uncompressed file"
        )
    handle.seek(start)


def read_jsonlines(
    path: PathLike,
    *,
    on_bad_record: str = "raise",
    report: Optional[IngestReport] = None,
    start: int = 0,
    end: Optional[int] = None,
) -> Iterator[JsonValue]:
    """Stream records from a ``.jsonl`` (optionally ``.gz``) file.

    ``on_bad_record`` selects the error-channel policy (see module
    docstring); pass an :class:`IngestReport` as ``report`` to observe
    per-line accounting.  The report is filled incrementally as the
    stream is consumed.

    ``start``/``end`` bound the read to a newline-aligned byte range
    (uncompressed files only; see
    :func:`repro.io.fastpath.split_byte_ranges`).  Within a range,
    line numbers are **range-relative** (the first line is 1) while
    byte offsets stay absolute; :func:`merge_ingest_reports` rebuilds
    whole-file line numbers from per-range reports.
    """
    _check_policy(on_bad_record)
    if report is None:
        report = IngestReport(path=str(path), policy=on_bad_record)
    else:
        report.policy = on_bad_record
    keep_payload = on_bad_record == "collect"
    byte_offset = start
    # Raw bytes in, one decode per line: offsets are sums of raw line
    # lengths (exact for multi-byte UTF-8 with no re-encoding), and a
    # line that is not valid UTF-8 is a policy-governed bad record
    # (UnicodeDecodeError is a ValueError) instead of a stream killer.
    with _open_binary(path) as handle:
        if start:
            _seek_range_start(handle, path, start)
        for line_number, line in enumerate(handle, start=1):
            line_offset = byte_offset
            if end is not None and line_offset >= end:
                break
            byte_offset += len(line)
            report.total_lines = line_number
            if line_number == 1 and start == 0 and line.startswith(_BOM_BYTES):
                line = line[len(_BOM_BYTES):]
            stripped = line.strip()
            if not stripped:
                continue
            try:
                value = json.loads(stripped.decode("utf-8"))
            except (ValueError, RecursionError) as exc:
                if on_bad_record == "raise":
                    raise DatasetError(
                        f"{path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                report.bad_records.append(
                    BadRecord(
                        line_number=line_number,
                        byte_offset=line_offset,
                        error=f"{type(exc).__name__}: {exc}",
                        payload=(
                            stripped.decode("utf-8", "replace")[
                                :BAD_PAYLOAD_LIMIT
                            ]
                            if keep_payload
                            else ""
                        ),
                    )
                )
                _note_bad_record()
                continue
            report.record_count += 1
            yield value


def _note_bad_record() -> None:
    # Lazy import: io must stay importable without the engine layer.
    from repro.engine.instrument import counters

    counters.add("ingest.bad_records")


def ingest_jsonlines(
    path: PathLike, *, on_bad_record: str = "skip"
) -> Tuple[List[JsonValue], IngestReport]:
    """Read a whole file under an error-channel policy.

    Returns ``(records, report)``; with the default ``skip`` policy the
    records are every well-formed line and the report pins down the
    rest.
    """
    report = IngestReport(path=str(path), policy=on_bad_record)
    records = list(
        read_jsonlines(path, on_bad_record=on_bad_record, report=report)
    )
    return records, report


def write_jsonlines(path: PathLike, records: Iterable[JsonValue]) -> int:
    """Write records as newline-delimited JSON; returns the count."""
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_jsonlines(
    path: PathLike,
    *,
    on_bad_record: str = "raise",
    ingest: str = "classic",
) -> list:
    """Read a whole ``.jsonl`` file into a list.

    ``ingest="classic"`` returns parsed values; ``ingest="fused"``
    returns the records' interned *types* (see
    :mod:`repro.io.fastpath`) — the right input for anything that is a
    function of types only, at a fraction of the parse cost.
    """
    _check_ingest_mode(ingest)
    if ingest == "fused":
        from repro.io.fastpath import read_jsonlines_fused

        return list(read_jsonlines_fused(path, on_bad_record=on_bad_record))
    return list(read_jsonlines(path, on_bad_record=on_bad_record))
