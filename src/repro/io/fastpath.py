"""Fused JSON-lines ingestion: bytes → interned JsonType in one pass.

The classic pipeline crosses the data three times per line — ``bytes →
str → json.loads value tree → type_of → JsonType`` — and throws two of
the three intermediate representations away.  :func:`read_jsonlines_fused`
collapses it: raw line bytes (memory-mapped for plain files) go
straight to an interned :class:`~repro.jsontypes.types.JsonType` via
the :mod:`repro.jsontypes.tokenizer` scanner, with a structural-hash
fast path in front: each eligible line's key-shape skeleton probes a
bounded :class:`~repro.jsontypes.tokenizer.ShapeCache`, and a hit
reuses the already-interned type without parsing at all.  On corpora
with structural repetition — every corpus schema discovery is for —
the cache absorbs ~99% of lines.

**Contract: byte-identical to the slow path.**  For any file and any
``on_bad_record`` policy, feeding this reader's types into a
:class:`~repro.discovery.state.DiscoveryState` produces the same
``to_bytes()`` as absorbing the classic reader's values, and the
:class:`~repro.io.jsonlines.IngestReport` (line numbers, byte offsets,
error strings) is equal as well.  The pieces that guarantee it:

* the skeleton's collision-safety contract (see the tokenizer module)
  means a hit can only ever return the exact type the scanner would
  have produced, and malformed lines never hit;
* a shape's *first* occurrence is always a miss that parses, interns,
  and absorbs the type — so bag first-occurrence order (the codec's
  byte order) matches the classic fold exactly, and FIFO eviction
  cannot reorder anything (a re-parse re-interns to the same object);
* misses parse with the same C scanner as ``json.loads`` on the same
  decoded text, so malformed lines produce the same exception text,
  and lines that only fail the ``MAX_DEPTH`` bound raise
  :class:`~repro.errors.RecursionDepthError` *after* being counted —
  exactly when the classic consumer's ``absorb`` would have.

The one intentional asymmetry: this reader yields **types**, not
values, so it serves discovery (and anything else that is a function
of types only); consumers that need the values keep the classic
reader.

Counters (flushed once per file, not per line):
``ingest.fused_records``, ``ingest.shape_hits``,
``ingest.shape_misses``, ``ingest.bytes``, and the shared
``ingest.bad_records``.
"""

from __future__ import annotations

import gzip
import mmap
from typing import Iterator, List, Optional, Tuple

from repro.errors import DatasetError, RecursionDepthError
from repro.io.jsonlines import (
    BAD_PAYLOAD_LIMIT,
    BadRecord,
    IngestReport,
    PathLike,
    _BOM_BYTES,
    _check_policy,
    _note_bad_record,
    _open_binary,
    _seek_range_start,
)
from repro.jsontypes.tokenizer import (
    NUMBER_RE,
    ShapeCache,
    UNSAFE_BYTES,
    depth_exceeds,
    scan_type,
    scan_typed,
)
from repro.jsontypes.types import JsonType, MAX_DEPTH


def open_line_source(path: PathLike):
    """Binary line source for ``path``: an mmap when possible.

    Plain files are memory-mapped (read-only) so line iteration walks
    the page cache without a userspace buffer copy; gzip and empty
    files fall back to the buffered binary stream.  Returns
    ``(handle, mapped)`` where ``mapped`` is ``None`` on fallback;
    the caller owns both and must close them.
    """
    handle = _open_binary(path)
    if isinstance(handle, gzip.GzipFile):
        # A GzipFile's fileno() is the *compressed* file's descriptor;
        # mapping it would read raw deflate bytes.  Stream instead.
        return handle, None
    try:
        fileno = handle.fileno()
        mapped = mmap.mmap(fileno, 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError, AttributeError):
        # Empty files cannot be mapped; pipes and other unmappable
        # handles fall back too.  The buffered stream is equivalent.
        return handle, None
    return handle, mapped


def split_byte_ranges(path: PathLike, shards: int):
    """Newline-aligned byte ranges covering ``path``, or ``None``.

    Divides the file into at most ``shards`` contiguous ranges whose
    boundaries sit just after a newline, so every range starts at a
    line start and the ranges partition the file exactly — computed
    from the mmap'd line source in O(shards) ``find`` calls without
    reading any records.  Returns ``None`` when the file cannot be
    range-split (gzip, empty, unmappable); callers then fall back to a
    single whole-file shard.  Short files yield fewer ranges than
    requested rather than empty ones.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    handle, mapped = open_line_source(path)
    try:
        if mapped is None:
            return None
        size = len(mapped)
        if size == 0:
            return None
        boundaries = [0]
        for index in range(1, shards):
            candidate = index * size // shards
            if candidate <= boundaries[-1]:
                continue
            newline = mapped.find(b"\n", candidate)
            boundary = size if newline == -1 else newline + 1
            if boundary > boundaries[-1] and boundary < size:
                boundaries.append(boundary)
        boundaries.append(size)
        return list(zip(boundaries, boundaries[1:]))
    finally:
        if mapped is not None:
            mapped.close()
        handle.close()


def read_jsonlines_fused(
    path: PathLike,
    *,
    on_bad_record: str = "raise",
    report: Optional[IngestReport] = None,
    shape_cache: Optional[ShapeCache] = None,
    start: int = 0,
    end: Optional[int] = None,
) -> Iterator[JsonType]:
    """Stream the interned record *types* of a ``.jsonl`` file.

    Same signature, policies, report accounting, and error behaviour
    as :func:`~repro.io.jsonlines.read_jsonlines` (including its
    ``start``/``end`` ranged reads with range-relative line numbers
    and absolute byte offsets), but each yielded item is the record's
    :class:`~repro.jsontypes.types.JsonType` rather than its parsed
    value.  Pass a :class:`ShapeCache` to share shape state across
    files (e.g. an append sequence); by default each call gets a fresh
    bounded cache.
    """
    _check_policy(on_bad_record)
    if report is None:
        report = IngestReport(path=str(path), policy=on_bad_record)
    else:
        report.policy = on_bad_record
    keep_payload = on_bad_record == "collect"
    cache = shape_cache if shape_cache is not None else ShapeCache()
    cache_get = cache._table.get
    number_sub = NUMBER_RE.sub
    hits = 0
    misses = 0
    records = 0
    byte_offset = start
    handle, mapped = open_line_source(path)
    if start:
        if mapped is not None:
            mapped.seek(start)
        else:
            _seek_range_start(handle, path, start)
    lines = iter(mapped.readline, b"") if mapped is not None else handle
    try:
        for line_number, line in enumerate(lines, start=1):
            if end is not None and byte_offset >= end:
                break
            byte_offset += len(line)
            report.total_lines = line_number
            if line_number == 1 and start == 0 and line.startswith(_BOM_BYTES):
                line = line[len(_BOM_BYTES):]
            stripped = line.strip()
            if not stripped:
                continue
            # -- the structural-hash fast path (inlined skeleton:
            # this loop is the benchmark's hot path, and a per-line
            # function-call boundary costs ~15% of the win;
            # tokenizer.structural_skeleton is the pinned reference
            # implementation this must match).
            skeleton = None
            if len(stripped.translate(None, UNSAFE_BYTES)) == len(stripped):
                parts = stripped.split(b'"')
                if len(parts) % 2 == 1:
                    outs = parts[0::2]
                    keys = tuple(
                        span
                        for span, nxt in zip(parts[1::2], outs[1:])
                        if nxt[:1] == b":"
                        or (nxt[:1] == b" " and nxt.lstrip()[:1] == b":")
                    )
                    skeleton = (number_sub(b"0", b"\x01".join(outs)), keys)
                    tau = cache_get(skeleton)
                    if tau is not None:
                        hits += 1
                        records += 1
                        report.record_count += 1
                        yield tau
                        continue
            # -- the scanner path (first occurrence of a shape, or a
            # line the skeleton refuses: escapes, non-ASCII, garbage).
            try:
                tau = scan_type(stripped.decode("utf-8"))
            except (ValueError, RecursionError) as exc:
                if on_bad_record == "raise":
                    raise DatasetError(
                        f"{path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                report.bad_records.append(
                    BadRecord(
                        line_number=line_number,
                        byte_offset=byte_offset - len(line),
                        error=f"{type(exc).__name__}: {exc}",
                        payload=(
                            stripped.decode("utf-8", "replace")[
                                :BAD_PAYLOAD_LIMIT
                            ]
                            if keep_payload
                            else ""
                        ),
                    )
                )
                _note_bad_record()
                continue
            if depth_exceeds(tau, MAX_DEPTH):
                # The classic path counts the record at yield time and
                # crashes in the consumer's type_of; mirror that exact
                # ordering so reports and failure modes line up.
                records += 1
                report.record_count += 1
                raise RecursionDepthError(
                    "value exceeds maximum nesting depth"
                )
            misses += 1
            records += 1
            report.record_count += 1
            if skeleton is not None:
                cache.put(skeleton, tau)
            yield tau
    finally:
        cache.hits += hits
        cache.misses += misses
        _flush_counters(records, hits, misses, byte_offset - start)
        if mapped is not None:
            mapped.close()
        handle.close()


def _flush_counters(records: int, hits: int, misses: int, nbytes: int) -> None:
    # One locked add per counter per file; never per line.
    from repro.engine.instrument import counters

    counters.add("ingest.fused_records", records)
    counters.add("ingest.shape_hits", hits)
    counters.add("ingest.shape_misses", misses)
    counters.add("ingest.bytes", nbytes)


def read_jsonlines_typed(
    path: PathLike,
    *,
    on_bad_record: str = "raise",
    report: Optional[IngestReport] = None,
    start: int = 0,
    end: Optional[int] = None,
) -> Iterator[Tuple[JsonType, object]]:
    """Stream ``(type, value)`` pairs of a ``.jsonl`` file in one pass.

    The enrichment sibling of :func:`read_jsonlines_fused`: the same
    loop structure, policies, report accounting, ranged reads, and
    error behaviour, but every record is parsed by the typed scanner
    so the *value* survives alongside the interned type.  There is no
    structural-hash fast path here — a cache hit skips parsing, and
    enrichment sketches need the parsed values — so this reader costs
    one full parse per line; that cost is exactly the sketch overhead
    :mod:`benchmarks.bench_enrich` measures.

    Yields the same types (the same interned objects) in the same
    order as the fused reader, with the same :class:`IngestReport`, so
    discovery over this reader is byte-identical to discovery over the
    fused one.
    """
    _check_policy(on_bad_record)
    if report is None:
        report = IngestReport(path=str(path), policy=on_bad_record)
    else:
        report.policy = on_bad_record
    keep_payload = on_bad_record == "collect"
    records = 0
    byte_offset = start
    handle, mapped = open_line_source(path)
    if start:
        if mapped is not None:
            mapped.seek(start)
        else:
            _seek_range_start(handle, path, start)
    lines = iter(mapped.readline, b"") if mapped is not None else handle
    try:
        for line_number, line in enumerate(lines, start=1):
            if end is not None and byte_offset >= end:
                break
            byte_offset += len(line)
            report.total_lines = line_number
            if line_number == 1 and start == 0 and line.startswith(_BOM_BYTES):
                line = line[len(_BOM_BYTES):]
            stripped = line.strip()
            if not stripped:
                continue
            try:
                tau, value = scan_typed(stripped.decode("utf-8"))
            except (ValueError, RecursionError) as exc:
                if on_bad_record == "raise":
                    raise DatasetError(
                        f"{path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                report.bad_records.append(
                    BadRecord(
                        line_number=line_number,
                        byte_offset=byte_offset - len(line),
                        error=f"{type(exc).__name__}: {exc}",
                        payload=(
                            stripped.decode("utf-8", "replace")[
                                :BAD_PAYLOAD_LIMIT
                            ]
                            if keep_payload
                            else ""
                        ),
                    )
                )
                _note_bad_record()
                continue
            if depth_exceeds(tau, MAX_DEPTH):
                # Count first, then raise — the fused reader's exact
                # ordering, which itself mirrors the classic path.
                records += 1
                report.record_count += 1
                raise RecursionDepthError(
                    "value exceeds maximum nesting depth"
                )
            records += 1
            report.record_count += 1
            yield tau, value
    finally:
        _flush_typed_counters(records, byte_offset - start)
        if mapped is not None:
            mapped.close()
        handle.close()


def _flush_typed_counters(records: int, nbytes: int) -> None:
    # One locked add per counter per file; never per line.
    from repro.engine.instrument import counters

    counters.add("ingest.typed_records", records)
    counters.add("ingest.bytes", nbytes)


def absorb_jsonlines_typed(
    state,
    path: PathLike,
    *,
    on_bad_record: str = "raise",
    start: int = 0,
    end: Optional[int] = None,
) -> IngestReport:
    """One-pass *enriched* ingestion: types and values into a state.

    The enrichment analogue of :func:`absorb_jsonlines_fused`: each
    record's interned type feeds the structural fold and its parsed
    value feeds the state's enrichment sidecar, via
    ``state.absorb_typed``.  Works on unenriched states too (the value
    is then simply dropped), so callers can branch on the reader
    rather than the state.  Returns the filled report.
    """
    report = IngestReport(path=str(path), policy=on_bad_record)
    absorb_typed = state.absorb_typed
    for tau, value in read_jsonlines_typed(
        path,
        on_bad_record=on_bad_record,
        report=report,
        start=start,
        end=end,
    ):
        absorb_typed(tau, value)
    return report


def ingest_jsonlines_fused(
    path: PathLike,
    *,
    on_bad_record: str = "skip",
    shape_cache: Optional[ShapeCache] = None,
) -> Tuple[List[JsonType], IngestReport]:
    """Read a whole file into ``(types, report)`` under a policy.

    The fused analogue of :func:`~repro.io.jsonlines.ingest_jsonlines`.
    """
    report = IngestReport(path=str(path), policy=on_bad_record)
    types = list(
        read_jsonlines_fused(
            path,
            on_bad_record=on_bad_record,
            report=report,
            shape_cache=shape_cache,
        )
    )
    return types, report


def absorb_jsonlines_fused(
    state,
    path: PathLike,
    *,
    on_bad_record: str = "raise",
    shape_cache: Optional[ShapeCache] = None,
) -> IngestReport:
    """One-pass ingestion: stream a file's types straight into a
    :class:`~repro.discovery.state.DiscoveryState`.

    Equivalent to ``state.absorb(value)`` over the classic reader —
    same resulting state bytes, same report — without ever holding
    more than one line in memory.  Returns the filled report.
    """
    report = IngestReport(path=str(path), policy=on_bad_record)
    absorb_type = state.absorb_type
    for tau in read_jsonlines_fused(
        path,
        on_bad_record=on_bad_record,
        report=report,
        shape_cache=shape_cache,
    ):
        absorb_type(tau)
    return report
