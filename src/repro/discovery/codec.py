"""Versioned, deterministic binary serialization of discovery state.

Every constituent of a :class:`~repro.discovery.state.DiscoveryState`
— counted bags, :class:`~repro.jsontypes.types.JsonType`\\ s, schemas,
stat trees, tuple shapes, fold nodes, collection decisions, entity
clusters and key-set universes — has a codec here, so partial states
can cross the executor boundary (and checkpoint files) in a compact
wire form instead of as pickled live objects.

Design:

* Every payload starts with a fixed header: magic ``RDSC``, a codec
  version (uvarint), and a payload-kind string.  Decoding a payload of
  the wrong kind or version fails loudly
  (:class:`~repro.errors.StateCodecError`), never silently.
* Each payload carries a **type pool**: a table of the distinct
  :class:`JsonType` nodes it references, written bottom-up so every
  row only points at earlier rows.  The body then refers to types by
  pool id.  Decoding rebuilds each node bottom-up and re-interns it
  through :func:`~repro.jsontypes.types.intern_type`, so decoded types
  are pointer-equal to their live counterparts whenever interning is
  on.
* Encoding is **deterministic**: unordered containers (sets, hash
  dicts) are written in a canonical sort order, while containers whose
  iteration order is semantic (a counted bag's first-occurrence order,
  a union's branch order, a cluster's member order) are written in
  that order.  Equal states therefore produce equal bytes, which is
  what lets state equality be byte equality and lets the chaos tests
  assert byte-identical schemas across resume boundaries.

Integers use LEB128 (``uvarint``; zig-zag ``svarint`` where signs can
occur), floats use little-endian IEEE-754 doubles, and strings are
length-prefixed UTF-8.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.discovery.config import EntityStrategy, FeatureMode, JxplainConfig
from repro.discovery.fold import (
    ArrayCollAcc,
    ArrayEntityAcc,
    FoldNode,
    ObjectCollAcc,
    ObjectEntityAcc,
)
from repro.discovery.sketches import (
    BloomMembershipSketch,
    EnrichmentOptions,
    EnrichmentState,
    HLLCardinalitySketch,
    KeyEvidence,
    MinMaxSketch,
    PathSketches,
    SKETCH_CLASSES,
    StringFormatSketch,
    scalar_from_key,
    scalar_key,
)
from repro.discovery.stat_tree import CollectionDecisions, StatTree
from repro.entities.bimax import EntityCluster
from repro.entities.keyset import KeySetUniverse
from repro.errors import StateCodecError
from repro.heuristics.collection import CollectionEvidence, Designation
from repro.jsontypes.bag import CountedBag, ListBag, TypeBag
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import Path, STAR
from repro.jsontypes.similarity import SimilarityAccumulator
from repro.jsontypes.types import (
    ArrayType,
    JsonType,
    ObjectType,
    PRIMITIVES,
    PrimitiveType,
    intern_type,
)
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PRIMITIVE_SCHEMAS,
    PrimitiveSchema,
    Schema,
    Union,
)

#: Header magic of every payload ("Repro Discovery State Codec").
MAGIC = b"RDSC"

#: Bumped whenever the wire format changes incompatibly.
#: Version 2: state bodies carry a trailing enrichment section
#: (value-domain sketches + discriminant evidence; PR 8).
CODEC_VERSION = 2

#: Fixed kind numbering shared by every codec below.
_KIND_ORDER: Tuple[Kind, ...] = (
    Kind.BOOLEAN,
    Kind.NUMBER,
    Kind.STRING,
    Kind.NULL,
    Kind.OBJECT,
    Kind.ARRAY,
)
_KIND_TAG: Dict[Kind, int] = {kind: tag for tag, kind in enumerate(_KIND_ORDER)}

_DESIGNATION_ORDER = (Designation.TUPLE, Designation.COLLECTION)
_DESIGNATION_TAG = {d: tag for tag, d in enumerate(_DESIGNATION_ORDER)}


# -- primitive writer / reader ------------------------------------------------


class _Writer:
    """Append-only byte buffer with the codec's primitive encodings."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def uvarint(self, value: int) -> None:
        if value < 0:
            raise StateCodecError(f"uvarint cannot encode {value}")
        buf = self._buf
        while value >= 0x80:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def svarint(self, value: int) -> None:
        # Zig-zag: small magnitudes of either sign stay small.
        self.uvarint((value << 1) ^ (value >> 63) if value >= 0 else (
            ((-value) << 1) - 1
        ))

    def boolean(self, value: bool) -> None:
        self._buf.append(1 if value else 0)

    def float64(self, value: float) -> None:
        self._buf += struct.pack("<d", value)

    def string(self, value: str) -> None:
        encoded = value.encode("utf-8")
        self.uvarint(len(encoded))
        self._buf += encoded

    def raw(self, data: bytes) -> None:
        self._buf += data

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class _Reader:
    """Bounds-checked counterpart of :class:`_Writer`."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self._data = data
        self._pos = pos

    def _take(self, size: int) -> bytes:
        end = self._pos + size
        if end > len(self._data):
            raise StateCodecError("truncated payload")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self._take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise StateCodecError("malformed uvarint")

    def svarint(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def boolean(self) -> bool:
        byte = self._take(1)[0]
        if byte not in (0, 1):
            raise StateCodecError(f"malformed boolean byte {byte}")
        return byte == 1

    def float64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def string(self) -> str:
        size = self.uvarint()
        return self._take(size).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)


# -- the JsonType pool --------------------------------------------------------
#
# Type rows: 0..3 = the primitive singletons (in _KIND_ORDER order),
# 4 = object (field count, then (key, child id) pairs in the type's own
# sorted-field order), 5 = array (element count, then child ids).

_PRIM_ROW_TAG = {
    Kind.BOOLEAN: 0,
    Kind.NUMBER: 1,
    Kind.STRING: 2,
    Kind.NULL: 3,
}
_PRIM_BY_ROW_TAG = {
    tag: PRIMITIVES[kind] for kind, tag in _PRIM_ROW_TAG.items()
}


class _TypePool:
    """Assigns pool ids to types, children before parents."""

    __slots__ = ("_ids", "_rows")

    def __init__(self) -> None:
        self._ids: Dict[JsonType, int] = {}
        self._rows: List[bytes] = []

    def add(self, tau: JsonType) -> int:
        existing = self._ids.get(tau)
        if existing is not None:
            return existing
        row = _Writer()
        if isinstance(tau, PrimitiveType):
            row.uvarint(_PRIM_ROW_TAG[tau.kind])
        elif isinstance(tau, ObjectType):
            child_ids = [(key, self.add(value)) for key, value in tau.fields]
            row.uvarint(4)
            row.uvarint(len(child_ids))
            for key, child_id in child_ids:
                row.string(key)
                row.uvarint(child_id)
        elif isinstance(tau, ArrayType):
            child_ids = [self.add(value) for value in tau.elements]
            row.uvarint(5)
            row.uvarint(len(child_ids))
            for child_id in child_ids:
                row.uvarint(child_id)
        else:
            raise StateCodecError(f"not a JSON type: {tau!r}")
        # Children registered themselves during recursion; this node's
        # id is whatever slot comes next (strictly after its children).
        type_id = len(self._rows)
        self._rows.append(row.getvalue())
        self._ids[tau] = type_id
        return type_id

    def write_table(self, out: _Writer) -> None:
        out.uvarint(len(self._rows))
        for row in self._rows:
            out.raw(row)


def _read_type_table(reader: _Reader) -> List[JsonType]:  # repro-lint: disable=R6 — writer is _TypePool.write_table
    count = reader.uvarint()
    types: List[JsonType] = []
    for _ in range(count):
        tag = reader.uvarint()
        if tag in _PRIM_BY_ROW_TAG:
            types.append(_PRIM_BY_ROW_TAG[tag])
            continue
        if tag == 4:
            fields = {}
            for _ in range(reader.uvarint()):
                key = reader.string()
                child_id = reader.uvarint()
                if child_id >= len(types):
                    raise StateCodecError("type row references later row")
                fields[key] = types[child_id]
            types.append(intern_type(ObjectType(fields)))
            continue
        if tag == 5:
            elements = []
            for _ in range(reader.uvarint()):
                child_id = reader.uvarint()
                if child_id >= len(types):
                    raise StateCodecError("type row references later row")
                elements.append(types[child_id])
            types.append(intern_type(ArrayType(tuple(elements))))
            continue
        raise StateCodecError(f"unknown type-row tag {tag}")
    return types


# -- encoder / decoder --------------------------------------------------------


class Encoder:
    """Accumulates a payload body plus the type pool it references.

    ``blob`` redirects writes into a temporary buffer and returns its
    bytes — the mechanism behind canonical (sorted-by-encoding) output
    for unordered containers.  Pool ids are assigned at encode time and
    are unaffected by blob reordering, so sorting blobs never perturbs
    the table.
    """

    def __init__(self) -> None:
        self._pool = _TypePool()
        self._stack: List[_Writer] = [_Writer()]

    @property
    def w(self) -> _Writer:
        return self._stack[-1]

    def type_ref(self, tau: JsonType) -> None:
        self.w.uvarint(self._pool.add(tau))

    def blob(self, write_fn: Callable, *args) -> bytes:
        self._stack.append(_Writer())
        write_fn(self, *args)
        return self._stack.pop().getvalue()

    def sorted_blobs(self, items: Iterable, write_fn: Callable) -> None:
        """Write ``items`` canonically: count, then the items' encodings
        in ascending byte order."""
        blobs = sorted(self.blob(write_fn, item) for item in items)
        self.w.uvarint(len(blobs))
        for blob in blobs:
            self.w.raw(blob)

    def finish(self, kind: str) -> bytes:
        if len(self._stack) != 1:
            raise StateCodecError("unbalanced blob encoding")
        head = _Writer()
        head.raw(MAGIC)
        head.uvarint(CODEC_VERSION)
        head.string(kind)
        self._pool.write_table(head)
        head.raw(self._stack[0].getvalue())
        return head.getvalue()


class Decoder:
    """Parses a payload header + type table and exposes the body."""

    def __init__(self, data: bytes, expect_kind: Optional[str] = None):
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise StateCodecError(
                f"payload must be bytes, got {type(data).__name__}"
            )
        data = bytes(data)
        if data[:4] != MAGIC:
            raise StateCodecError("bad magic: not a discovery-state payload")
        reader = _Reader(data, 4)
        version = reader.uvarint()
        if version != CODEC_VERSION:
            raise StateCodecError(
                f"unsupported codec version {version} "
                f"(this build reads version {CODEC_VERSION})"
            )
        self.kind = reader.string()
        if expect_kind is not None and self.kind != expect_kind:
            raise StateCodecError(
                f"payload kind mismatch: expected {expect_kind!r}, "
                f"got {self.kind!r}"
            )
        self.types = _read_type_table(reader)
        self.r = reader

    def type_ref(self) -> JsonType:
        type_id = self.r.uvarint()
        if type_id >= len(self.types):
            raise StateCodecError(f"dangling type reference {type_id}")
        return self.types[type_id]

    def finish(self) -> None:
        if not self.r.exhausted:
            raise StateCodecError("trailing bytes after payload body")


def _dumps(kind: str, write_fn: Callable, value) -> bytes:
    enc = Encoder()
    write_fn(enc, value)
    return enc.finish(kind)


def _loads(kind: str, read_fn: Callable, data: bytes):
    dec = Decoder(data, expect_kind=kind)
    value = read_fn(dec)
    dec.finish()
    return value


# -- small shared pieces ------------------------------------------------------


def _write_kind(enc: Encoder, kind: Kind) -> None:
    enc.w.uvarint(_KIND_TAG[kind])


def _read_kind(dec: Decoder) -> Kind:
    tag = dec.r.uvarint()
    if tag >= len(_KIND_ORDER):
        raise StateCodecError(f"unknown kind tag {tag}")
    return _KIND_ORDER[tag]


def _write_opt_uvarint(enc: Encoder, value: Optional[int]) -> None:
    enc.w.boolean(value is not None)
    if value is not None:
        enc.w.uvarint(value)


def _read_opt_uvarint(dec: Decoder) -> Optional[int]:
    return dec.r.uvarint() if dec.r.boolean() else None


def write_path(enc: Encoder, path: Path) -> None:
    enc.w.uvarint(len(path))
    for step in path:
        if step is STAR:
            enc.w.uvarint(2)
        elif isinstance(step, str):
            enc.w.uvarint(0)
            enc.w.string(step)
        elif isinstance(step, int):
            enc.w.uvarint(1)
            enc.w.uvarint(step)
        else:
            raise StateCodecError(f"unknown path step {step!r}")


def read_path(dec: Decoder) -> Path:
    steps: list = []
    for _ in range(dec.r.uvarint()):
        tag = dec.r.uvarint()
        if tag == 0:
            steps.append(dec.r.string())
        elif tag == 1:
            steps.append(dec.r.uvarint())
        elif tag == 2:
            steps.append(STAR)
        else:
            raise StateCodecError(f"unknown path-step tag {tag}")
    return tuple(steps)


def _write_feature(enc: Encoder, feature) -> None:
    """One key-set member: a plain key (str) or a path (tuple)."""
    if isinstance(feature, str):
        enc.w.uvarint(0)
        enc.w.string(feature)
    elif isinstance(feature, tuple):
        enc.w.uvarint(1)
        write_path(enc, feature)
    else:
        raise StateCodecError(f"unknown feature element {feature!r}")


def _read_feature(dec: Decoder):
    tag = dec.r.uvarint()
    if tag == 0:
        return dec.r.string()
    if tag == 1:
        return read_path(dec)
    raise StateCodecError(f"unknown feature tag {tag}")


def _write_key_set(enc: Encoder, key_set) -> None:
    enc.sorted_blobs(key_set, _write_feature)


def _read_key_set(dec: Decoder) -> frozenset:
    return frozenset(_read_feature(dec) for _ in range(dec.r.uvarint()))


# -- schemas ------------------------------------------------------------------
#
# Tags: 0 NEVER, 1 primitive, 2 ObjectTuple, 3 ArrayTuple,
# 4 ArrayCollection, 5 ObjectCollection, 6 Union.  Union branch order
# is preserved (it is the presentation order the renderer shows), as
# are the sorted field tuples ObjectTuple stores.


def write_schema(enc: Encoder, schema: Schema) -> None:
    if schema is NEVER:
        enc.w.uvarint(0)
    elif isinstance(schema, PrimitiveSchema):
        enc.w.uvarint(1)
        _write_kind(enc, schema.kind)
    elif isinstance(schema, ObjectTuple):
        enc.w.uvarint(2)
        for fields in (schema.required, schema.optional):
            enc.w.uvarint(len(fields))
            for key, child in fields:
                enc.w.string(key)
                write_schema(enc, child)
    elif isinstance(schema, ArrayTuple):
        enc.w.uvarint(3)
        enc.w.uvarint(len(schema.elements))
        for child in schema.elements:
            write_schema(enc, child)
        enc.w.uvarint(schema.min_length)
    elif isinstance(schema, ArrayCollection):
        enc.w.uvarint(4)
        write_schema(enc, schema.element)
        enc.w.uvarint(schema.max_length_seen)
    elif isinstance(schema, ObjectCollection):
        enc.w.uvarint(5)
        write_schema(enc, schema.value)
        enc.sorted_blobs(
            schema.domain, lambda e, key: e.w.string(key)
        )
    elif isinstance(schema, Union):
        enc.w.uvarint(6)
        enc.w.uvarint(len(schema.branches))
        for branch in schema.branches:
            write_schema(enc, branch)
    else:
        raise StateCodecError(f"unknown schema node {schema!r}")


def read_schema(dec: Decoder) -> Schema:
    tag = dec.r.uvarint()
    if tag == 0:
        return NEVER
    if tag == 1:
        return PRIMITIVE_SCHEMAS[_read_kind(dec)]
    if tag == 2:
        required = {
            dec.r.string(): read_schema(dec)
            for _ in range(dec.r.uvarint())
        }
        optional = {
            dec.r.string(): read_schema(dec)
            for _ in range(dec.r.uvarint())
        }
        return ObjectTuple(required, optional)
    if tag == 3:
        elements = [read_schema(dec) for _ in range(dec.r.uvarint())]
        return ArrayTuple(elements, dec.r.uvarint())
    if tag == 4:
        element = read_schema(dec)
        return ArrayCollection(element, max_length_seen=dec.r.uvarint())
    if tag == 5:
        value = read_schema(dec)
        domain = frozenset(
            dec.r.string() for _ in range(dec.r.uvarint())
        )
        return ObjectCollection(value, domain)
    if tag == 6:
        return Union([read_schema(dec) for _ in range(dec.r.uvarint())])
    raise StateCodecError(f"unknown schema tag {tag}")


# -- counted bags -------------------------------------------------------------
#
# First-occurrence order is SEMANTIC (it fixes primitive branch order
# and cluster discovery order downstream), so entries are written in
# iteration order, never sorted.


def write_bag(enc: Encoder, bag: TypeBag) -> None:
    enc.w.boolean(isinstance(bag, ListBag))
    enc.w.uvarint(bag.distinct_count)
    for tau, count in bag.items():
        enc.type_ref(tau)
        enc.w.uvarint(count)


def read_bag(dec: Decoder) -> TypeBag:
    bag: TypeBag = ListBag() if dec.r.boolean() else CountedBag()
    for _ in range(dec.r.uvarint()):
        tau = dec.type_ref()
        bag.add(tau, dec.r.uvarint())
    return bag


# -- collection evidence ------------------------------------------------------


def _write_similarity(enc: Encoder, acc: SimilarityAccumulator) -> None:
    _write_opt_uvarint(enc, acc.max_depth)
    enc.w.boolean(acc.all_similar)
    enc.w.uvarint(acc.count)
    enc.w.boolean(acc.maximal is not None)
    if acc.maximal is not None:
        enc.type_ref(acc.maximal)


def _read_similarity(dec: Decoder) -> SimilarityAccumulator:
    acc = SimilarityAccumulator(_read_opt_uvarint(dec))
    acc.all_similar = dec.r.boolean()
    acc.count = dec.r.uvarint()
    if dec.r.boolean():
        acc.maximal = dec.type_ref()
    return acc


def write_evidence(enc: Encoder, evidence: CollectionEvidence) -> None:
    _write_kind(enc, evidence.kind)
    enc.w.uvarint(evidence.record_count)
    enc.w.uvarint(len(evidence.key_counts))
    for key in sorted(evidence.key_counts):
        enc.w.string(key)
        enc.w.uvarint(evidence.key_counts[key])
    enc.w.uvarint(len(evidence.length_counts))
    for length in sorted(evidence.length_counts):
        enc.w.uvarint(length)
        enc.w.uvarint(evidence.length_counts[length])
    enc.w.boolean(evidence.mixed_kinds)
    _write_similarity(enc, evidence.similarity)


def read_evidence(dec: Decoder) -> CollectionEvidence:
    evidence = CollectionEvidence(_read_kind(dec))
    evidence.record_count = dec.r.uvarint()
    for _ in range(dec.r.uvarint()):
        key = dec.r.string()
        evidence.key_counts[key] = dec.r.uvarint()
    for _ in range(dec.r.uvarint()):
        length = dec.r.uvarint()
        evidence.length_counts[length] = dec.r.uvarint()
    evidence.mixed_kinds = dec.r.boolean()
    evidence.similarity = _read_similarity(dec)
    return evidence


def _write_opt(enc: Encoder, value, write_fn: Callable) -> None:
    enc.w.boolean(value is not None)
    if value is not None:
        write_fn(enc, value)


def _read_opt(dec: Decoder, read_fn: Callable):
    return read_fn(dec) if dec.r.boolean() else None


# -- stat trees ---------------------------------------------------------------


def _step_sort_key(step):
    # str steps before int steps; comparable within each group.
    return (1, step, "") if isinstance(step, int) else (0, 0, step)


def write_stat_tree(enc: Encoder, tree: StatTree) -> None:
    _write_opt_uvarint(enc, tree.similarity_depth)
    kinds = sorted(tree.primitive_kinds, key=_KIND_TAG.__getitem__)
    enc.w.uvarint(len(kinds))
    for kind in kinds:
        _write_kind(enc, kind)
        enc.w.uvarint(tree.primitive_kinds[kind])
    _write_opt(enc, tree.object_evidence, write_evidence)
    _write_opt(enc, tree.array_evidence, write_evidence)
    steps = sorted(tree.children, key=_step_sort_key)
    enc.w.uvarint(len(steps))
    for step in steps:
        if isinstance(step, str):
            enc.w.uvarint(0)
            enc.w.string(step)
        else:
            enc.w.uvarint(1)
            enc.w.uvarint(step)
        write_stat_tree(enc, tree.children[step])


def read_stat_tree(dec: Decoder) -> StatTree:
    tree = StatTree(similarity_depth=_read_opt_uvarint(dec))
    for _ in range(dec.r.uvarint()):
        kind = _read_kind(dec)
        tree.primitive_kinds[kind] = dec.r.uvarint()
    tree.object_evidence = _read_opt(dec, read_evidence)
    tree.array_evidence = _read_opt(dec, read_evidence)
    for _ in range(dec.r.uvarint()):
        tag = dec.r.uvarint()
        if tag == 0:
            step = dec.r.string()
        elif tag == 1:
            step = dec.r.uvarint()
        else:
            raise StateCodecError(f"unknown stat-tree step tag {tag}")
        tree.children[step] = read_stat_tree(dec)
    return tree


# -- tuple shapes (pass ②'s accumulator) --------------------------------------


def write_tuple_shapes(enc: Encoder, shapes) -> None:
    def write_object_entry(e: Encoder, entry) -> None:
        path, feature_sets = entry
        write_path(e, path)
        e.sorted_blobs(feature_sets, _write_key_set)

    def write_array_entry(e: Encoder, entry) -> None:
        path, lengths = entry
        write_path(e, path)
        e.w.uvarint(len(lengths))
        for length in sorted(lengths):
            e.w.uvarint(length)

    enc.sorted_blobs(shapes.object_features.items(), write_object_entry)
    enc.sorted_blobs(shapes.array_lengths.items(), write_array_entry)


def read_tuple_shapes(dec: Decoder):
    from repro.discovery.pipeline import TupleShapes

    shapes = TupleShapes()
    for _ in range(dec.r.uvarint()):
        path = read_path(dec)
        shapes.object_features[path] = {
            _read_key_set(dec) for _ in range(dec.r.uvarint())
        }
    for _ in range(dec.r.uvarint()):
        path = read_path(dec)
        shapes.array_lengths[path] = {
            dec.r.uvarint() for _ in range(dec.r.uvarint())
        }
    return shapes


# -- fold nodes (pass ③'s accumulator) ----------------------------------------


def write_fold_node(enc: Encoder, node: FoldNode) -> None:
    kinds = sorted(node.primitive_kinds, key=_KIND_TAG.__getitem__)
    enc.w.uvarint(len(kinds))
    for kind in kinds:
        _write_kind(enc, kind)
    enc.w.uvarint(len(node.object_entities))
    for entity in sorted(node.object_entities):
        acc = node.object_entities[entity]
        enc.w.uvarint(entity)
        enc.w.uvarint(len(acc.required))
        for key in sorted(acc.required):
            enc.w.string(key)
        enc.w.uvarint(len(acc.fields))
        for key in sorted(acc.fields):
            enc.w.string(key)
            write_fold_node(enc, acc.fields[key])
    enc.w.boolean(node.object_collection is not None)
    if node.object_collection is not None:
        coll = node.object_collection
        _write_opt(enc, coll.value, write_fold_node)
        enc.w.uvarint(len(coll.domain))
        for key in sorted(coll.domain):
            enc.w.string(key)
    enc.w.uvarint(len(node.array_entities))
    for entity in sorted(node.array_entities):
        acc = node.array_entities[entity]
        enc.w.uvarint(entity)
        enc.w.uvarint(acc.min_length)
        enc.w.uvarint(len(acc.positions))
        for child in acc.positions:
            write_fold_node(enc, child)
    enc.w.boolean(node.array_collection is not None)
    if node.array_collection is not None:
        coll = node.array_collection
        _write_opt(enc, coll.element, write_fold_node)
        enc.w.uvarint(coll.max_length)


def read_fold_node(dec: Decoder) -> FoldNode:
    node = FoldNode()
    for _ in range(dec.r.uvarint()):
        node.primitive_kinds.add(_read_kind(dec))
    for _ in range(dec.r.uvarint()):
        entity = dec.r.uvarint()
        required = {dec.r.string() for _ in range(dec.r.uvarint())}
        acc = ObjectEntityAcc(required=required)
        for _ in range(dec.r.uvarint()):
            key = dec.r.string()
            acc.fields[key] = read_fold_node(dec)
        node.object_entities[entity] = acc
    if dec.r.boolean():
        coll = ObjectCollAcc(value=_read_opt(dec, read_fold_node))
        coll.domain = {dec.r.string() for _ in range(dec.r.uvarint())}
        node.object_collection = coll
    for _ in range(dec.r.uvarint()):
        entity = dec.r.uvarint()
        acc = ArrayEntityAcc(min_length=dec.r.uvarint())
        acc.positions = [
            read_fold_node(dec) for _ in range(dec.r.uvarint())
        ]
        node.array_entities[entity] = acc
    if dec.r.boolean():
        coll = ArrayCollAcc(element=_read_opt(dec, read_fold_node))
        coll.max_length = dec.r.uvarint()
        node.array_collection = coll
    return node


# -- collection decisions -----------------------------------------------------


def write_decisions(enc: Encoder, decisions: CollectionDecisions) -> None:
    def write_entry(e: Encoder, entry) -> None:
        (path, kind), designation = entry
        write_path(e, path)
        _write_kind(e, kind)
        e.w.uvarint(_DESIGNATION_TAG[designation])

    enc.sorted_blobs(decisions.items(), write_entry)


def read_decisions(dec: Decoder) -> CollectionDecisions:
    decisions: CollectionDecisions = {}
    for _ in range(dec.r.uvarint()):
        path = read_path(dec)
        kind = _read_kind(dec)
        tag = dec.r.uvarint()
        if tag >= len(_DESIGNATION_ORDER):
            raise StateCodecError(f"unknown designation tag {tag}")
        decisions[(path, kind)] = _DESIGNATION_ORDER[tag]
    return decisions


# -- entity clusters / universes / partitioners -------------------------------


def write_universe(enc: Encoder, universe: KeySetUniverse) -> None:
    # Keys are already repr-sorted canonically by construction.
    enc.w.uvarint(len(universe.keys))
    for key in universe.keys:
        _write_feature(enc, key)


def read_universe(dec: Decoder) -> KeySetUniverse:
    return KeySetUniverse(
        _read_feature(dec) for _ in range(dec.r.uvarint())
    )


def write_cluster(enc: Encoder, cluster: EntityCluster) -> None:
    _write_key_set(enc, cluster.maximal)
    # Member order is semantic: the partitioner's member index keeps
    # the first cluster claiming each member.
    enc.w.uvarint(len(cluster.members))
    for member in cluster.members:
        _write_key_set(enc, member)
    enc.w.boolean(cluster.synthesized)
    enc.w.boolean(cluster.member_counts is not None)
    if cluster.member_counts is not None:
        enc.w.uvarint(len(cluster.member_counts))
        for count in cluster.member_counts:
            enc.w.uvarint(count)


def read_cluster(dec: Decoder) -> EntityCluster:
    maximal = _read_key_set(dec)
    members = [_read_key_set(dec) for _ in range(dec.r.uvarint())]
    synthesized = dec.r.boolean()
    member_counts = None
    if dec.r.boolean():
        member_counts = [dec.r.uvarint() for _ in range(dec.r.uvarint())]
    return EntityCluster(
        maximal=maximal,
        members=members,
        synthesized=synthesized,
        member_counts=member_counts,
    )


def write_partitioner(enc: Encoder, partitioner) -> None:
    clusters = partitioner.clusters
    enc.w.uvarint(len(clusters))
    for cluster in clusters:
        write_cluster(enc, cluster)


def read_partitioner(dec: Decoder):
    from repro.entities.partitioner import EntityPartitioner

    clusters = [read_cluster(dec) for _ in range(dec.r.uvarint())]
    return EntityPartitioner(clusters)


# -- configuration ------------------------------------------------------------


def write_config(enc: Encoder, config: JxplainConfig) -> None:
    enc.w.float64(config.entropy_threshold)
    _write_opt_uvarint(enc, config.similarity_depth)
    enc.w.boolean(config.detect_array_tuples)
    enc.w.boolean(config.detect_object_collections)
    enc.w.string(config.entity_strategy.value)
    enc.w.string(config.feature_mode.value)
    _write_opt_uvarint(enc, config.kmeans_k)
    enc.w.svarint(config.kmeans_seed)
    enc.w.boolean(config.kmeans_weighted)
    enc.w.uvarint(config.max_depth)


def read_config(dec: Decoder) -> JxplainConfig:
    return JxplainConfig(
        entropy_threshold=dec.r.float64(),
        similarity_depth=_read_opt_uvarint(dec),
        detect_array_tuples=dec.r.boolean(),
        detect_object_collections=dec.r.boolean(),
        entity_strategy=EntityStrategy(dec.r.string()),
        feature_mode=FeatureMode(dec.r.string()),
        kmeans_k=_read_opt_uvarint(dec),
        kmeans_seed=dec.r.svarint(),
        kmeans_weighted=dec.r.boolean(),
        max_depth=dec.r.uvarint(),
    )


# -- enrichment sketches (PR 8) -----------------------------------------------
#
# Sketch tags follow SKETCH_CLASSES order: 0 minmax, 1 bloom, 2 hll,
# 3 format.  All containers here hold plain data (no JsonType refs),
# so sorting before encoding is fully canonical.

_SKETCH_TAG = {cls.name: tag for tag, cls in enumerate(SKETCH_CLASSES)}


def _write_number(enc: Encoder, value) -> None:
    """A min/max bound: float64 when float, svarint when int.

    The float flag round-trips exactly, preserving the sketch's
    canonical int-vs-float distinction (``1`` vs ``1.0``).
    """
    is_float = isinstance(value, float)
    enc.w.boolean(is_float)
    if is_float:
        enc.w.float64(value)
    else:
        enc.w.svarint(value)


def _read_number(dec: Decoder):
    return dec.r.float64() if dec.r.boolean() else dec.r.svarint()


def write_sketch(enc: Encoder, sketch) -> None:
    tag = _SKETCH_TAG.get(sketch.name)
    if tag is None:
        raise StateCodecError(f"unknown sketch {sketch!r}")
    enc.w.uvarint(tag)
    if isinstance(sketch, MinMaxSketch):
        enc.w.uvarint(sketch.count)
        if sketch.count:
            _write_number(enc, sketch.minimum)
            _write_number(enc, sketch.maximum)
    elif isinstance(sketch, BloomMembershipSketch):
        enc.w.uvarint(sketch.size)
        enc.w.uvarint(sketch.hashes)
        enc.w.uvarint(sketch.count)
        enc.w.raw(sketch.bits.to_bytes(sketch.size // 8, "little"))
    elif isinstance(sketch, HLLCardinalitySketch):
        enc.w.uvarint(sketch.precision)
        enc.w.uvarint(sketch.count)
        enc.w.raw(bytes(sketch.registers))
    elif isinstance(sketch, StringFormatSketch):
        enc.w.uvarint(sketch.total)
        counts = sorted(
            item for item in sketch.counts.items() if item[1]
        )
        enc.w.uvarint(len(counts))
        for format_name, count in counts:
            enc.w.string(format_name)
            enc.w.uvarint(count)
    else:
        raise StateCodecError(f"unknown sketch {sketch!r}")


def read_sketch(dec: Decoder):
    tag = dec.r.uvarint()
    if tag >= len(SKETCH_CLASSES):
        raise StateCodecError(f"unknown sketch tag {tag}")
    cls = SKETCH_CLASSES[tag]
    if cls is MinMaxSketch:
        sketch = MinMaxSketch()
        sketch.count = dec.r.uvarint()
        if sketch.count:
            sketch.minimum = _read_number(dec)
            sketch.maximum = _read_number(dec)
        return sketch
    if cls is BloomMembershipSketch:
        size = dec.r.uvarint()
        hashes = dec.r.uvarint()
        sketch = BloomMembershipSketch(size, hashes)
        sketch.count = dec.r.uvarint()
        sketch.bits = int.from_bytes(dec.r._take(size // 8), "little")
        return sketch
    if cls is HLLCardinalitySketch:
        sketch = HLLCardinalitySketch(dec.r.uvarint())
        sketch.count = dec.r.uvarint()
        sketch.registers = bytearray(
            dec.r._take(1 << sketch.precision)
        )
        return sketch
    sketch = StringFormatSketch()
    sketch.total = dec.r.uvarint()
    for _ in range(dec.r.uvarint()):
        format_name = dec.r.string()
        sketch.counts[format_name] = dec.r.uvarint()
    return sketch


def _write_path_sketches(enc: Encoder, bundle: PathSketches) -> None:
    for sketch in bundle.sketches():
        write_sketch(enc, sketch)


def _read_path_sketches(dec: Decoder) -> PathSketches:
    numbers = read_sketch(dec)
    strings = read_sketch(dec)
    members = read_sketch(dec)
    cardinality = read_sketch(dec)
    if not (
        isinstance(numbers, MinMaxSketch)
        and isinstance(strings, StringFormatSketch)
        and isinstance(members, BloomMembershipSketch)
        and isinstance(cardinality, HLLCardinalitySketch)
    ):
        raise StateCodecError("malformed path-sketches bundle")
    return PathSketches.from_sketches(numbers, strings, members, cardinality)


# Discriminant scalar tags: 0 null, 1 false, 2 true, 3 int, 4 str.


def _write_scalar(enc: Encoder, value) -> None:
    if value is None:
        enc.w.uvarint(0)
    elif value is False:
        enc.w.uvarint(1)
    elif value is True:
        enc.w.uvarint(2)
    elif isinstance(value, int):
        enc.w.uvarint(3)
        enc.w.svarint(value)
    elif isinstance(value, str):
        enc.w.uvarint(4)
        enc.w.string(value)
    else:
        raise StateCodecError(f"not a discriminant scalar: {value!r}")


def _read_scalar(dec: Decoder):
    tag = dec.r.uvarint()
    if tag == 0:
        return None
    if tag == 1:
        return False
    if tag == 2:
        return True
    if tag == 3:
        return dec.r.svarint()
    if tag == 4:
        return dec.r.string()
    raise StateCodecError(f"unknown scalar tag {tag}")


def _write_key_evidence(enc: Encoder, evidence: KeyEvidence) -> None:
    enc.w.uvarint(evidence.present)
    enc.w.boolean(evidence.saturated)
    enc.w.uvarint(len(evidence.values))
    for tagged in sorted(evidence.values):
        _write_scalar(enc, scalar_from_key(tagged))
        shapes = evidence.values[tagged]
        enc.w.uvarint(len(shapes))
        for shape in sorted(shapes):
            enc.w.uvarint(len(shape))
            for key in shape:
                enc.w.string(key)
            enc.w.uvarint(shapes[shape])


def _read_key_evidence(dec: Decoder) -> KeyEvidence:
    evidence = KeyEvidence()
    evidence.present = dec.r.uvarint()
    evidence.saturated = dec.r.boolean()
    for _ in range(dec.r.uvarint()):
        tagged = scalar_key(_read_scalar(dec))
        shapes = evidence.values[tagged] = {}
        for _ in range(dec.r.uvarint()):
            shape = tuple(
                dec.r.string() for _ in range(dec.r.uvarint())
            )
            shapes[shape] = dec.r.uvarint()
    return evidence


def _write_options(enc: Encoder, options: EnrichmentOptions) -> None:
    enc.w.boolean(options.sketches)
    enc.w.boolean(options.unions)
    enc.w.uvarint(options.bloom_bits)
    enc.w.uvarint(options.bloom_hashes)
    enc.w.uvarint(options.hll_precision)
    enc.w.uvarint(options.union_value_cap)
    enc.w.uvarint(options.union_string_cap)


def _read_options(dec: Decoder) -> EnrichmentOptions:
    return EnrichmentOptions(
        sketches=dec.r.boolean(),
        unions=dec.r.boolean(),
        bloom_bits=dec.r.uvarint(),
        bloom_hashes=dec.r.uvarint(),
        hll_precision=dec.r.uvarint(),
        union_value_cap=dec.r.uvarint(),
        union_string_cap=dec.r.uvarint(),
    )


def write_enrichment(enc: Encoder, state: EnrichmentState) -> None:
    _write_options(enc, state.options)
    enc.w.uvarint(state.record_count)

    def write_path_entry(e: Encoder, entry) -> None:
        path, bundle = entry
        write_path(e, path)
        _write_path_sketches(e, bundle)

    enc.sorted_blobs(state.paths.items(), write_path_entry)
    enc.w.uvarint(state.discriminants.records)
    enc.w.uvarint(len(state.discriminants.keys))
    for name in sorted(state.discriminants.keys):
        enc.w.string(name)
        _write_key_evidence(enc, state.discriminants.keys[name])


def read_enrichment(dec: Decoder) -> EnrichmentState:
    state = EnrichmentState(_read_options(dec))
    state.record_count = dec.r.uvarint()
    for _ in range(dec.r.uvarint()):
        path = read_path(dec)
        state.paths[path] = _read_path_sketches(dec)
    state.discriminants.records = dec.r.uvarint()
    for _ in range(dec.r.uvarint()):
        name = dec.r.string()
        state.discriminants.keys[name] = _read_key_evidence(dec)
    return state


def write_tagged_unions(enc: Encoder, decisions) -> None:
    enc.w.uvarint(len(decisions))
    for decision in decisions:
        write_path(enc, decision.path)
        enc.w.string(decision.key)
        enc.w.float64(decision.entropy)
        enc.w.float64(decision.coverage)
        enc.w.float64(decision.predictiveness)
        enc.w.uvarint(len(decision.branches))
        for branch in decision.branches:
            _write_scalar(enc, branch.value)
            enc.w.uvarint(branch.count)
            write_schema(enc, branch.schema)


def read_tagged_unions(dec: Decoder):
    from repro.discovery.tagged_unions import (
        TaggedUnionBranch,
        TaggedUnionDecision,
    )

    decisions = []
    for _ in range(dec.r.uvarint()):
        path = read_path(dec)
        key = dec.r.string()
        entropy = dec.r.float64()
        coverage = dec.r.float64()
        predictiveness = dec.r.float64()
        branches = [
            TaggedUnionBranch(
                value=_read_scalar(dec),
                count=dec.r.uvarint(),
                schema=read_schema(dec),
            )
            for _ in range(dec.r.uvarint())
        ]
        decisions.append(
            TaggedUnionDecision(
                path=path,
                key=key,
                entropy=entropy,
                coverage=coverage,
                predictiveness=predictiveness,
                branches=branches,
            )
        )
    return decisions


# -- standalone payloads ------------------------------------------------------
#
# Module-level function pairs, so executor tasks can carry them by
# reference through pickle (`partial(..., dumps=dumps_stat_tree)`).


def dumps_schema(schema: Schema) -> bytes:
    return _dumps("schema", write_schema, schema)


def loads_schema(data: bytes) -> Schema:
    return _loads("schema", read_schema, data)


def dumps_bag(bag: TypeBag) -> bytes:
    return _dumps("bag", write_bag, bag)


def loads_bag(data: bytes) -> TypeBag:
    return _loads("bag", read_bag, data)


def dumps_stat_tree(tree: StatTree) -> bytes:
    return _dumps("stat-tree", write_stat_tree, tree)


def loads_stat_tree(data: bytes) -> StatTree:
    return _loads("stat-tree", read_stat_tree, data)


def dumps_tuple_shapes(shapes) -> bytes:
    return _dumps("tuple-shapes", write_tuple_shapes, shapes)


def loads_tuple_shapes(data: bytes):
    return _loads("tuple-shapes", read_tuple_shapes, data)


def dumps_fold_node(node: FoldNode) -> bytes:
    return _dumps("fold-node", write_fold_node, node)


def loads_fold_node(data: bytes) -> FoldNode:
    return _loads("fold-node", read_fold_node, data)


def dumps_decisions(decisions: CollectionDecisions) -> bytes:
    return _dumps("decisions", write_decisions, decisions)


def loads_decisions(data: bytes) -> CollectionDecisions:
    return _loads("decisions", read_decisions, data)


def dumps_universe(universe: KeySetUniverse) -> bytes:
    return _dumps("universe", write_universe, universe)


def loads_universe(data: bytes) -> KeySetUniverse:
    return _loads("universe", read_universe, data)


def dumps_partitioner(partitioner) -> bytes:
    return _dumps("partitioner", write_partitioner, partitioner)


def loads_partitioner(data: bytes):
    return _loads("partitioner", read_partitioner, data)


def dumps_config(config: JxplainConfig) -> bytes:
    return _dumps("config", write_config, config)


def loads_config(data: bytes) -> JxplainConfig:
    return _loads("config", read_config, data)


def dumps_sketch(sketch) -> bytes:
    return _dumps("sketch", write_sketch, sketch)


def loads_sketch(data: bytes):
    return _loads("sketch", read_sketch, data)


def dumps_enrichment(state: EnrichmentState) -> bytes:
    return _dumps("enrichment", write_enrichment, state)


def loads_enrichment(data: bytes) -> EnrichmentState:
    return _loads("enrichment", read_enrichment, data)


def dumps_tagged_unions(decisions) -> bytes:
    return _dumps("tagged-unions", write_tagged_unions, decisions)


def loads_tagged_unions(data: bytes):
    return _loads("tagged-unions", read_tagged_unions, data)
