"""Per-path statistics for JXPLAIN's pass ① (Section 4.2, Figure 3).

The simplified Algorithm 4 gathers collection-detection evidence at
every path *during* the recursive merge, which requires the whole bag
of types at each path and defeats distribution.  The staged pipeline
instead accumulates a :class:`StatTree` — one
:class:`~repro.heuristics.collection.CollectionEvidence` per path plus
per-child sub-trees — in a **single pass**.  Stat trees form a
commutative monoid under :meth:`StatTree.merge`, so a partitioned
dataset can build one per partition and fan them in.

Collection decisions are then derived **top-down** by
:func:`decide_collections`: when a path is ruled a collection, the
statistics of all of its children are merged into a single ``*`` child
(evidence merges associatively, which is why this is sound) before
recursing.  The result maps ``(path, kind)`` to a
:class:`~repro.heuristics.collection.Designation`.

The same walk powers the Figure 4 experiment: :func:`entropy_profile`
reports the key-space entropy of every complex-kinded path whose
nested elements pass the similarity constraint.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.discovery.config import JxplainConfig
from repro.heuristics.collection import (
    CollectionEvidence,
    Designation,
    decide_designation,
)
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import Path, ROOT, STAR
from repro.jsontypes.types import ArrayType, JsonType, ObjectType, PrimitiveType

#: A collection decision key: the (generalized) path plus which of the
#: path's complex kinds the decision is about.
DecisionKey = Tuple[Path, Kind]

#: The decisions produced by pass ①.
CollectionDecisions = Dict[DecisionKey, Designation]


@dataclass
class StatTree:
    """Mergeable per-path statistics over a bag of record types.

    ``similarity_depth`` bounds the §5.2 similarity checks accumulated
    in the evidence (None = the paper's literal rule); it must match
    across merged trees.
    """

    primitive_kinds: Counter = field(default_factory=Counter)
    object_evidence: Optional[CollectionEvidence] = None
    array_evidence: Optional[CollectionEvidence] = None
    children: Dict[object, "StatTree"] = field(default_factory=dict)
    similarity_depth: Optional[int] = None

    def add(self, tau: JsonType, count: int = 1) -> None:
        """Fold one type (and its whole subtree) into the statistics.

        ``count`` folds ``count`` identical instances at once — the
        weighted form used by the counted-bag fast path; equivalent to
        ``count`` sequential ``add`` calls.
        """
        if isinstance(tau, PrimitiveType):
            self.primitive_kinds[tau.kind] += count
            return
        if isinstance(tau, ObjectType):
            if self.object_evidence is None:
                self.object_evidence = CollectionEvidence.with_depth(
                    Kind.OBJECT, self.similarity_depth
                )
            self.object_evidence.add(tau, count)
            for key, value in tau.items():
                child = self.children.get(key)
                if child is None:
                    child = self.children[key] = StatTree(
                        similarity_depth=self.similarity_depth
                    )
                child.add(value, count)
            return
        if isinstance(tau, ArrayType):
            if self.array_evidence is None:
                self.array_evidence = CollectionEvidence.with_depth(
                    Kind.ARRAY, self.similarity_depth
                )
            self.array_evidence.add(tau, count)
            for index, value in enumerate(tau.elements):
                child = self.children.get(index)
                if child is None:
                    child = self.children[index] = StatTree(
                        similarity_depth=self.similarity_depth
                    )
                child.add(value, count)
            return
        raise TypeError(f"not a JSON type: {tau!r}")

    def merge(self, other: "StatTree") -> "StatTree":
        """Combine two stat trees (associative, commutative)."""
        merged = StatTree(similarity_depth=self.similarity_depth)
        merged.primitive_kinds = self.primitive_kinds + other.primitive_kinds
        merged.object_evidence = _merge_evidence(
            self.object_evidence, other.object_evidence
        )
        merged.array_evidence = _merge_evidence(
            self.array_evidence, other.array_evidence
        )
        steps = set(self.children) | set(other.children)
        for step in steps:
            mine = self.children.get(step)
            theirs = other.children.get(step)
            if mine is None:
                merged.children[step] = theirs
            elif theirs is None:
                merged.children[step] = mine
            else:
                merged.children[step] = mine.merge(theirs)
        return merged

    @classmethod
    def from_types(
        cls,
        types: Iterable[JsonType],
        similarity_depth: Optional[int] = None,
        counts: Optional[Iterable[int]] = None,
    ) -> "StatTree":
        """Build a tree from types, optionally weighted by ``counts``
        (aligned multiplicities, as produced by a counted bag)."""
        tree = cls(similarity_depth=similarity_depth)
        if counts is None:
            for tau in types:
                tree.add(tau)
        else:
            for tau, count in zip(types, counts):
                tree.add(tau, count)
        return tree

    def _object_children(self) -> Dict[str, "StatTree"]:
        return {
            step: child
            for step, child in self.children.items()
            if isinstance(step, str)
        }

    def _array_children(self) -> Dict[int, "StatTree"]:
        return {
            step: child
            for step, child in self.children.items()
            if isinstance(step, int)
        }


def _merge_evidence(
    first: Optional[CollectionEvidence],
    second: Optional[CollectionEvidence],
) -> Optional[CollectionEvidence]:
    if first is None:
        return second
    if second is None:
        return first
    return first.merge(second)


def _merge_all(trees: List[StatTree]) -> Optional[StatTree]:
    merged: Optional[StatTree] = None
    for tree in trees:
        merged = tree if merged is None else merged.merge(tree)
    return merged


def decide_collections(
    tree: StatTree, config: Optional[JxplainConfig] = None
) -> CollectionDecisions:
    """Pass ①'s output: a Collection/Tuple designation per path.

    Decisions respect the configuration's detection toggles, so a
    pipeline configured like K-reduce designates every object a tuple
    and every array a collection.
    """
    config = config or JxplainConfig()
    decisions: CollectionDecisions = {}
    _decide_at(tree, ROOT, config, decisions)
    return decisions


def _designate(
    evidence: CollectionEvidence, kind: Kind, config: JxplainConfig
) -> Designation:
    if kind == Kind.OBJECT and not config.detect_object_collections:
        return Designation.TUPLE
    if kind == Kind.ARRAY and not config.detect_array_tuples:
        return Designation.COLLECTION
    return decide_designation(evidence, config.entropy_threshold)


def _decide_at(
    node: StatTree,
    path: Path,
    config: JxplainConfig,
    decisions: CollectionDecisions,
) -> None:
    star_children: List[StatTree] = []
    if node.object_evidence is not None:
        designation = _designate(node.object_evidence, Kind.OBJECT, config)
        decisions[(path, Kind.OBJECT)] = designation
        object_children = node._object_children()
        if designation is Designation.COLLECTION:
            star_children.extend(object_children.values())
        else:
            for key, child in object_children.items():
                _decide_at(child, path + (key,), config, decisions)
    if node.array_evidence is not None:
        designation = _designate(node.array_evidence, Kind.ARRAY, config)
        decisions[(path, Kind.ARRAY)] = designation
        array_children = node._array_children()
        if designation is Designation.COLLECTION:
            star_children.extend(array_children.values())
        else:
            for index, child in array_children.items():
                _decide_at(child, path + (index,), config, decisions)
    if star_children:
        merged = _merge_all(star_children)
        _decide_at(merged, path + (STAR,), config, decisions)


def collection_paths(decisions: CollectionDecisions) -> frozenset:
    """The set of paths designated Collection for either kind."""
    return frozenset(
        path
        for (path, _kind), designation in decisions.items()
        if designation is Designation.COLLECTION
    )


@dataclass
class PathEntropy:
    """One point of Figure 4: a complex path and its key-space entropy."""

    path: Path
    kind: Kind
    entropy: float
    instances: int
    distinct_keys: int
    elements_similar: bool


def entropy_profile(
    tree: StatTree, *, similar_only: bool = True
) -> List[PathEntropy]:
    """Key-space entropies of every complex path (Figure 4).

    ``similar_only`` keeps only paths whose nested elements pass the
    similarity constraint, matching the figure's caption ("each point
    is one complex-kinded path with self-similar nested elements").
    """
    points: List[PathEntropy] = []

    def walk(node: StatTree, path: Path) -> None:
        for kind, evidence in (
            (Kind.OBJECT, node.object_evidence),
            (Kind.ARRAY, node.array_evidence),
        ):
            if evidence is None:
                continue
            if similar_only and not evidence.elements_similar:
                continue
            points.append(
                PathEntropy(
                    path=path,
                    kind=kind,
                    entropy=evidence.entropy,
                    instances=evidence.record_count,
                    distinct_keys=evidence.distinct_keys,
                    elements_similar=evidence.elements_similar,
                )
            )
        for step, child in node.children.items():
            walk(child, path + (step,))

    walk(tree, ROOT)
    return points
