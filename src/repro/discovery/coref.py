"""Co-reference detection (the future work of §8 / related work [30]).

Web APIs repeat entities at multiple paths — a tweet's ``user`` object
also appears under ``retweeted_status.user`` and every mention.  The
paper lists detecting these *co-references* as an open extension; this
module implements it over discovered schemas:

* :func:`find_coreferences` walks a schema, fingerprints every
  tuple-like object node, and groups paths whose schemas are exactly
  equal or nearly equal (key-set Jaccard above a threshold with no
  conflicting field kinds);
* :func:`unify_coreferences` rewrites the schema so every member of a
  group shares one *unified* node (fields unioned, required keys
  intersected) — shrinking the description and making the repeated
  entity explicit.

Detection is purely structural, matching the paper's setting (no node
labels, no values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.jsontypes.paths import Path, ROOT, STAR, render_path
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    ObjectCollection,
    ObjectTuple,
    Schema,
    Union,
    union,
)

#: Minimum key-set Jaccard index for near-equal grouping.
DEFAULT_JACCARD = 0.8

#: Minimum number of fields before a node is worth reporting: tiny
#: objects collide by chance.
MIN_FIELDS = 3


@dataclass
class CoReference:
    """One repeated entity: its occurrence paths and unified schema."""

    paths: List[Path]
    unified: ObjectTuple
    exact: bool
    members: List[ObjectTuple] = field(default_factory=list)

    @property
    def occurrences(self) -> int:
        return len(self.paths)

    def describe(self) -> str:
        kind = "exact" if self.exact else "near"
        keys = ", ".join(sorted(self.unified.all_keys)[:6])
        rendered = ", ".join(render_path(p) for p in self.paths)
        return (
            f"{kind} co-reference x{self.occurrences} "
            f"({{{keys}{', ...' if len(self.unified.all_keys) > 6 else ''}}})"
            f" at {rendered}"
        )


def _object_tuple_sites(
    schema: Schema, path: Path = ROOT
) -> List[Tuple[Path, ObjectTuple]]:
    """Every ObjectTuple node in the schema with its path."""
    sites: List[Tuple[Path, ObjectTuple]] = []
    if isinstance(schema, Union):
        for branch in schema.branches:
            sites.extend(_object_tuple_sites(branch, path))
        return sites
    if isinstance(schema, ObjectTuple):
        sites.append((path, schema))
        for key, child in schema.required + schema.optional:
            sites.extend(_object_tuple_sites(child, path + (key,)))
        return sites
    if isinstance(schema, ArrayTuple):
        for index, child in enumerate(schema.elements):
            sites.extend(_object_tuple_sites(child, path + (index,)))
        return sites
    if isinstance(schema, ArrayCollection):
        return _object_tuple_sites(schema.element, path + (STAR,))
    if isinstance(schema, ObjectCollection):
        return _object_tuple_sites(schema.value, path + (STAR,))
    return sites


def _jaccard(first: frozenset, second: frozenset) -> float:
    if not first and not second:
        return 1.0
    return len(first & second) / len(first | second)


def _kinds_compatible(first: ObjectTuple, second: ObjectTuple) -> bool:
    """Shared fields must agree on their admitted node structure."""
    for key in first.all_keys & second.all_keys:
        if first.field_schema(key) != second.field_schema(key):
            return False
    return True


def _unify(members: List[ObjectTuple]) -> ObjectTuple:
    """Union of fields; required = keys required by every member."""
    required_keys = set(members[0].required_keys)
    fields: Dict[str, Schema] = {}
    for member in members:
        required_keys &= member.required_keys
        for key, child in member.required + member.optional:
            existing = fields.get(key)
            fields[key] = child if existing is None else union(existing, child)
    return ObjectTuple(
        {k: v for k, v in fields.items() if k in required_keys},
        {k: v for k, v in fields.items() if k not in required_keys},
    )


def find_coreferences(
    schema: Schema,
    *,
    jaccard_threshold: float = DEFAULT_JACCARD,
    min_fields: int = MIN_FIELDS,
) -> List[CoReference]:
    """Find entities repeated at multiple paths of a schema.

    Exact groups first (identical ObjectTuple nodes at ≥ 2 distinct
    paths), then near groups (key-set Jaccard ≥ threshold and no
    conflicting shared fields).  Groups are disjoint; larger and
    exact-first.
    """
    sites = [
        (path, node)
        for path, node in _object_tuple_sites(schema)
        if len(node.all_keys) >= min_fields
    ]
    grouped: List[CoReference] = []
    used = [False] * len(sites)

    # Exact groups.
    by_node: Dict[ObjectTuple, List[int]] = {}
    for index, (_, node) in enumerate(sites):
        by_node.setdefault(node, []).append(index)
    for node, indices in by_node.items():
        distinct_paths = {sites[i][0] for i in indices}
        if len(distinct_paths) >= 2:
            for i in indices:
                used[i] = True
            grouped.append(
                CoReference(
                    paths=sorted(distinct_paths, key=repr),
                    unified=node,
                    exact=True,
                    members=[node],
                )
            )

    # Near groups over the remainder (greedy seeded by field count).
    order = sorted(
        (i for i in range(len(sites)) if not used[i]),
        key=lambda i: -len(sites[i][1].all_keys),
    )
    for seed_index in order:
        if used[seed_index]:
            continue
        _, seed = sites[seed_index]
        members = [seed_index]
        for other_index in order:
            if other_index == seed_index or used[other_index]:
                continue
            other_path, other = sites[other_index]
            if sites[seed_index][0] == other_path:
                continue
            score = _jaccard(seed.all_keys, other.all_keys)
            if score >= jaccard_threshold and _kinds_compatible(
                seed, other
            ):
                members.append(other_index)
        if len(members) >= 2:
            for i in members:
                used[i] = True
            member_nodes = [sites[i][1] for i in members]
            grouped.append(
                CoReference(
                    paths=sorted({sites[i][0] for i in members}, key=repr),
                    unified=_unify(member_nodes),
                    exact=False,
                    members=member_nodes,
                )
            )

    grouped.sort(key=lambda group: (-group.occurrences, not group.exact))
    return grouped


def unify_coreferences(
    schema: Schema,
    *,
    jaccard_threshold: float = DEFAULT_JACCARD,
    min_fields: int = MIN_FIELDS,
) -> Tuple[Schema, List[CoReference]]:
    """Rewrite the schema so each co-reference group shares one node.

    The unified node admits everything any occurrence admitted (fields
    unioned, required intersected), so the rewrite can only widen the
    schema — recall is preserved, precision may drop slightly, and the
    description shrinks.
    """
    groups = find_coreferences(
        schema,
        jaccard_threshold=jaccard_threshold,
        min_fields=min_fields,
    )
    replacement: Dict[ObjectTuple, ObjectTuple] = {}
    for group in groups:
        if group.exact:
            continue  # already a single node; nothing to rewrite
        for member in group.members:
            replacement[member] = group.unified
    return _rewrite(schema, replacement), groups


def _rewrite(
    schema: Schema, replacement: Dict[ObjectTuple, ObjectTuple]
) -> Schema:
    if isinstance(schema, Union):
        return union(*(_rewrite(b, replacement) for b in schema.branches))
    if isinstance(schema, ObjectTuple):
        target = replacement.get(schema, schema)
        return ObjectTuple(
            {k: _rewrite(v, replacement) for k, v in target.required},
            {k: _rewrite(v, replacement) for k, v in target.optional},
        )
    if isinstance(schema, ArrayTuple):
        return ArrayTuple(
            tuple(_rewrite(c, replacement) for c in schema.elements),
            schema.min_length,
        )
    if isinstance(schema, ArrayCollection):
        return ArrayCollection(
            _rewrite(schema.element, replacement), schema.max_length_seen
        )
    if isinstance(schema, ObjectCollection):
        return ObjectCollection(
            _rewrite(schema.value, replacement), schema.domain
        )
    return schema
