"""Pass ③ as an associative fold (Section 4.2).

The paper's central systems observation: what makes the simplified
Algorithm 4 non-distributable is only that its two heuristics need
global statistics.  Once pass ① has fixed the collection/tuple
designation of every path and pass ② has fixed a deterministic entity
partitioner for every tuple path, the remaining merge *is* an
associative fold — just like K-reduction — and can run as a fan-in
aggregation over a partitioned dataset.

:class:`DecidedFolder` implements that fold:

* :meth:`~DecidedFolder.lift` turns one record type into a
  :class:`FoldNode` (the fold's element type);
* :meth:`~DecidedFolder.combine` merges two fold nodes (associative
  and commutative — property-tested);
* :meth:`~DecidedFolder.schema` converts the final node to a
  :class:`~repro.schema.Schema`.

The result is identical to running the recursive merger with the same
precomputed decisions, which the test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.discovery.config import JxplainConfig
from repro.discovery.stat_tree import CollectionDecisions
from repro.entities.partitioner import EntityPartitioner
from repro.heuristics.collection import Designation
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import Path, ROOT, STAR
from repro.jsontypes.types import ArrayType, JsonType, ObjectType, PrimitiveType
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PRIMITIVE_SCHEMAS,
    Schema,
    union,
)


@dataclass
class ObjectEntityAcc:
    """Accumulated state of one object entity (ObjectTuple-to-be)."""

    required: Set[str]
    fields: Dict[str, "FoldNode"] = field(default_factory=dict)


@dataclass
class ObjectCollAcc:
    """Accumulated state of an object collection."""

    value: Optional["FoldNode"] = None
    domain: Set[str] = field(default_factory=set)


@dataclass
class ArrayEntityAcc:
    """Accumulated state of one array entity (ArrayTuple-to-be)."""

    min_length: int
    positions: List["FoldNode"] = field(default_factory=list)


@dataclass
class ArrayCollAcc:
    """Accumulated state of an array collection."""

    element: Optional["FoldNode"] = None
    max_length: int = 0


@dataclass
class FoldNode:
    """The fold's element/accumulator type for one path."""

    primitive_kinds: Set[Kind] = field(default_factory=set)
    object_entities: Dict[int, ObjectEntityAcc] = field(default_factory=dict)
    object_collection: Optional[ObjectCollAcc] = None
    array_entities: Dict[int, ArrayEntityAcc] = field(default_factory=dict)
    array_collection: Optional[ArrayCollAcc] = None


class DecidedFolder:
    """The associative pass-③ merge, given passes ① and ②'s outputs."""

    def __init__(
        self,
        decisions: CollectionDecisions,
        object_partitioners: Dict[Path, EntityPartitioner],
        array_partitioners: Dict[Path, EntityPartitioner],
        config: Optional[JxplainConfig] = None,
        extractor=None,
    ):
        self.decisions = decisions
        self.object_partitioners = object_partitioners
        self.array_partitioners = array_partitioners
        self.config = config or JxplainConfig()
        if extractor is None:
            from repro.discovery.pipeline import FeatureExtractor

            extractor = FeatureExtractor(decisions, self.config)
        self.extractor = extractor

    # -- lift -----------------------------------------------------------------

    def lift(self, tau: JsonType, path: Path = ROOT) -> FoldNode:
        """Turn one record type into a single-record fold node."""
        node = FoldNode()
        self._lift_into(node, tau, path)
        return node

    def _lift_into(self, node: FoldNode, tau: JsonType, path: Path) -> None:
        if isinstance(tau, PrimitiveType):
            node.primitive_kinds.add(tau.kind)
            return
        if isinstance(tau, ObjectType):
            if self._is_collection(path, Kind.OBJECT):
                acc = ObjectCollAcc()
                for key, value in tau.items():
                    acc.domain.add(key)
                    child = self.lift(value, path + (STAR,))
                    acc.value = (
                        child
                        if acc.value is None
                        else self.combine(acc.value, child)
                    )
                node.object_collection = acc
                return
            entity = self._assign_object(tau, path)
            acc = ObjectEntityAcc(required=set(tau.keys()))
            for key, value in tau.items():
                acc.fields[key] = self.lift(value, path + (key,))
            node.object_entities[entity] = acc
            return
        if isinstance(tau, ArrayType):
            if self._is_collection(path, Kind.ARRAY):
                acc = ArrayCollAcc(max_length=len(tau))
                for value in tau.elements:
                    child = self.lift(value, path + (STAR,))
                    acc.element = (
                        child
                        if acc.element is None
                        else self.combine(acc.element, child)
                    )
                node.array_collection = acc
                return
            entity = self._assign_array(tau, path)
            acc = ArrayEntityAcc(min_length=len(tau))
            for position, value in enumerate(tau.elements):
                acc.positions.append(self.lift(value, path + (position,)))
            node.array_entities[entity] = acc
            return
        raise TypeError(f"not a JSON type: {tau!r}")

    def _is_collection(self, path: Path, kind: Kind) -> bool:
        designation = self.decisions.get((path, kind))
        if designation is None:
            # A path unseen during pass ①: fall back to the
            # data-independent defaults (tuple objects, collection
            # arrays), which is also what a missing decision means to
            # the K-reduce-configured pipeline.
            return kind == Kind.ARRAY
        return designation is Designation.COLLECTION

    def _assign_object(self, tau: ObjectType, path: Path) -> int:
        partitioner = self.object_partitioners.get(path)
        if partitioner is None:
            return 0
        return partitioner.assign(self.extractor.features(tau, path))

    def _assign_array(self, tau: ArrayType, path: Path) -> int:
        partitioner = self.array_partitioners.get(path)
        if partitioner is None:
            return 0
        return partitioner.assign(
            frozenset(str(i) for i in range(len(tau)))
        )

    # -- combine ----------------------------------------------------------------

    def combine(self, left: FoldNode, right: FoldNode) -> FoldNode:
        """Merge two fold nodes (associative, commutative)."""
        out = FoldNode()
        out.primitive_kinds = left.primitive_kinds | right.primitive_kinds
        out.object_entities = self._combine_object_entities(
            left.object_entities, right.object_entities
        )
        out.object_collection = self._combine_object_colls(
            left.object_collection, right.object_collection
        )
        out.array_entities = self._combine_array_entities(
            left.array_entities, right.array_entities
        )
        out.array_collection = self._combine_array_colls(
            left.array_collection, right.array_collection
        )
        return out

    def _combine_object_entities(
        self,
        left: Dict[int, ObjectEntityAcc],
        right: Dict[int, ObjectEntityAcc],
    ) -> Dict[int, ObjectEntityAcc]:
        out: Dict[int, ObjectEntityAcc] = {}
        for entity in set(left) | set(right):
            first = left.get(entity)
            second = right.get(entity)
            if first is None:
                out[entity] = second
                continue
            if second is None:
                out[entity] = first
                continue
            merged = ObjectEntityAcc(
                required=first.required & second.required
            )
            for key in set(first.fields) | set(second.fields):
                mine = first.fields.get(key)
                theirs = second.fields.get(key)
                if mine is None:
                    merged.fields[key] = theirs
                elif theirs is None:
                    merged.fields[key] = mine
                else:
                    merged.fields[key] = self.combine(mine, theirs)
            out[entity] = merged
        return out

    def _combine_object_colls(
        self,
        left: Optional[ObjectCollAcc],
        right: Optional[ObjectCollAcc],
    ) -> Optional[ObjectCollAcc]:
        if left is None:
            return right
        if right is None:
            return left
        merged = ObjectCollAcc(domain=left.domain | right.domain)
        if left.value is None:
            merged.value = right.value
        elif right.value is None:
            merged.value = left.value
        else:
            merged.value = self.combine(left.value, right.value)
        return merged

    def _combine_array_entities(
        self,
        left: Dict[int, ArrayEntityAcc],
        right: Dict[int, ArrayEntityAcc],
    ) -> Dict[int, ArrayEntityAcc]:
        out: Dict[int, ArrayEntityAcc] = {}
        for entity in set(left) | set(right):
            first = left.get(entity)
            second = right.get(entity)
            if first is None:
                out[entity] = second
                continue
            if second is None:
                out[entity] = first
                continue
            merged = ArrayEntityAcc(
                min_length=min(first.min_length, second.min_length)
            )
            longer, shorter = (
                (first.positions, second.positions)
                if len(first.positions) >= len(second.positions)
                else (second.positions, first.positions)
            )
            for index, node in enumerate(longer):
                if index < len(shorter):
                    merged.positions.append(
                        self.combine(node, shorter[index])
                    )
                else:
                    merged.positions.append(node)
            out[entity] = merged
        return out

    def _combine_array_colls(
        self,
        left: Optional[ArrayCollAcc],
        right: Optional[ArrayCollAcc],
    ) -> Optional[ArrayCollAcc]:
        if left is None:
            return right
        if right is None:
            return left
        merged = ArrayCollAcc(
            max_length=max(left.max_length, right.max_length)
        )
        if left.element is None:
            merged.element = right.element
        elif right.element is None:
            merged.element = left.element
        else:
            merged.element = self.combine(left.element, right.element)
        return merged

    # -- schema extraction ---------------------------------------------------------

    def schema(self, node: Optional[FoldNode]) -> Schema:
        """Convert the final fold node into a schema."""
        if node is None:
            return NEVER
        branches: List[Schema] = [
            PRIMITIVE_SCHEMAS[kind]
            for kind in sorted(node.primitive_kinds, key=lambda k: k.value)
        ]
        for entity in sorted(node.array_entities):
            acc = node.array_entities[entity]
            elements = [self.schema(child) for child in acc.positions]
            branches.append(ArrayTuple(elements, acc.min_length))
        if node.array_collection is not None:
            acc = node.array_collection
            branches.append(
                ArrayCollection(
                    self.schema(acc.element), max_length_seen=acc.max_length
                )
            )
        for entity in sorted(node.object_entities):
            acc = node.object_entities[entity]
            required = {
                key: self.schema(child)
                for key, child in acc.fields.items()
                if key in acc.required
            }
            optional = {
                key: self.schema(child)
                for key, child in acc.fields.items()
                if key not in acc.required
            }
            branches.append(ObjectTuple(required, optional))
        if node.object_collection is not None:
            acc = node.object_collection
            branches.append(
                ObjectCollection(self.schema(acc.value), acc.domain)
            )
        return union(*branches)
