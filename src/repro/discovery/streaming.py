"""Incremental (streaming) schema discovery.

The paper's monitoring scenario is continuous: events keep arriving.
Re-running discovery from scratch per batch wastes the work already
done; this module maintains a schema incrementally, as a thin novelty
layer over the mergeable, serializable states of
:mod:`repro.discovery.state`:

* :class:`StreamingKReduce` — exact: K-reduction distributes over
  union, so a :class:`~repro.discovery.state.KReduceState` folded one
  record at a time *is* the batch K-reduce schema at every point in
  the stream.
* :class:`StreamingJxplain` — JXPLAIN's heuristics need global
  statistics, so per-record exact streaming is impossible (that is
  §4.2's whole point).  Instead every record is absorbed into a
  :class:`~repro.discovery.state.JxplainState` (bag + stat tree)
  continuously, and the schema is re-synthesized lazily — on demand,
  or whenever a configurable number of *novel* records (records the
  current schema rejects) accumulates.  At each synthesis point the
  schema equals one-shot batch discovery over everything observed so
  far (property-tested), because the state is exactly the batch
  pipeline's sufficient statistics.

Both expose ``observe`` / ``observe_many`` / ``current_schema``, carry
their state (``.state`` / ``from_state``) for checkpointing, and merge
associatively (``merge_with``) for partitioned streams.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.discovery.config import JxplainConfig
from repro.discovery.state import JxplainState, KReduceState
from repro.errors import EmptyInputError
from repro.jsontypes.types import JsonValue, type_of
from repro.schema.nodes import Schema


class StreamingKReduce:
    """Exact incremental K-reduction via the associative fold."""

    def __init__(self) -> None:
        self._state = KReduceState()

    @property
    def record_count(self) -> int:
        return self._state.record_count

    @property
    def state(self) -> KReduceState:
        """The underlying checkpointable state."""
        return self._state

    @classmethod
    def from_state(cls, state: KReduceState) -> "StreamingKReduce":
        """Resume a stream from a (loaded) state."""
        if not isinstance(state, KReduceState):
            raise TypeError(
                f"expected KReduceState, got {type(state).__name__}"
            )
        stream = cls()
        stream._state = state
        return stream

    def observe(self, record: JsonValue) -> Schema:
        """Fold one record in; returns the updated schema."""
        self._state.absorb(record)
        return self._state.schema

    def observe_many(self, records: Iterable[JsonValue]) -> Schema:
        for record in records:
            self.observe(record)
        return self._state.schema

    def current_schema(self) -> Schema:
        if self._state.record_count == 0:
            raise EmptyInputError("no records observed yet")
        return self._state.schema

    def merge_with(self, other: "StreamingKReduce") -> "StreamingKReduce":
        """Combine two independently-fed streams (associativity)."""
        return StreamingKReduce.from_state(
            self._state.merge(other._state)
        )


class StreamingJxplain:
    """Incremental JXPLAIN: absorb always, re-synthesize on novelty.

    ``resynthesize_after`` controls laziness: after that many *novel*
    records (ones the current schema rejects) the schema is rebuilt
    from the accumulated state.  ``max_retained`` bounds memory by
    capping how many *distinct* types the state retains — duplicates
    of retained types always fold in (they only bump multiplicities),
    while brand-new types past the cap are counted but not absorbed,
    so the synthesized schema degrades gracefully instead of growing
    without bound.
    """

    def __init__(
        self,
        config: Optional[JxplainConfig] = None,
        *,
        resynthesize_after: int = 32,
        max_retained: int = 50_000,
        enrich=None,
    ):
        if resynthesize_after <= 0:
            raise ValueError("resynthesize_after must be positive")
        self._state = JxplainState(config)
        if enrich is not None:
            from repro.discovery.sketches import (
                EnrichmentState,
                parse_enrich_spec,
            )

            self._state.enrichment = EnrichmentState(
                parse_enrich_spec(enrich)
            )
        self.config = self._state.config
        self.resynthesize_after = resynthesize_after
        self.max_retained = max_retained
        self._seen: set = set()
        self._schema: Optional[Schema] = None
        self._novel_since_synthesis = 0
        self._count = 0
        self._synthesis_count = 0
        self._dropped_types = 0

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def retained_types(self) -> int:
        """Distinct types held by the state (capped by ``max_retained``)."""
        return self._state.distinct_count

    @property
    def pending_novelty(self) -> int:
        """Novel records seen since the last synthesis."""
        return self._novel_since_synthesis

    @property
    def synthesis_count(self) -> int:
        """How many times the schema has been (re)synthesized."""
        return self._synthesis_count

    @property
    def dropped_types(self) -> int:
        """Distinct types not retained because of ``max_retained``."""
        return self._dropped_types

    @property
    def state(self) -> JxplainState:
        """The underlying checkpointable state."""
        return self._state

    @classmethod
    def from_state(
        cls,
        state: JxplainState,
        *,
        resynthesize_after: int = 32,
        max_retained: int = 50_000,
    ) -> "StreamingJxplain":
        """Resume a stream from a (loaded) state."""
        if not isinstance(state, JxplainState):
            raise TypeError(
                f"expected JxplainState, got {type(state).__name__}"
            )
        stream = cls(
            state.config,
            resynthesize_after=resynthesize_after,
            max_retained=max_retained,
        )
        stream._state = state
        stream._seen = set(state.bag.distinct())
        stream._count = state.record_count
        return stream

    def observe(self, record: JsonValue) -> bool:
        """Absorb one record; returns True if it was novel.

        Novel = its exact type was never seen AND the current schema
        (if any) rejects it.
        """
        self._count += 1
        tau = type_of(record)
        # ``absorb_typed`` keeps an enriched state's sidecar in step
        # with the structural fold: enrichment observes exactly the
        # records whose types are absorbed, so records dropped by the
        # ``max_retained`` cap leave both sides untouched.
        if tau in self._seen:
            self._state.absorb_typed(tau, record)
            return False
        self._seen.add(tau)
        if self._state.distinct_count < self.max_retained:
            self._state.absorb_typed(tau, record)
        else:
            self._dropped_types += 1
        novel = self._schema is None or not self._schema.admits_type(tau)
        if novel:
            self._novel_since_synthesis += 1
            if self._novel_since_synthesis >= self.resynthesize_after:
                self._synthesize()
        return novel

    def observe_many(self, records: Iterable[JsonValue]) -> int:
        """Absorb records; returns how many were novel."""
        return sum(1 for record in records if self.observe(record))

    def _synthesize(self) -> None:
        self._schema = self._state.synthesize()
        self._novel_since_synthesis = 0
        self._synthesis_count += 1

    def current_schema(self) -> Schema:
        """The up-to-date schema (synthesizing if novelty is pending)."""
        if self._state.record_count == 0:
            raise EmptyInputError("no records observed yet")
        if self._schema is None or self._novel_since_synthesis:
            self._synthesize()
        return self._schema

    def validates(self, record: JsonValue) -> bool:
        """Would the current schema accept this record?"""
        return self.current_schema().admits_type(type_of(record))

    def merge_with(self, other: "StreamingJxplain") -> "StreamingJxplain":
        """Combine two independently-fed streams (associativity)."""
        merged = StreamingJxplain.from_state(
            self._state.merge(other._state),
            resynthesize_after=self.resynthesize_after,
            max_retained=self.max_retained,
        )
        merged._count = self._count + other._count
        merged._dropped_types = self._dropped_types + other._dropped_types
        return merged
