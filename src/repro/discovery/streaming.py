"""Incremental (streaming) schema discovery.

The paper's monitoring scenario is continuous: events keep arriving.
Re-running discovery from scratch per batch wastes the work already
done; this module maintains a schema incrementally:

* :class:`StreamingKReduce` — exact: K-reduction distributes over
  union, so folding each record (or each already-merged batch schema)
  with ``merge_k_schemas`` gives *exactly* the batch K-reduce schema at
  every point in the stream.
* :class:`StreamingJxplain` — JXPLAIN's heuristics need global
  statistics, so exact streaming is impossible (that is §4.2's whole
  point).  Instead the stream is absorbed into the mergeable pass-①/②
  accumulators (stat tree + shapes) continuously, and the schema is
  re-synthesized lazily — either on demand or whenever a configurable
  number of *novel* records (records the current schema rejects)
  accumulates.  Between synthesis points the current schema plus the
  novelty buffer answer validation queries.

Both expose ``observe`` / ``observe_many`` / ``current_schema``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.discovery.config import JxplainConfig
from repro.discovery.jxplain import JxplainMerger
from repro.discovery.kreduce import merge_k, merge_k_schemas
from repro.errors import EmptyInputError
from repro.jsontypes.types import JsonType, JsonValue, type_of
from repro.schema.nodes import NEVER, Schema


class StreamingKReduce:
    """Exact incremental K-reduction via the associative fold."""

    def __init__(self) -> None:
        self._schema: Schema = NEVER
        self._count = 0

    @property
    def record_count(self) -> int:
        return self._count

    def observe(self, record: JsonValue) -> Schema:
        """Fold one record in; returns the updated schema."""
        self._schema = merge_k_schemas(
            self._schema, merge_k([type_of(record)])
        )
        self._count += 1
        return self._schema

    def observe_many(self, records: Iterable[JsonValue]) -> Schema:
        for record in records:
            self.observe(record)
        return self._schema

    def current_schema(self) -> Schema:
        if self._count == 0:
            raise EmptyInputError("no records observed yet")
        return self._schema

    def merge_with(self, other: "StreamingKReduce") -> "StreamingKReduce":
        """Combine two independently-fed streams (associativity)."""
        merged = StreamingKReduce()
        merged._schema = merge_k_schemas(self._schema, other._schema)
        merged._count = self._count + other._count
        return merged


class StreamingJxplain:
    """Incremental JXPLAIN: buffer novelty, re-synthesize on demand.

    ``resynthesize_after`` controls laziness: after that many *novel*
    records (ones the current schema rejects) the schema is rebuilt
    from all retained types.  ``max_retained`` bounds memory by keeping
    a uniform-ish reservoir of representative types (novel records are
    always retained; duplicates of known types are dropped — type
    equality makes this cheap).
    """

    def __init__(
        self,
        config: Optional[JxplainConfig] = None,
        *,
        resynthesize_after: int = 32,
        max_retained: int = 50_000,
    ):
        if resynthesize_after <= 0:
            raise ValueError("resynthesize_after must be positive")
        self.config = config or JxplainConfig()
        self.resynthesize_after = resynthesize_after
        self.max_retained = max_retained
        self._types: List[JsonType] = []
        self._seen: set = set()
        self._schema: Optional[Schema] = None
        self._novel_since_synthesis = 0
        self._count = 0

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def retained_types(self) -> int:
        return len(self._types)

    def observe(self, record: JsonValue) -> bool:
        """Absorb one record; returns True if it was novel.

        Novel = its exact type was never seen AND the current schema
        (if any) rejects it.
        """
        self._count += 1
        tau = type_of(record)
        if tau in self._seen:
            return False
        self._seen.add(tau)
        if len(self._types) < self.max_retained:
            self._types.append(tau)
        novel = self._schema is None or not self._schema.admits_type(tau)
        if novel:
            self._novel_since_synthesis += 1
            if self._novel_since_synthesis >= self.resynthesize_after:
                self._synthesize()
        return novel

    def observe_many(self, records: Iterable[JsonValue]) -> int:
        """Absorb records; returns how many were novel."""
        return sum(1 for record in records if self.observe(record))

    def _synthesize(self) -> None:
        merger = JxplainMerger(self.config)
        self._schema = merger.merge(self._types)
        self._novel_since_synthesis = 0

    def current_schema(self) -> Schema:
        """The up-to-date schema (synthesizing if novelty is pending)."""
        if not self._types:
            raise EmptyInputError("no records observed yet")
        if self._schema is None or self._novel_since_synthesis:
            self._synthesize()
        return self._schema

    def validates(self, record: JsonValue) -> bool:
        """Would the current schema accept this record?"""
        return self.current_schema().admits_type(type_of(record))
