"""JXPLAIN's merge algorithm (Section 4.1, Algorithm 4).

At every complex-kinded path, two data-dependent decisions replace the
data-independent assumptions of K-reduction:

1. **Collection or tuple?** — decided by the entropy + similarity
   heuristic of Section 5 (Algorithm 5), for arrays *and* objects.
2. **How many entities?** — tuple-like bags are partitioned by the
   Bimax machinery of Section 6 and each entity is merged separately.

This module is the *reference* recursive implementation: it sees the
whole bag at each path, exactly as the simplified Algorithm 4 does.
Bags are threaded through the recursion as
:class:`~repro.jsontypes.bag.TypeBag`\\ s: with counted bags (the
default) every level operates on *distinct* types with multiplicities
— the heuristics consume weighted statistics that are exactly equal to
the duplicate-by-duplicate ones — so merge cost tracks distinct
structure rather than corpus size.  ``set_counted_merge(False)``
restores the seed's duplicate-preserving lists, which the equivalence
tests use to verify the two representations produce identical schemas.
The staged three-pass variant that decouples the heuristics for
distribution (Figure 3) lives in :mod:`repro.discovery.pipeline`; it
subclasses :class:`JxplainMerger` and overrides the two heuristic
hooks with precomputed per-path answers.

Paths threaded through the recursion are *data paths*: object keys and
array positions, with the :data:`~repro.jsontypes.paths.STAR` wildcard
for steps beneath a detected collection.  Entity partitioning does not
add a path step — all entities at a path share it.
"""

from __future__ import annotations

import threading
from functools import partial
from typing import Iterable, List, Optional, Sequence, Union as TUnion

from repro.discovery.base import Discoverer, register_discoverer
from repro.discovery.config import EntityStrategy, FeatureMode, JxplainConfig
from repro.engine.executor import resolve_executor
from repro.engine.instrument import counters
from repro.jsontypes.bag import TypeBag, as_bag
from repro.entities.bimax import (
    EntityCluster,
    bimax_naive,
    distinct_key_sets,
)
from repro.entities.greedy_merge import merge_to_fixpoint, greedy_merge
from repro.entities.kmeans import kmeans_clusters
from repro.entities.partitioner import EntityPartitioner
from repro.errors import EmptyInputError, RecursionDepthError
from repro.heuristics.collection import (
    CollectionEvidence,
    Designation,
    decide_designation,
)
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import Path, ROOT, STAR
from repro.jsontypes.types import ArrayType, JsonType, ObjectType, PrimitiveType
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PRIMITIVE_SCHEMAS,
    Schema,
    union,
)


def cluster_key_sets(
    key_sets: Sequence[frozenset],
    config: JxplainConfig,
    counts: Optional[Sequence[int]] = None,
) -> List[EntityCluster]:
    """Apply the configured entity strategy to a bag of key-sets.

    ``counts`` (aligned with ``key_sets``) carries record
    multiplicities from a counted bag; duplicates accumulate their
    weights during dedup and the resulting clusters expose them as
    ``member_counts``, so downstream weighting (partitioner weights,
    weighted k-means seeding) sees record frequencies rather than
    distinct-shape counts.
    """
    distinct, weights = distinct_key_sets(key_sets, counts)
    keep_counts = counts is not None
    strategy = config.entity_strategy
    if strategy is EntityStrategy.SINGLE:
        universe = frozenset().union(*distinct) if distinct else frozenset()
        return [
            EntityCluster(
                maximal=universe,
                members=list(distinct),
                member_counts=list(weights) if keep_counts else None,
            )
        ]
    if strategy is EntityStrategy.EXACT:
        return [
            EntityCluster(
                maximal=key_set,
                members=[key_set],
                member_counts=[weight] if keep_counts else None,
            )
            for key_set, weight in zip(distinct, weights)
        ]
    naive = bimax_naive(distinct, counts=weights if keep_counts else None)
    if strategy is EntityStrategy.BIMAX_NAIVE:
        return naive
    if strategy is EntityStrategy.BIMAX_MERGE:
        return merge_to_fixpoint(greedy_merge(naive))
    if strategy is EntityStrategy.KMEANS:
        k = config.kmeans_k if config.kmeans_k is not None else len(naive)
        k = min(k, len(distinct))
        kmeans_weights = (
            weights if (keep_counts and config.kmeans_weighted) else None
        )
        groups = kmeans_clusters(
            distinct, k, seed=config.kmeans_seed, weights=kmeans_weights
        )
        weight_of = dict(zip(distinct, weights))
        clusters = []
        for group in groups:
            if not group:
                continue
            clusters.append(
                EntityCluster(
                    maximal=frozenset().union(*group),
                    members=list(group),
                    member_counts=(
                        [weight_of[member] for member in group]
                        if keep_counts
                        else None
                    ),
                )
            )
        return clusters
    raise ValueError(f"unknown entity strategy {strategy!r}")


#: Guards against nested executor fan-out: a worker already running an
#: entity merge keeps its own subtree serial (re-submitting to the same
#: thread pool from inside a worker can deadlock it).
_entity_dispatch = threading.local()


# -- picklable entity-merge tasks --------------------------------------------
#
# Module-level (and dispatched via functools.partial over them) so the
# process executor backend can ship per-entity merges to real workers
# instead of silently degrading to a serial rescue; the merger itself
# drops its executor when pickled (see JxplainMerger.__getstate__), so
# a worker's recursive sub-merges stay serial by construction.


def _run_entity_merge(fn, bag: TypeBag) -> Schema:
    """Run one entity's merge under the nested-fan-out guard."""
    _entity_dispatch.active = True
    try:
        return fn(bag)
    finally:
        _entity_dispatch.active = False


def _merge_array_entity_task(
    merger: "JxplainMerger", path: Path, depth: int, bag: TypeBag
) -> Schema:
    return merger._merge_array_entity(bag, path, depth)


def _merge_object_entity_task(
    merger: "JxplainMerger", path: Path, depth: int, bag: TypeBag
) -> Schema:
    return merger._merge_object_entity(bag, path, depth)


class JxplainMerger:
    """Stateful recursive merger implementing Algorithm 4.

    The :meth:`is_collection` and :meth:`partition_objects` /
    :meth:`partition_arrays` hooks may be overridden (the staged
    pipeline precomputes their answers per path); the defaults compute
    them from the local bag, exactly as the simplified algorithm does.

    ``executor`` (an :class:`~repro.engine.executor.Executor` or a spec
    string like ``"threads:4"``) fans the per-entity merges at a
    tuple-typed path out across workers: after partitioning, each
    entity's sub-bag merges independently, so the only coordination is
    the final ``union`` in emission order.  Results are identical to
    serial execution; ``None`` keeps the seed's in-driver recursion.
    """

    def __init__(
        self,
        config: Optional[JxplainConfig] = None,
        executor=None,
    ):
        self.config = config or JxplainConfig()
        self.config.validate()
        self._executor = (
            resolve_executor(executor) if executor is not None else None
        )

    def __getstate__(self) -> dict:
        # The merger crosses the process boundary inside per-entity
        # merge tasks; pools are not picklable (and a worker must not
        # fan out again), so the executor stays driver-side.
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _map_entity_merges(self, fn, bags: List[TypeBag]) -> List[Schema]:
        """Map ``fn`` over per-entity bags, fanning out when allowed."""
        executor = self._executor
        if (
            executor is None
            or len(bags) <= 1
            or getattr(_entity_dispatch, "active", False)
        ):
            return [fn(bag) for bag in bags]
        counters.add("jxplain.entity_fanouts")
        return executor.map_list(partial(_run_entity_merge, fn), bags)

    # -- heuristic hooks ---------------------------------------------------

    def is_collection(
        self, kind: Kind, evidence: CollectionEvidence, path: Path
    ) -> bool:
        """Algorithm 5 on locally gathered evidence."""
        if kind == Kind.OBJECT and not self.config.detect_object_collections:
            return False
        if kind == Kind.ARRAY and not self.config.detect_array_tuples:
            return True
        designation = decide_designation(
            evidence, self.config.entropy_threshold
        )
        return designation is Designation.COLLECTION

    def object_features(
        self,
        objects: Sequence[ObjectType],
        path: Path,
        counts: Optional[Sequence[int]] = None,
    ) -> List[frozenset]:
        """The feature vector of each object, per the configured mode.

        ``PATHS`` mode (the paper's §6.4 implementation) runs a local
        mini pass ① over the bag to find nested collections, then
        prunes feature paths beneath them; ``KEYS`` mode uses the
        top-level key set.  ``counts`` carries the multiplicity of each
        object when the caller has deduplicated the bag, so the mini
        pass sees the same weighted statistics either way.
        """
        if self.config.feature_mode is FeatureMode.KEYS:
            return [tau.key_set() for tau in objects]
        # Imported here to avoid a cycle: stat_tree uses this module's
        # sibling config only.
        from repro.discovery.stat_tree import (
            StatTree,
            collection_paths,
            decide_collections,
        )
        from repro.entities.features import type_paths

        tree = StatTree.from_types(
            objects,
            similarity_depth=self.config.similarity_depth,
            counts=counts,
        )
        local_decisions = decide_collections(tree, self.config)
        nested_collections = collection_paths(local_decisions)
        return [
            type_paths(
                tau,
                collection_paths=nested_collections,
                prune_nested=True,
            )
            for tau in objects
        ]

    def partition_objects(
        self,
        objects: Sequence[ObjectType],
        path: Path,
        counts: Optional[Sequence[int]] = None,
    ) -> List[List[ObjectType]]:
        """Split tuple-like objects into entities via feature clusters."""
        features = self.object_features(objects, path, counts=counts)
        clusters = cluster_key_sets(features, self.config, counts=counts)
        partitioner = EntityPartitioner(clusters)
        return partitioner.non_empty_groups(list(objects), features)

    def partition_arrays(
        self,
        arrays: Sequence[ArrayType],
        path: Path,
        counts: Optional[Sequence[int]] = None,
    ) -> List[List[ArrayType]]:
        """Split tuple-like arrays into entities via position-sets."""
        key_sets = [
            frozenset(str(i) for i in range(len(tau))) for tau in arrays
        ]
        clusters = cluster_key_sets(key_sets, self.config, counts=counts)
        partitioner = EntityPartitioner(clusters)
        return partitioner.non_empty_groups(list(arrays), key_sets)

    # -- the merge itself ---------------------------------------------------

    def merge(self, types: TUnion[TypeBag, Iterable[JsonType]]) -> Schema:
        bag = as_bag(types)
        if not bag:
            raise EmptyInputError("jxplain: no input types")
        counters.add("jxplain.merge_total_types", bag.total)
        counters.add("jxplain.merge_distinct_types", bag.distinct_count)
        return self._merge_at(bag, path=ROOT, depth=0)

    def _merge_at(
        self,
        types: TUnion[TypeBag, Iterable[JsonType]],
        path: Path,
        depth: int,
    ) -> Schema:
        bag = as_bag(types)
        if depth > self.config.max_depth:
            raise RecursionDepthError(
                f"merge exceeded max_depth={self.config.max_depth} at {path}"
            )
        primitive_kinds: List[Kind] = []
        kinds_seen: set = set()
        arrays = bag.spawn()
        objects = bag.spawn()
        for tau, count in bag.items():
            if isinstance(tau, PrimitiveType):
                if tau.kind not in kinds_seen:
                    kinds_seen.add(tau.kind)
                    primitive_kinds.append(tau.kind)
            elif isinstance(tau, ArrayType):
                arrays.add(tau, count)
            else:
                objects.add(tau, count)
        branches: List[Schema] = [
            PRIMITIVE_SCHEMAS[kind] for kind in primitive_kinds
        ]
        if arrays:
            branches.append(self._merge_arrays(arrays, path, depth))
        if objects:
            branches.append(self._merge_objects(objects, path, depth))
        return union(*branches)

    def _merge_arrays(
        self, arrays: TypeBag, path: Path, depth: int
    ) -> Schema:
        evidence = CollectionEvidence.with_depth(
            Kind.ARRAY, self.config.similarity_depth
        )
        for tau, count in arrays.items():
            evidence.add(tau, count)
        if self.is_collection(Kind.ARRAY, evidence, path):
            return self._merge_array_collection(arrays, path, depth)
        groups = self.partition_arrays(
            arrays.distinct(), path, counts=arrays.counts()
        )
        branches = self._map_entity_merges(
            partial(_merge_array_entity_task, self, path, depth),
            [arrays.subset(group) for group in groups],
        )
        return union(*branches)

    def _merge_array_collection(
        self, arrays: TypeBag, path: Path, depth: int
    ) -> Schema:
        """Algorithm 2: a single-entity collection of the elements."""
        values = arrays.spawn()
        max_length = 0
        for tau, count in arrays.items():
            for value in tau.elements:
                values.add(value, count)
            if len(tau) > max_length:
                max_length = len(tau)
        nested = (
            self._merge_at(values, path + (STAR,), depth + 1)
            if values
            else NEVER
        )
        return ArrayCollection(nested, max_length_seen=max_length)

    def _merge_array_entity(
        self, arrays: TypeBag, path: Path, depth: int
    ) -> Schema:
        """One array entity: a tuple with an optional suffix."""
        lengths = [len(tau) for tau, _ in arrays.items()]
        min_length = min(lengths)
        max_length = max(lengths)
        elements: List[Schema] = []
        for position in range(max_length):
            values = arrays.spawn()
            for tau, count in arrays.items():
                if len(tau) > position:
                    values.add(tau.elements[position], count)
            elements.append(
                self._merge_at(values, path + (position,), depth + 1)
            )
        return ArrayTuple(elements, min_length)

    def _merge_objects(
        self, objects: TypeBag, path: Path, depth: int
    ) -> Schema:
        evidence = CollectionEvidence.with_depth(
            Kind.OBJECT, self.config.similarity_depth
        )
        for tau, count in objects.items():
            evidence.add(tau, count)
        if self.is_collection(Kind.OBJECT, evidence, path):
            return self._merge_object_collection(objects, path, depth)
        groups = self.partition_objects(
            objects.distinct(), path, counts=objects.counts()
        )
        branches = self._map_entity_merges(
            partial(_merge_object_entity_task, self, path, depth),
            [objects.subset(group) for group in groups],
        )
        return union(*branches)

    def _merge_object_collection(
        self, objects: TypeBag, path: Path, depth: int
    ) -> Schema:
        """Collection-like objects: one joint nested schema."""
        values = objects.spawn()
        domain: set = set()
        for tau, count in objects.items():
            for key, value in tau.items():
                domain.add(key)
                values.add(value, count)
        nested = (
            self._merge_at(values, path + (STAR,), depth + 1)
            if values
            else NEVER
        )
        return ObjectCollection(nested, domain)

    def _merge_object_entity(
        self, objects: TypeBag, path: Path, depth: int
    ) -> Schema:
        """Algorithm 3 for one entity: required ∩, optional ∪ − ∩."""
        universal: Optional[set] = None
        groups: dict = {}
        for tau, count in objects.items():
            keys = set(tau.keys())
            universal = keys if universal is None else universal & keys
            for key, value in tau.items():
                group = groups.get(key)
                if group is None:
                    group = groups[key] = objects.spawn()
                group.add(value, count)
        required = {
            key: self._merge_at(values, path + (key,), depth + 1)
            for key, values in groups.items()
            if key in universal
        }
        optional = {
            key: self._merge_at(values, path + (key,), depth + 1)
            for key, values in groups.items()
            if key not in universal
        }
        return ObjectTuple(required, optional)


def jxplain_merge(
    types: Iterable[JsonType],
    config: Optional[JxplainConfig] = None,
    *,
    executor=None,
) -> Schema:
    """Algorithm 4: JXPLAIN's merge with the given configuration."""
    return JxplainMerger(config, executor=executor).merge(types)


class Jxplain(Discoverer):
    """JXPLAIN as a :class:`Discoverer` (default: Bimax-Merge)."""

    name = "bimax-merge"

    def __init__(
        self,
        config: Optional[JxplainConfig] = None,
        *,
        executor=None,
    ):
        self.config = config or JxplainConfig()
        self.executor = executor

    def merge_types(self, types: Iterable[JsonType]) -> Schema:
        return jxplain_merge(types, self.config, executor=self.executor)


class JxplainNaive(Jxplain):
    """JXPLAIN with Bimax-Naive entity clustering (no GreedyMerge)."""

    name = "bimax-naive"

    def __init__(
        self,
        config: Optional[JxplainConfig] = None,
        *,
        executor=None,
    ):
        base = config or JxplainConfig()
        super().__init__(
            base.with_(entity_strategy=EntityStrategy.BIMAX_NAIVE),
            executor=executor,
        )


register_discoverer(Jxplain.name, Jxplain)
register_discoverer(JxplainNaive.name, JxplainNaive)
