"""The common interface of every schema-discovery algorithm.

A :class:`Discoverer` maps a collection of JSON values (or of their
types) to a :class:`~repro.schema.Schema`.  All four algorithms
compared in the paper — L-reduce, K-reduce, Bimax-Naive, Bimax-Merge —
implement this interface, which is what lets the benchmark harness
sweep them uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.errors import EmptyInputError
from repro.jsontypes.types import JsonType, JsonValue, type_of
from repro.schema.nodes import Schema


class Discoverer:
    """Base class for schema-discovery algorithms."""

    #: Short name used in benchmark tables.
    name: str = "discoverer"

    def merge_types(self, types: Iterable[JsonType]) -> Schema:
        """Merge a bag of record types into a schema."""
        raise NotImplementedError

    def discover(self, values: Iterable[JsonValue]) -> Schema:
        """Extract a schema from parsed JSON records."""
        types = [type_of(value) for value in values]
        if not types:
            raise EmptyInputError(f"{self.name}: no input records")
        return self.merge_types(types)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionDiscoverer(Discoverer):
    """Wrap a plain merge function as a :class:`Discoverer`."""

    def __init__(
        self, name: str, merge: Callable[[List[JsonType]], Schema]
    ):
        self.name = name
        self._merge = merge

    def merge_types(self, types: Iterable[JsonType]) -> Schema:
        materialized = list(types)
        if not materialized:
            raise EmptyInputError(f"{self.name}: no input types")
        return self._merge(materialized)


_REGISTRY: Dict[str, Callable[[], Discoverer]] = {}


def register_discoverer(name: str, factory: Callable[[], Discoverer]) -> None:
    """Register a discoverer factory under a CLI-friendly name."""
    _REGISTRY[name] = factory


def make_discoverer(name: str) -> Discoverer:
    """Instantiate a registered discoverer by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown discoverer {name!r}; known: {known}")
    return factory()


def discoverer_names() -> List[str]:
    """All registered discoverer names, sorted."""
    return sorted(_REGISTRY)
