"""Serializable, mergeable discovery state (the monoid core).

Every discovery algorithm in this package is, at heart, a fold over
record types whose accumulator forms a **commutative monoid**:
``empty()`` is the identity, ``absorb`` folds one record in, and
``merge`` combines two independently built accumulators.  JSONoid
(arXiv:2307.03113) showed that making this structure explicit is what
unlocks distributed and incremental schema inference; this module is
that formulation for L-reduce, K-reduce, and JXPLAIN.

A :class:`DiscoveryState` is the whole lifecycle in one object:

* ``empty()`` / ``absorb(value)`` / ``absorb_type(tau, count)`` —
  build a state from records (or pre-extracted types);
* ``merge(other)`` — combine partial states (associative, commutative
  up to schema equivalence; property-tested);
* ``synthesize()`` — derive the schema.  States carry *sufficient
  statistics*, not schemas, so synthesis can be re-run after more
  records arrive;
* ``to_bytes()`` / ``from_bytes()`` — the versioned wire format of
  :mod:`repro.discovery.codec`.  Serialization is deterministic, so
  state equality **is** byte equality.

:func:`save_state` / :func:`load_state` wrap the byte form in an
atomic checkpoint file, which is what gives the pipeline and CLI their
resume/append capability.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.discovery import codec
from repro.discovery.codec import Decoder, Encoder
from repro.discovery.config import EntityStrategy, JxplainConfig
from repro.discovery.sketches import EnrichmentState, parse_enrich_spec
from repro.discovery.stat_tree import StatTree
from repro.engine.instrument import counters
from repro.errors import CheckpointError, EmptyInputError, StateCodecError
from repro.jsontypes.bag import CountedBag
from repro.jsontypes.types import JsonType, JsonValue, type_of
from repro.schema.nodes import (
    NEVER,
    Schema,
    exact_schema,
    union_of,
)

#: Payload-kind prefix of every serialized state.
STATE_KIND_PREFIX = "state:"


class DiscoveryState:
    """Base class: the absorb/merge/synthesize lifecycle.

    Subclasses set :attr:`algorithm` (the registry name), implement
    :meth:`absorb_type`, :meth:`merge`, :meth:`synthesize`, and the
    codec hooks :meth:`_write_body` / :meth:`_read_body`.
    """

    #: Registry name; doubles as the payload-kind suffix.
    algorithm: str = ""

    #: Optional value-domain sidecar (PR 8): per-path sketches and
    #: discriminant evidence.  ``None`` (the default) keeps structural
    #: discovery value-free; when set, ``absorb``/``absorb_typed``
    #: also observe the record's *values*, and merge/serialization
    #: carry the sidecar along.  Strictly additive: the structural
    #: statistics and synthesized schema are untouched either way.
    enrichment: Optional[EnrichmentState] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def empty(cls) -> "DiscoveryState":
        """The monoid identity: a state that has absorbed nothing."""
        return cls()

    # -- absorption -----------------------------------------------------------

    def absorb(self, value: JsonValue) -> None:
        """Fold one JSON value into the state."""
        # type_of runs first so depth/shape errors surface before the
        # enrichment sidecar sees anything — an errored record must
        # leave the state wholly untouched.
        tau = type_of(value)
        self.absorb_type(tau)
        if self.enrichment is not None:
            self.enrichment.observe(value)

    def absorb_typed(self, tau: JsonType, value: JsonValue) -> None:
        """Fold a pre-tokenized ``(type, value)`` pair.

        The enriched fused-ingest path: the tokenizer already produced
        both the structural type and the value in one pass, so nothing
        is re-derived here.
        """
        self.absorb_type(tau)
        if self.enrichment is not None:
            self.enrichment.observe(value)

    def absorb_type(self, tau: JsonType, count: int = 1) -> None:
        """Fold ``count`` records of type ``tau`` into the state."""
        raise NotImplementedError

    def absorb_types(self, types: Iterable[JsonType]) -> None:
        for tau in types:
            self.absorb_type(tau)

    def absorb_many(self, values: Iterable[JsonValue]) -> int:
        """Absorb an iterable of values; returns how many."""
        absorbed = 0
        for value in values:
            self.absorb(value)
            absorbed += 1
        return absorbed

    def absorb_bag(self, bag) -> None:
        """Fold a whole :class:`~repro.jsontypes.bag.CountedBag` in.

        Byte-identical to absorbing the bag's records one at a time
        (in bag order), at per-*distinct*-type cost — the sharding
        workers' fast path.  Subclasses may override with something
        cheaper (K-reduce folds the bag through ``merge_k`` once).
        """
        for tau, count in bag.items():
            self.absorb_type(tau, count)

    # -- the monoid operation -------------------------------------------------

    def merge(self, other: "DiscoveryState") -> "DiscoveryState":
        """Combine two states into a new one (inputs untouched)."""
        raise NotImplementedError

    def _check_mergeable(self, other: "DiscoveryState") -> None:
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge {type(self).__name__} with "
                f"{type(other).__name__}"
            )
        counters.add("state.merges")

    def _merge_enrichment(
        self, other: "DiscoveryState"
    ) -> Optional[EnrichmentState]:
        """The enrichment sidecar of ``self.merge(other)``.

        Both enriched or both plain; a mixed merge would silently drop
        half the value evidence, so it is an error.
        """
        if self.enrichment is None and other.enrichment is None:
            return None
        if self.enrichment is None or other.enrichment is None:
            raise ValueError(
                "cannot merge an enriched state with an unenriched one"
            )
        return self.enrichment.merge(other.enrichment)

    # -- synthesis ------------------------------------------------------------

    def synthesize(self) -> Schema:
        """Derive the schema from the accumulated statistics."""
        raise NotImplementedError

    @property
    def record_count(self) -> int:
        """Number of records absorbed (counting multiplicity)."""
        raise NotImplementedError

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        enc = Encoder()
        self._write_body(enc)
        enc.w.boolean(self.enrichment is not None)
        if self.enrichment is not None:
            codec.write_enrichment(enc, self.enrichment)
        return enc.finish(STATE_KIND_PREFIX + self.algorithm)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DiscoveryState":
        """Decode a serialized state.

        On the base class this dispatches on the payload kind, so
        ``DiscoveryState.from_bytes`` decodes any algorithm's state;
        on a subclass the payload must match that algorithm.
        """
        if cls is DiscoveryState:
            dec = Decoder(data)
            target = _state_class_for_kind(dec.kind)
            dec = Decoder(data, expect_kind=STATE_KIND_PREFIX + target.algorithm)
        else:
            dec = Decoder(data, expect_kind=STATE_KIND_PREFIX + cls.algorithm)
            target = cls
        state = target._read_body(dec)
        if dec.r.boolean():
            state.enrichment = codec.read_enrichment(dec)
        dec.finish()
        return state

    def _write_body(self, enc: Encoder) -> None:
        raise NotImplementedError

    @classmethod
    def _read_body(cls, dec: Decoder) -> "DiscoveryState":
        raise NotImplementedError

    # -- equality is byte equality --------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, DiscoveryState):
            return NotImplemented
        return (
            type(other) is type(self)
            and other.to_bytes() == self.to_bytes()
        )

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # states are mutable accumulators

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} algorithm={self.algorithm!r}"
            f" records={self.record_count}>"
        )


class LReduceState(DiscoveryState):
    """L-reduction's sufficient statistic: the bag of record types.

    Synthesis unions the exact schema of every distinct type, in
    first-occurrence order (which fixes the rendered branch order).
    """

    algorithm = "l-reduce"

    def __init__(self) -> None:
        self.bag = CountedBag()

    def absorb_type(self, tau: JsonType, count: int = 1) -> None:
        self.bag.add(tau, count)

    def merge(self, other: "DiscoveryState") -> "LReduceState":
        self._check_mergeable(other)
        merged = LReduceState()
        merged.bag = self.bag.merge(other.bag)
        merged.enrichment = self._merge_enrichment(other)
        return merged

    def synthesize(self) -> Schema:
        if not self.bag:
            raise EmptyInputError("l-reduce state: no records absorbed")
        return union_of(exact_schema(tau) for tau in self.bag.distinct())

    @property
    def record_count(self) -> int:
        return self.bag.total

    def _write_body(self, enc: Encoder) -> None:
        codec.write_bag(enc, self.bag)

    @classmethod
    def _read_body(cls, dec: Decoder) -> "LReduceState":
        state = cls()
        bag = codec.read_bag(dec)
        state.bag = bag
        return state


class KReduceState(DiscoveryState):
    """K-reduction's state: the running folded schema plus a count.

    ``merge_k_schemas`` is associative and commutative and the K-merge
    is multiplicity-invariant, so the folded schema *is* a sufficient
    statistic — no bag needs to be retained.
    """

    algorithm = "k-reduce"

    def __init__(self) -> None:
        self._schema: Schema = NEVER
        self._count = 0

    @property
    def schema(self) -> Schema:
        """The running folded schema (NEVER before any absorption)."""
        return self._schema

    def absorb_type(self, tau: JsonType, count: int = 1) -> None:
        from repro.discovery.kreduce import merge_k, merge_k_schemas

        self._schema = merge_k_schemas(self._schema, merge_k([tau]))
        self._count += count

    def absorb_bag(self, bag) -> None:
        """Fold a whole bag at once (the counted-bag fast path)."""
        from repro.discovery.kreduce import merge_k, merge_k_schemas

        if not bag:
            return
        self._schema = merge_k_schemas(self._schema, merge_k(bag))
        self._count += bag.total

    def merge(self, other: "DiscoveryState") -> "KReduceState":
        from repro.discovery.kreduce import merge_k_schemas

        self._check_mergeable(other)
        merged = KReduceState()
        merged._schema = merge_k_schemas(self._schema, other._schema)
        merged._count = self._count + other._count
        merged.enrichment = self._merge_enrichment(other)
        return merged

    def synthesize(self) -> Schema:
        if self._count == 0:
            raise EmptyInputError("k-reduce state: no records absorbed")
        return self._schema

    @property
    def record_count(self) -> int:
        return self._count

    def _write_body(self, enc: Encoder) -> None:
        enc.w.uvarint(self._count)
        codec.write_schema(enc, self._schema)

    @classmethod
    def _read_body(cls, dec: Decoder) -> "KReduceState":
        state = cls()
        state._count = dec.r.uvarint()
        state._schema = codec.read_schema(dec)
        return state


class JxplainState(DiscoveryState):
    """JXPLAIN's sufficient statistics: type bag + pass-① stat tree.

    The bag (with multiplicities) determines passes ② and ③ exactly —
    the fold's combine is idempotent over identical types, and the
    shape accumulator is a set union — while the stat tree carries the
    entropy/similarity evidence pass ① needs with its true per-record
    weights.  The tree is maintained *incrementally* on absorb, so
    checkpointing never needs the original records.

    Merging requires equal configurations: the heuristics' thresholds
    are part of what the state means.
    """

    algorithm = "jxplain"

    def __init__(self, config: Optional[JxplainConfig] = None) -> None:
        self.config = config or JxplainConfig()
        self.config.validate()
        self.bag = CountedBag()
        self.tree = StatTree(similarity_depth=self.config.similarity_depth)

    @classmethod
    def from_bag(
        cls, bag, config: Optional[JxplainConfig] = None
    ) -> "JxplainState":
        """Build a state from an existing bag of types."""
        state = cls(config)
        for tau, count in bag.items():
            state.absorb_type(tau, count)
        return state

    def absorb_type(self, tau: JsonType, count: int = 1) -> None:
        self.bag.add(tau, count)
        self.tree.add(tau, count)

    def merge(self, other: "DiscoveryState") -> "JxplainState":
        self._check_mergeable(other)
        if other.config != self.config:
            raise ValueError(
                "cannot merge jxplain states with different configurations"
            )
        merged = JxplainState(self.config)
        merged.bag = self.bag.merge(other.bag)
        merged.tree = self.tree.merge(other.tree)
        merged.enrichment = self._merge_enrichment(other)
        return merged

    @property
    def distinct_count(self) -> int:
        return self.bag.distinct_count

    def __contains__(self, tau: JsonType) -> bool:
        return tau in self.bag

    def synthesize_result(self):
        """Run passes ①–③ over the statistics.

        Returns ``(schema, decisions, object_partitioners,
        array_partitioners)`` — everything
        :class:`~repro.discovery.pipeline.PipelineResult` needs.
        """
        from repro.discovery.fold import DecidedFolder, FoldNode
        from repro.discovery.pipeline import (
            FeatureExtractor,
            TupleShapes,
            build_partitioners,
        )
        from repro.discovery.stat_tree import decide_collections

        if not self.bag:
            raise EmptyInputError("jxplain state: no records absorbed")
        decisions = decide_collections(self.tree, self.config)
        extractor = FeatureExtractor(decisions, self.config)
        shapes = TupleShapes()
        for tau in self.bag.distinct():
            shapes.add(tau, decisions, extractor)
        object_partitioners, array_partitioners = build_partitioners(
            shapes, self.config
        )
        folder = DecidedFolder(
            decisions,
            object_partitioners,
            array_partitioners,
            self.config,
            extractor=extractor,
        )
        node = FoldNode()
        for tau in self.bag.distinct():
            node = folder.combine(node, folder.lift(tau))
        return (
            folder.schema(node),
            decisions,
            object_partitioners,
            array_partitioners,
        )

    def synthesize(self) -> Schema:
        return self.synthesize_result()[0]

    @property
    def record_count(self) -> int:
        return self.bag.total

    def _write_body(self, enc: Encoder) -> None:
        codec.write_config(enc, self.config)
        codec.write_bag(enc, self.bag)
        codec.write_stat_tree(enc, self.tree)

    @classmethod
    def _read_body(cls, dec: Decoder) -> "JxplainState":
        state = cls(codec.read_config(dec))
        state.bag = codec.read_bag(dec)
        state.tree = codec.read_stat_tree(dec)
        return state


_STATE_CLASSES = (LReduceState, KReduceState, JxplainState)
_STATE_KINDS = {
    STATE_KIND_PREFIX + klass.algorithm: klass for klass in _STATE_CLASSES
}


def _state_class_for_kind(kind: str):
    klass = _STATE_KINDS.get(kind)
    if klass is None:
        raise StateCodecError(f"unknown state payload kind {kind!r}")
    return klass


def state_for_algorithm(
    name: str,
    config: Optional[JxplainConfig] = None,
    enrich=None,
) -> DiscoveryState:
    """An empty state for a discoverer registry name.

    The JXPLAIN family maps onto :class:`JxplainState` with the
    matching entity strategy; ``config`` (when given) seeds the
    JXPLAIN configuration and is rejected for the reductions, which
    have no knobs.  ``enrich`` — ``None``, a ``--enrich`` spec string
    like ``"sketches,unions"``, or an
    :class:`~repro.discovery.sketches.EnrichmentOptions` — attaches a
    value-domain enrichment sidecar to the state.
    """
    options = parse_enrich_spec(enrich)
    if name == "l-reduce":
        if config is not None:
            raise ValueError("l-reduce takes no configuration")
        state: DiscoveryState = LReduceState()
    elif name == "k-reduce":
        if config is not None:
            raise ValueError("k-reduce takes no configuration")
        state = KReduceState()
    elif name in ("jxplain", "jxplain-pipeline", "bimax-merge"):
        state = JxplainState(config)
    elif name == "bimax-naive":
        base = config or JxplainConfig()
        state = JxplainState(
            base.with_(entity_strategy=EntityStrategy.BIMAX_NAIVE)
        )
    else:
        known = (
            "l-reduce, k-reduce, jxplain, jxplain-pipeline, "
            "bimax-merge, bimax-naive"
        )
        raise ValueError(f"unknown algorithm {name!r}; known: {known}")
    if options is not None:
        state.enrichment = EnrichmentState(options)
    return state


# -- checkpoint files ---------------------------------------------------------


def save_state(state: DiscoveryState, path) -> None:
    """Write a checkpoint atomically (write-to-temp, then rename)."""
    path = os.fspath(path)
    payload = state.to_bytes()
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "wb") as handle:
        handle.write(payload)
    os.replace(tmp_path, path)
    counters.add("state.checkpoints_written")


def load_state(path) -> DiscoveryState:
    """Read a checkpoint written by :func:`save_state`."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    try:
        state = DiscoveryState.from_bytes(payload)
    except CheckpointError:
        raise
    except StateCodecError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not a valid discovery state: {exc}"
        ) from exc
    counters.add("state.checkpoints_loaded")
    return state
