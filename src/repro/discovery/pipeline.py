"""The staged three-pass JXPLAIN pipeline (Section 4.2, Figure 3).

Pass ① folds a :class:`~repro.discovery.stat_tree.StatTree` over the
partitioned data and derives collection/tuple designations per path.
Pass ② collects the distinct key-sets (objects) and lengths (arrays)
at every tuple-designated path and compiles them — via the configured
Bimax strategy — into deterministic :class:`EntityPartitioner`\\ s.
Pass ③ synthesizes the schema; with the heuristic answers fixed it is
an associative fold (:mod:`repro.discovery.fold`) run through the
engine's ``tree_aggregate``.

Every pass is timed (:class:`~repro.engine.StageTimer`) and counted
(the dataset's scan counter), which is what the Table 5 runtime bench
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union as TUnion

from repro.discovery.base import Discoverer, register_discoverer
from repro.discovery.codec import (
    dumps_bag,
    dumps_fold_node,
    dumps_stat_tree,
    dumps_tuple_shapes,
    loads_bag,
    loads_fold_node,
    loads_stat_tree,
    loads_tuple_shapes,
)
from repro.discovery.config import FeatureMode, JxplainConfig, RobustnessConfig
from repro.discovery.fold import DecidedFolder, FoldNode
from repro.discovery.jxplain import JxplainMerger, cluster_key_sets
from repro.discovery.stat_tree import (
    CollectionDecisions,
    StatTree,
    decide_collections,
)
from repro.engine.dataset import LocalDataset
from repro.engine.executor import resolve_executor
from repro.engine.instrument import StageTimer, counters
from repro.jsontypes.bag import CountedBag
from repro.entities.partitioner import EntityPartitioner
from repro.errors import EmptyInputError
from repro.heuristics.collection import CollectionEvidence, Designation
from repro.jsontypes.kinds import Kind
from repro.jsontypes.paths import Path, ROOT, STAR
from repro.jsontypes.types import (
    ArrayType,
    JsonType,
    JsonValue,
    ObjectType,
    type_of,
)
from repro.schema.nodes import Schema


class FeatureExtractor:
    """Computes record feature vectors under global pass-① decisions.

    In ``PATHS`` mode a record's features are all of its paths, pruned
    beneath paths the decisions designate as collections (the §6.4
    optimisation); in ``KEYS`` mode, just the top-level key set.
    Relative collection-path sets are cached per base path.
    """

    def __init__(
        self, decisions: CollectionDecisions, config: JxplainConfig
    ):
        self._decisions = decisions
        self._config = config
        self._cache: Dict[Path, frozenset] = {}

    def relative_collections(self, base: Path) -> frozenset:
        """Collection paths beneath ``base``, relative to it."""
        cached = self._cache.get(base)
        if cached is None:
            offset = len(base)
            cached = frozenset(
                path[offset:]
                for (path, _kind), designation in self._decisions.items()
                if designation is Designation.COLLECTION
                and len(path) > offset
                and path[:offset] == base
            )
            self._cache[base] = cached
        return cached

    def features(self, tau: ObjectType, base: Path) -> frozenset:
        if self._config.feature_mode is FeatureMode.KEYS:
            return tau.key_set()
        from repro.entities.features import type_paths

        return type_paths(
            tau,
            collection_paths=self.relative_collections(base),
            prune_nested=True,
        )


def _deterministic_feature_order(feature_sets: Set[frozenset]) -> List[frozenset]:
    """Stable ordering of feature sets (sets iterate hash-ordered)."""
    return sorted(
        feature_sets,
        key=lambda fs: (len(fs), tuple(sorted(repr(f) for f in fs))),
    )


@dataclass
class TupleShapes:
    """Pass ②'s accumulator: observed shapes at tuple-designated paths.

    Merges associatively (set unions), so it folds over partitions.
    """

    object_features: Dict[Path, Set[frozenset]] = field(default_factory=dict)
    array_lengths: Dict[Path, Set[int]] = field(default_factory=dict)

    def add(
        self,
        tau: JsonType,
        decisions: CollectionDecisions,
        extractor: FeatureExtractor,
    ) -> None:
        self._walk(tau, ROOT, decisions, extractor)

    def _walk(
        self,
        tau: JsonType,
        path: Path,
        decisions: CollectionDecisions,
        extractor: FeatureExtractor,
    ) -> None:
        if isinstance(tau, ObjectType):
            designation = decisions.get((path, Kind.OBJECT))
            if designation is Designation.COLLECTION:
                for _, value in tau.items():
                    self._walk(value, path + (STAR,), decisions, extractor)
            else:
                self.object_features.setdefault(path, set()).add(
                    extractor.features(tau, path)
                )
                for key, value in tau.items():
                    self._walk(value, path + (key,), decisions, extractor)
        elif isinstance(tau, ArrayType):
            designation = decisions.get((path, Kind.ARRAY))
            if designation is Designation.TUPLE:
                self.array_lengths.setdefault(path, set()).add(len(tau))
                for index, value in enumerate(tau.elements):
                    self._walk(value, path + (index,), decisions, extractor)
            else:
                for value in tau.elements:
                    self._walk(value, path + (STAR,), decisions, extractor)

    def merge(self, other: "TupleShapes") -> "TupleShapes":
        merged = TupleShapes()
        for source in (self, other):
            for path, feature_sets in source.object_features.items():
                merged.object_features.setdefault(path, set()).update(
                    feature_sets
                )
            for path, lengths in source.array_lengths.items():
                merged.array_lengths.setdefault(path, set()).update(lengths)
        return merged


def _compile_partitioner(task):
    """Cluster one path's key-sets into an :class:`EntityPartitioner`.

    Module-level (and fed fully picklable tasks) so the process
    executor backend can ship it to workers.
    """
    path, key_sets, config = task
    return path, EntityPartitioner(cluster_key_sets(key_sets, config))


def build_partitioners(
    shapes: TupleShapes, config: JxplainConfig, executor=None
) -> "tuple[Dict[Path, EntityPartitioner], Dict[Path, EntityPartitioner]]":
    """Compile pass ②'s shapes into per-path entity partitioners.

    Each tuple-designated path clusters independently — this is the
    embarrassingly parallel core of entity discovery — so the per-path
    Bimax/GreedyMerge runs fan out over ``executor`` (an
    :class:`~repro.engine.executor.Executor` or spec string) when one
    is given.  Results keep path order, so the output is identical to
    the serial loop.
    """
    object_tasks = [
        (path, _deterministic_feature_order(feature_sets), config)
        for path, feature_sets in shapes.object_features.items()
    ]
    array_tasks = [
        (
            path,
            [
                frozenset(str(i) for i in range(length))
                for length in sorted(lengths)
            ],
            config,
        )
        for path, lengths in shapes.array_lengths.items()
    ]
    tasks = object_tasks + array_tasks
    backend = resolve_executor(executor) if executor is not None else None
    if backend is None or len(tasks) <= 1:
        compiled = [_compile_partitioner(task) for task in tasks]
    else:
        counters.add("pipeline.partitioner_fanouts")
        compiled = backend.map_list(_compile_partitioner, tasks)
    object_partitioners = dict(compiled[: len(object_tasks)])
    array_partitioners = dict(compiled[len(object_tasks):])
    return object_partitioners, array_partitioners


class PipelineMerger(JxplainMerger):
    """Algorithm 4 with the heuristics replaced by pass ①/② lookups.

    Used for testing agreement between the staged pipeline and the
    associative fold; unseen paths fall back to the local heuristics.
    """

    def __init__(
        self,
        config: JxplainConfig,
        decisions: CollectionDecisions,
        object_partitioners: Dict[Path, EntityPartitioner],
        array_partitioners: Dict[Path, EntityPartitioner],
        extractor: Optional[FeatureExtractor] = None,
    ):
        super().__init__(config)
        self._decisions = decisions
        self._object_partitioners = object_partitioners
        self._array_partitioners = array_partitioners
        self._extractor = extractor or FeatureExtractor(decisions, config)

    def is_collection(
        self, kind: Kind, evidence: CollectionEvidence, path: Path
    ) -> bool:
        designation = self._decisions.get((path, kind))
        if designation is None:
            return super().is_collection(kind, evidence, path)
        return designation is Designation.COLLECTION

    def partition_objects(
        self,
        objects: Sequence[ObjectType],
        path: Path,
        counts: Optional[Sequence[int]] = None,
    ) -> List[List[ObjectType]]:
        partitioner = self._object_partitioners.get(path)
        if partitioner is None:
            return super().partition_objects(objects, path, counts=counts)
        features = [
            self._extractor.features(tau, path) for tau in objects
        ]
        return partitioner.non_empty_groups(list(objects), features)

    def partition_arrays(
        self,
        arrays: Sequence[ArrayType],
        path: Path,
        counts: Optional[Sequence[int]] = None,
    ) -> List[List[ArrayType]]:
        partitioner = self._array_partitioners.get(path)
        if partitioner is None:
            return super().partition_arrays(arrays, path, counts=counts)
        key_sets = [
            frozenset(str(i) for i in range(len(tau))) for tau in arrays
        ]
        return partitioner.non_empty_groups(list(arrays), key_sets)


@dataclass
class PipelineResult:
    """Everything the staged pipeline produced."""

    schema: Schema
    decisions: CollectionDecisions
    object_partitioners: Dict[Path, EntityPartitioner]
    array_partitioners: Dict[Path, EntityPartitioner]
    timer: StageTimer
    record_count: int
    #: Per-file ingestion account when the run came from
    #: :meth:`JxplainPipeline.run_file`; None for in-memory input.
    ingest_report: Optional[object] = None
    #: The checkpointable :class:`~repro.discovery.state.JxplainState`
    #: when the run was asked to build one; None otherwise.
    state: Optional[object] = None

    @property
    def collection_paths(self) -> frozenset:
        return frozenset(
            path
            for (path, _), designation in self.decisions.items()
            if designation is Designation.COLLECTION
        )


class JxplainPipeline(Discoverer):
    """The distributable JXPLAIN of Section 4.2 (Figure 3)."""

    name = "jxplain-pipeline"

    def __init__(
        self,
        config: Optional[JxplainConfig] = None,
        *,
        num_partitions: int = 4,
        use_fold: bool = True,
        heuristic_sample: Optional[float] = None,
        sample_seed: int = 0,
        executor=None,
        robustness: Optional[RobustnessConfig] = None,
        ingest: str = "classic",
        shards=None,
        merge_fanin: Optional[int] = None,
        enrich=None,
    ):
        """``heuristic_sample`` enables §4.2's sampling mitigation:
        passes ① and ② run on a Bernoulli sample of that fraction,
        while pass ③ still synthesizes over the full data.  Paths that
        only occur outside the sample fall back to the
        data-independent defaults (objects tuple, arrays collection).

        ``executor`` selects the engine backend (an
        :class:`~repro.engine.Executor` or a spec string like
        ``"threads:4"``) used when the pipeline builds its own dataset;
        a :class:`LocalDataset` passed to :meth:`run` keeps its own.

        ``robustness`` installs the DESIGN.md §8 failure model: its
        retry policy supervises every per-partition task of every pass
        (on whichever backend the dataset carries), and its
        ``on_bad_record`` policy governs :meth:`run_file` ingestion.

        ``ingest`` selects how :meth:`run_file` reads files:
        ``"classic"`` parses values, ``"fused"`` streams interned
        record types via :mod:`repro.io.fastpath` (same schema, same
        report, one pass over the bytes).

        ``shards`` switches :meth:`run_file` onto the sharded
        byte-range path of :mod:`repro.engine.sharding`: ``"auto"``
        sizes the shard count adaptively, an integer fixes it, and
        ``None`` (default) keeps the in-driver ingestion.  Sharded
        runs never materialize records in the driver — workers ship
        serialized state partials, merged with fan-in ``merge_fanin``
        — and produce byte-identical states/schemas to unsharded
        runs.

        ``enrich`` (an ``--enrich`` spec string or
        :class:`~repro.discovery.sketches.EnrichmentOptions`) makes
        :meth:`run_file` collect the PR-8 value-domain sidecar while
        it discovers; enriched runs always route through the state
        core (sketches need the parsed values) and leave the
        structural schema unchanged.  On resume, the checkpoint's own
        enrichment (or its absence) governs, like its config.
        """
        from repro.discovery.sketches import parse_enrich_spec
        from repro.io.jsonlines import _check_ingest_mode

        self.config = config or JxplainConfig()
        self.config.validate()
        _check_ingest_mode(ingest)
        self.ingest = ingest
        self.enrich = parse_enrich_spec(enrich)
        if shards is not None and shards != "auto":
            if not isinstance(shards, int) or shards < 1:
                raise ValueError(
                    "shards must be None, 'auto', or a positive int"
                )
        self.shards = shards
        self.merge_fanin = merge_fanin
        self.num_partitions = num_partitions
        self.use_fold = use_fold
        if heuristic_sample is not None and not 0.0 < heuristic_sample <= 1.0:
            raise ValueError("heuristic_sample must be in (0, 1]")
        self.heuristic_sample = heuristic_sample
        self.sample_seed = sample_seed
        self.executor = executor
        if robustness is not None:
            robustness.validate()
        self.robustness = robustness

    # -- the three passes ------------------------------------------------------

    def run(
        self,
        data: TUnion[LocalDataset, Iterable[JsonValue]],
        *,
        build_state: bool = False,
    ) -> PipelineResult:
        """Run all three passes and return schema + diagnostics.

        ``build_state`` additionally aggregates the record-type bag
        into a checkpointable
        :class:`~repro.discovery.state.JxplainState` (one extra scan),
        attached to the result as ``state``.
        """
        timer = StageTimer()
        if isinstance(data, LocalDataset):
            dataset = data
        else:
            dataset = LocalDataset.from_records(
                list(data), self.num_partitions, executor=self.executor
            )
        if dataset.is_empty():
            raise EmptyInputError("pipeline: no input records")
        if self.robustness is not None:
            policy = self.robustness.retry_policy()
            if policy is not None:
                dataset = dataset.with_retry(policy)
        with timer.stage("parse"):
            # Interning touches the module-level hash-cons table by
            # design: writes are idempotent canonical values and the
            # stats counters tolerate lost increments under threads.
            types = dataset.map(self._ensure_type)  # repro-lint: disable=R9
        if self.heuristic_sample is not None and self.heuristic_sample < 1.0:
            heuristic_types = types.sample(
                self.heuristic_sample, seed=self.sample_seed
            )
            if heuristic_types.is_empty():
                heuristic_types = types
        else:
            heuristic_types = types
        with timer.stage("pass1-collections"):
            depth = self.config.similarity_depth
            tree = heuristic_types.tree_aggregate_serialized(
                partial(StatTree, similarity_depth=depth),
                _stat_add,
                StatTree.merge,
                dumps=dumps_stat_tree,
                loads=loads_stat_tree,
            )
            decisions = decide_collections(tree, self.config)
        extractor = FeatureExtractor(decisions, self.config)
        with timer.stage("pass2-entities"):
            shapes = heuristic_types.tree_aggregate_serialized(
                TupleShapes,
                partial(_shape_add, decisions=decisions, extractor=extractor),
                TupleShapes.merge,
                dumps=dumps_tuple_shapes,
                loads=loads_tuple_shapes,
            )
            object_partitioners, array_partitioners = build_partitioners(
                shapes, self.config, executor=dataset.executor
            )
        with timer.stage("pass3-synthesis"):
            folder = DecidedFolder(
                decisions,
                object_partitioners,
                array_partitioners,
                self.config,
                extractor=extractor,
            )
            if self.use_fold:
                node = types.tree_aggregate_serialized(
                    FoldNode,
                    partial(_fold_add, folder=folder),
                    folder.combine,
                    dumps=dumps_fold_node,
                    loads=loads_fold_node,
                )
                schema = folder.schema(node)
            else:
                merger = PipelineMerger(
                    self.config,
                    decisions,
                    object_partitioners,
                    array_partitioners,
                    extractor=extractor,
                )
                schema = merger.merge(types.collect())
        state = None
        if build_state:
            from repro.discovery.state import JxplainState

            with timer.stage("state-build"):
                bag = types.tree_aggregate_serialized(
                    CountedBag,
                    _bag_add,
                    _bag_merge,
                    dumps=dumps_bag,
                    loads=loads_bag,
                )
                state = JxplainState.from_bag(bag, self.config)
        return PipelineResult(
            schema=schema,
            decisions=decisions,
            object_partitioners=object_partitioners,
            array_partitioners=array_partitioners,
            timer=timer,
            record_count=(
                _tree_record_count(tree)
                if heuristic_types is types
                else types.count()
            ),
            state=state,
        )

    def run_file(
        self,
        path=None,
        *,
        checkpoint=None,
        resume: bool = False,
        append: Sequence = (),
    ) -> PipelineResult:
        """Ingest ``.jsonl`` input and run the three passes.

        Files are read under the robustness config's ``on_bad_record``
        policy (``raise`` when no config is set); the resulting
        :class:`~repro.io.jsonlines.IngestReport` rides along on the
        :class:`PipelineResult`.

        ``checkpoint`` names a state file: after the run, the
        accumulated :class:`~repro.discovery.state.JxplainState` is
        saved there (atomically) and returned on the result.  With
        ``resume=True`` the run starts *from* that checkpoint instead
        of from scratch — only the ``append`` files (plus ``path``, if
        given) are read and absorbed, and the schema is re-synthesized
        from the combined statistics.  Resume-then-append is equivalent
        to one-shot discovery over the concatenated input (property-
        tested), which is what makes checkpoints safe to chain.
        """
        from repro.discovery.state import JxplainState, load_state, save_state

        policy = (
            self.robustness.on_bad_record
            if self.robustness is not None
            else "raise"
        )
        new_files = [f for f in ([path] if path is not None else [])]
        new_files.extend(append)
        if resume:
            if checkpoint is None:
                raise ValueError("resume=True requires a checkpoint path")
            state = load_state(checkpoint)
            if not isinstance(state, JxplainState):
                from repro.errors import CheckpointError

                raise CheckpointError(
                    f"checkpoint holds a {state.algorithm!r} state; "
                    "the pipeline resumes jxplain states only"
                )
            # The checkpoint's configuration governs: it is part of the
            # meaning of the accumulated evidence.  Likewise its
            # enrichment (or its absence).
            self.config = state.config
            resumed_enrich = (
                state.enrichment.options
                if state.enrichment is not None
                else None
            )
            timer = StageTimer()
            reports = []
            used_shard_dirs = []
            if self.shards is not None:
                if new_files:
                    shard_state, reports, used_shard_dirs = (
                        self._run_sharded(
                            new_files,
                            policy,
                            timer,
                            checkpoint,
                            enrich=resumed_enrich,
                        )
                    )
                    with timer.stage("resume-merge"):
                        state = state.merge(shard_state)
            else:
                with timer.stage("resume-absorb"):
                    if self.ingest == "fused":
                        if resumed_enrich is not None:
                            # Sketches need the parsed values; the
                            # typed reader keeps the one-pass shape.
                            from repro.io.fastpath import (
                                absorb_jsonlines_typed,
                            )

                            for new_file in new_files:
                                reports.append(
                                    absorb_jsonlines_typed(
                                        state,
                                        new_file,
                                        on_bad_record=policy,
                                    )
                                )
                        else:
                            from repro.io.fastpath import (
                                absorb_jsonlines_fused,
                            )

                            for new_file in new_files:
                                reports.append(
                                    absorb_jsonlines_fused(
                                        state,
                                        new_file,
                                        on_bad_record=policy,
                                    )
                                )
                    else:
                        from repro.io.jsonlines import ingest_jsonlines

                        for new_file in new_files:
                            records, report = ingest_jsonlines(
                                new_file, on_bad_record=policy
                            )
                            reports.append(report)
                            for record in records:
                                state.absorb(record)
            with timer.stage("resume-synthesis"):
                (
                    schema,
                    decisions,
                    object_partitioners,
                    array_partitioners,
                ) = state.synthesize_result()
            save_state(state, checkpoint)
            self._cleanup_shard_dirs(used_shard_dirs)
            return PipelineResult(
                schema=schema,
                decisions=decisions,
                object_partitioners=object_partitioners,
                array_partitioners=array_partitioners,
                timer=timer,
                record_count=state.record_count,
                ingest_report=(
                    reports[0] if len(reports) == 1 else (reports or None)
                ),
                state=state,
            )
        if not new_files:
            raise ValueError("run_file needs an input path (or resume=True)")
        if self.shards is None and self.enrich is not None:
            # Fresh enriched unsharded run: the dataset pipeline maps
            # records to bare types (enrichment would lose the
            # values), so route through the state core serially.
            return self._run_enriched_serial(
                new_files, policy, checkpoint
            )
        if self.shards is not None:
            timer = StageTimer()
            state, reports, used_shard_dirs = self._run_sharded(
                new_files, policy, timer, checkpoint, enrich=self.enrich
            )
            with timer.stage("shard-synthesis"):
                (
                    schema,
                    decisions,
                    object_partitioners,
                    array_partitioners,
                ) = state.synthesize_result()
            if checkpoint is not None:
                save_state(state, checkpoint)
                self._cleanup_shard_dirs(used_shard_dirs)
            return PipelineResult(
                schema=schema,
                decisions=decisions,
                object_partitioners=object_partitioners,
                array_partitioners=array_partitioners,
                timer=timer,
                record_count=state.record_count,
                ingest_report=(
                    reports[0] if len(reports) == 1 else (reports or None)
                ),
                state=state,
            )
        dataset = None
        ingest_report = None
        for new_file in new_files:
            part = LocalDataset.from_jsonlines(
                new_file,
                self.num_partitions,
                executor=self.executor,
                on_bad_record=policy,
                ingest=self.ingest,
            )
            if dataset is None:
                dataset, ingest_report = part, part.ingest_report
            else:
                dataset = dataset.union(part)
                ingest_report = [
                    *(
                        ingest_report
                        if isinstance(ingest_report, list)
                        else [ingest_report]
                    ),
                    part.ingest_report,
                ]
        result = self.run(dataset, build_state=checkpoint is not None)
        result.ingest_report = ingest_report
        if checkpoint is not None:
            save_state(result.state, checkpoint)
        return result

    # -- the enriched serial path ----------------------------------------------

    def _run_enriched_serial(self, new_files, policy, checkpoint):
        """Fresh enriched discovery through the state core.

        One serial pass per file — typed reader under ``fused``
        ingestion, value absorption under ``classic`` — then
        synthesis from the accumulated state, exactly as a resumed
        run would do it.  The structural schema is byte-identical to
        the dataset pipeline's (the state core and the fold agree;
        property-tested).
        """
        from repro.discovery.state import save_state, state_for_algorithm

        timer = StageTimer()
        state = state_for_algorithm(
            "jxplain", self.config, enrich=self.enrich
        )
        reports = []
        with timer.stage("enrich-absorb"):
            if self.ingest == "fused":
                from repro.io.fastpath import absorb_jsonlines_typed

                for new_file in new_files:
                    reports.append(
                        absorb_jsonlines_typed(
                            state, new_file, on_bad_record=policy
                        )
                    )
            else:
                from repro.io.jsonlines import ingest_jsonlines

                for new_file in new_files:
                    records, report = ingest_jsonlines(
                        new_file, on_bad_record=policy
                    )
                    reports.append(report)
                    for record in records:
                        state.absorb(record)
        with timer.stage("enrich-synthesis"):
            (
                schema,
                decisions,
                object_partitioners,
                array_partitioners,
            ) = state.synthesize_result()
        if checkpoint is not None:
            save_state(state, checkpoint)
        return PipelineResult(
            schema=schema,
            decisions=decisions,
            object_partitioners=object_partitioners,
            array_partitioners=array_partitioners,
            timer=timer,
            record_count=state.record_count,
            ingest_report=(
                reports[0] if len(reports) == 1 else (reports or None)
            ),
            state=state,
        )

    # -- the sharded ingestion path --------------------------------------------

    @staticmethod
    def _shard_checkpoint_dir(checkpoint, new_file):
        """Per-file shard checkpoint directory under the main
        checkpoint, or ``None`` when no checkpoint was requested.

        Keyed by a digest of the file path (the shard manifest
        validates the full parameter set, so the name only has to be
        distinct per file).
        """
        if checkpoint is None:
            return None
        import hashlib
        import os

        digest = hashlib.sha256(
            os.fspath(new_file).encode("utf-8")
        ).hexdigest()[:16]
        return os.path.join(f"{os.fspath(checkpoint)}.shards", digest)

    def _run_sharded(self, new_files, policy, timer, checkpoint, enrich=None):
        """Sharded discovery of ``new_files``: merged state + reports.

        One :class:`~repro.engine.sharding.ShardCoordinator` run per
        file (file order = merge order, so the merged state's bytes
        equal a serial scan of the concatenated input), sharing
        ``timer``.  With a checkpoint, each file gets a per-shard
        checkpoint directory so a killed run resumes from completed
        shards; the directories used are returned for cleanup once the
        merged checkpoint is durable.
        """
        from repro.engine.sharding import ShardCoordinator

        shards = None if self.shards == "auto" else self.shards
        fanin = {} if self.merge_fanin is None else {
            "merge_fanin": self.merge_fanin
        }
        state = None
        reports = []
        used_dirs = []
        for new_file in new_files:
            shard_dir = self._shard_checkpoint_dir(checkpoint, new_file)
            coordinator = ShardCoordinator(
                "jxplain",
                self.config,
                executor=self.executor,
                shards=shards,
                on_bad_record=policy,
                ingest=self.ingest,
                checkpoint_dir=shard_dir,
                enrich=enrich,
                **fanin,
            )
            run = coordinator.run(new_file, timer=timer)
            state = (
                run.state if state is None else state.merge(run.state)
            )
            reports.append(run.report)
            if shard_dir is not None:
                used_dirs.append(shard_dir)
        return state, reports, used_dirs

    @staticmethod
    def _cleanup_shard_dirs(shard_dirs) -> None:
        """Drop per-shard checkpoints once the merged state is saved
        (the shard files only matter while a run can still be
        killed)."""
        import os
        import shutil

        for shard_dir in shard_dirs:
            shutil.rmtree(shard_dir, ignore_errors=True)
        for shard_dir in shard_dirs:
            try:
                os.rmdir(os.path.dirname(shard_dir))
            except OSError:
                pass

    @staticmethod
    def _ensure_type(record: TUnion[JsonType, JsonValue]) -> JsonType:
        if isinstance(record, JsonType):
            return record
        return type_of(record)

    # -- Discoverer interface ------------------------------------------------------

    def merge_types(self, types: Iterable[JsonType]) -> Schema:
        return self.run(LocalDataset.from_records(
            list(types), self.num_partitions, executor=self.executor
        )).schema

    def discover(self, values: Iterable[JsonValue]) -> Schema:
        return self.run(values).schema


def _tree_record_count(tree: StatTree) -> int:
    """Root record count, recovered from pass ①'s statistics so the
    pipeline does not need an extra counting pass."""
    count = sum(tree.primitive_kinds.values())
    if tree.object_evidence is not None:
        count += tree.object_evidence.record_count
    if tree.array_evidence is not None:
        count += tree.array_evidence.record_count
    return count


def _stat_add(tree: StatTree, tau: JsonType) -> StatTree:
    tree.add(tau)
    return tree


def _shape_add(
    shapes: TupleShapes,
    tau: JsonType,
    decisions: CollectionDecisions,
    extractor: FeatureExtractor,
) -> TupleShapes:
    shapes.add(tau, decisions, extractor)
    return shapes


def _fold_add(node: FoldNode, tau: JsonType, folder: DecidedFolder) -> FoldNode:
    return folder.combine(node, folder.lift(tau))


def _bag_add(bag: CountedBag, tau: JsonType) -> CountedBag:
    bag.add(tau)
    return bag


def _bag_merge(left: CountedBag, right: CountedBag) -> CountedBag:
    return left.merge(right)


# The partitioned pipeline is a first-class discoverer: registering it
# here lets the CLI's plain path (and any registry sweep) instantiate
# it by name and tune ``num_partitions`` (None = adaptive).
register_discoverer(JxplainPipeline.name, JxplainPipeline)
