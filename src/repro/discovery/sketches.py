"""Per-path value-domain enrichment monoids (JSONoid-style sketches).

Structural discovery deliberately forgets values: the fused tokenizer
collapses every record to an interned :class:`JsonType`.  This module
adds the orthogonal *value domain* layer — per-path sketches in the
style of JSONoid that satisfy the same commutative-monoid contract as
:class:`~repro.discovery.state.DiscoveryState` itself
(``empty``/``absorb``/``merge``/``to_bytes``/``from_bytes``), so they
ride through counted-bag absorption, sharded tree-merge, and
checkpoint/resume without any new distribution machinery:

* :class:`MinMaxSketch` — exact order statistics of the numbers at a
  path (``minimum``/``maximum`` annotations).
* :class:`BloomMembershipSketch` — fixed-width Bloom filter over the
  scalar values at a path (``x-repro-bloom``).
* :class:`HLLCardinalitySketch` — HyperLogLog distinct-count estimate
  (``x-repro-cardinality``).
* :class:`StringFormatSketch` — counters for RFC-ish string formats
  (``format: date-time`` etc.; a format is reported only when *every*
  string at the path matched it).

:class:`EnrichmentState` aggregates one :class:`PathSketches` bundle
per path plus, when tagged-union extraction is enabled, a
:class:`DiscriminantAccumulator` collecting root-level key →
scalar-value → record-shape evidence for
:mod:`repro.discovery.tagged_unions`.

Design invariants (the law suite in
``tests/discovery/test_sketch_laws.py`` pins all of them):

* Every ``merge`` is associative and commutative with ``empty`` as the
  identity, and equal states encode to equal bytes — equality *is*
  byte equality, exactly as for ``DiscoveryState``.
* All accumulators are order-canonical: min/max break ``1 == 1.0``
  ties toward the int, NaN is skipped (it has no order), and ints
  outside the codec's svarint range collapse to float at absorb time.
* Bounded accumulators saturate to an absorbing element (the
  discriminant value table past ``union_value_cap``), which keeps the
  merge a monoid: saturation of any part forces saturation of the
  whole, regardless of grouping.

Wire formats live in :mod:`repro.discovery.codec` (this module must
stay importable without it — codec imports us for the class
definitions); the module-level ``dumps_*``/``loads_*`` pairs below are
lazy delegates so callers get the public API here.
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.jsontypes.paths import Path, ROOT, STAR

__all__ = [
    "BloomMembershipSketch",
    "DEFAULT_BLOOM_BITS",
    "DEFAULT_BLOOM_HASHES",
    "DEFAULT_HLL_PRECISION",
    "DiscriminantAccumulator",
    "ENRICH_FEATURES",
    "EnrichmentOptions",
    "EnrichmentState",
    "HLLCardinalitySketch",
    "KeyEvidence",
    "MinMaxSketch",
    "PathSketches",
    "SKETCH_CLASSES",
    "StringFormatSketch",
    "dumps_enrichment",
    "dumps_sketch",
    "loads_enrichment",
    "loads_sketch",
    "parse_enrich_spec",
    "record_shape",
    "scalar_fingerprint",
    "scalar_from_key",
    "scalar_key",
]

#: Default Bloom filter width in bits (128 bytes on the wire).
DEFAULT_BLOOM_BITS = 1024

#: Default number of Bloom hash functions.
DEFAULT_BLOOM_HASHES = 4

#: Default HyperLogLog precision (2**8 = 256 one-byte registers).
DEFAULT_HLL_PRECISION = 8

#: Largest |int| the codec's svarint can carry; bigger ints collapse
#: to float at absorb time so the sketch always round-trips.
_SVARINT_MAX = 2**62 - 1

#: Root-level ints with |v| above this are not discriminant
#: candidates (they are ids, not tags).
MAX_DISCRIMINANT_INT = 2**31

Scalar = Union[None, bool, int, float, str]


def scalar_fingerprint(value: Scalar) -> bytes:
    """Canonical bytes of a JSON scalar for Bloom/HLL hashing.

    Booleans are tagged apart from numbers, but ``1`` and ``1.0``
    fingerprint identically (int-valued floats collapse to the int
    form) so membership matches Python/JSON equality.
    """
    if value is None:
        return b"z"
    if value is True:
        return b"t"
    if value is False:
        return b"f"
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, float):
        if value != value:
            return b"n:nan"
        if value in (math.inf, -math.inf):
            return b"n:" + repr(value).encode("ascii")
        if value.is_integer():
            return b"n:" + repr(int(value)).encode("ascii")
        return b"n:" + repr(value).encode("ascii")
    return b"n:" + repr(int(value)).encode("ascii")


def _min_key(value):
    # Ties between an int and an equal float resolve to the int.
    return (value, 1 if isinstance(value, float) else 0)


def _max_key(value):
    return (value, 0 if isinstance(value, float) else 1)


class Sketch:
    """Base class: the monoid + codec contract shared by all sketches.

    Subclasses set :attr:`name` (the registry key used by the codec's
    tag table) and implement ``absorb``/``merge``/``_state_key``.
    """

    __slots__ = ()

    #: Registry name; also the codec tag-table key.
    name = ""

    @classmethod
    def empty(cls) -> "Sketch":
        return cls()

    def absorb(self, value) -> None:
        raise NotImplementedError

    def merge(self, other: "Sketch") -> "Sketch":
        raise NotImplementedError

    def _state_key(self):
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._state_key() == other._state_key()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # mutable accumulator

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._state_key()!r})"

    def to_bytes(self) -> bytes:
        from repro.discovery import codec

        return codec.dumps_sketch(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Sketch":
        from repro.discovery import codec

        sketch = codec.loads_sketch(data)
        if cls is not Sketch and type(sketch) is not cls:
            raise TypeError(
                f"expected a {cls.__name__}, decoded "
                f"{type(sketch).__name__}"
            )
        return sketch


class MinMaxSketch(Sketch):
    """Exact count/min/max of the numbers observed at a path.

    NaN is skipped (it has no order); ints beyond the svarint range
    collapse to float; ``1 == 1.0`` ties canonically prefer the int so
    absorb order never changes the stored object.
    """

    __slots__ = ("count", "minimum", "maximum")

    name = "minmax"

    def __init__(self) -> None:
        self.count = 0
        self.minimum: Optional[Union[int, float]] = None
        self.maximum: Optional[Union[int, float]] = None

    def absorb(self, value) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        if isinstance(value, float):
            if value != value:
                return
            if value == 0.0:
                # -0.0 == 0.0 but encodes with its sign bit; without a
                # canonical zero, min()/max() ties keep whichever sign
                # arrived first and merge stops being byte-commutative.
                value = 0.0
        elif not -_SVARINT_MAX <= value <= _SVARINT_MAX:
            value = float(value)
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            if _min_key(value) < _min_key(self.minimum):
                self.minimum = value
            if _max_key(value) > _max_key(self.maximum):
                self.maximum = value
        self.count += 1

    def merge(self, other: "MinMaxSketch") -> "MinMaxSketch":
        merged = MinMaxSketch()
        merged.count = self.count + other.count
        if self.count == 0:
            merged.minimum = other.minimum
            merged.maximum = other.maximum
        elif other.count == 0:
            merged.minimum = self.minimum
            merged.maximum = self.maximum
        else:
            merged.minimum = min(
                self.minimum, other.minimum, key=_min_key
            )
            merged.maximum = max(
                self.maximum, other.maximum, key=_max_key
            )
        return merged

    def _state_key(self):
        return (
            self.count,
            self.minimum,
            isinstance(self.minimum, float),
            self.maximum,
            isinstance(self.maximum, float),
        )


class BloomMembershipSketch(Sketch):
    """Fixed-width Bloom filter over scalar fingerprints at a path.

    ``bits`` is a Python int used as a bitset; merge is bitwise OR
    (idempotent, so the filter is a join-semilattice and trivially a
    commutative monoid).  ``count`` tracks absorbed values — an upper
    bound on distinct insertions, used for the false-positive estimate.
    """

    __slots__ = ("size", "hashes", "bits", "count")

    name = "bloom"

    def __init__(
        self,
        size: int = DEFAULT_BLOOM_BITS,
        hashes: int = DEFAULT_BLOOM_HASHES,
    ) -> None:
        if size < 8 or size % 8:
            raise ValueError(
                f"bloom size must be a positive multiple of 8, got {size}"
            )
        if hashes < 1:
            raise ValueError(f"bloom hashes must be >= 1, got {hashes}")
        self.size = size
        self.hashes = hashes
        self.bits = 0
        self.count = 0

    def _indexes(self, fingerprint: bytes) -> List[int]:
        digest = hashlib.blake2b(fingerprint, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        # Forcing h2 odd keeps the double-hash probe sequence full
        # when ``size`` is a power of two.
        h2 = int.from_bytes(digest[8:], "little") | 1
        return [(h1 + i * h2) % self.size for i in range(self.hashes)]

    def add_fingerprint(self, fingerprint: bytes) -> None:
        for index in self._indexes(fingerprint):
            self.bits |= 1 << index
        self.count += 1

    def absorb(self, value) -> None:
        self.add_fingerprint(scalar_fingerprint(value))

    def might_contain(self, value) -> bool:
        fingerprint = scalar_fingerprint(value)
        return all(
            self.bits >> index & 1 for index in self._indexes(fingerprint)
        )

    def false_positive_rate(self) -> float:
        """Standard ``(1 - e^{-kn/m})^k`` bound with n = ``count``.

        ``count`` counts absorptions, not distinct values, so this is
        an upper bound on the true rate.
        """
        if self.count == 0:
            return 0.0
        return (
            1.0 - math.exp(-self.hashes * self.count / self.size)
        ) ** self.hashes

    def merge(self, other: "BloomMembershipSketch") -> "BloomMembershipSketch":
        if (self.size, self.hashes) != (other.size, other.hashes):
            raise ValueError(
                "cannot merge bloom sketches with different geometry: "
                f"({self.size}, {self.hashes}) vs "
                f"({other.size}, {other.hashes})"
            )
        merged = BloomMembershipSketch(self.size, self.hashes)
        merged.bits = self.bits | other.bits
        merged.count = self.count + other.count
        return merged

    def _state_key(self):
        return (self.size, self.hashes, self.bits, self.count)


def _hll_alpha(registers: int) -> float:
    if registers == 16:
        return 0.673
    if registers == 32:
        return 0.697
    if registers == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / registers)


class HLLCardinalitySketch(Sketch):
    """HyperLogLog distinct-count estimator over scalar fingerprints.

    ``2**precision`` one-byte registers; merge takes the pointwise
    register maximum (a join-semilattice, hence order-free), and the
    estimate applies the standard small-range linear-counting
    correction.
    """

    __slots__ = ("precision", "registers", "count")

    name = "hll"

    def __init__(self, precision: int = DEFAULT_HLL_PRECISION) -> None:
        if not 4 <= precision <= 16:
            raise ValueError(
                f"hll precision must be in [4, 16], got {precision}"
            )
        self.precision = precision
        self.registers = bytearray(1 << precision)
        self.count = 0

    def add_fingerprint(self, fingerprint: bytes) -> None:
        raw = hashlib.blake2b(fingerprint, digest_size=8).digest()
        value = int.from_bytes(raw, "big")
        index = value >> (64 - self.precision)
        rest = value & ((1 << (64 - self.precision)) - 1)
        rank = (64 - self.precision) - rest.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank
        self.count += 1

    def absorb(self, value) -> None:
        self.add_fingerprint(scalar_fingerprint(value))

    def estimate(self) -> float:
        registers = self.registers
        m = len(registers)
        raw = (
            _hll_alpha(m)
            * m
            * m
            / sum(2.0 ** -rank for rank in registers)
        )
        if raw <= 2.5 * m:
            zeros = registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        return raw

    def merge(self, other: "HLLCardinalitySketch") -> "HLLCardinalitySketch":
        if self.precision != other.precision:
            raise ValueError(
                "cannot merge hll sketches with different precision: "
                f"{self.precision} vs {other.precision}"
            )
        merged = HLLCardinalitySketch(self.precision)
        merged.registers = bytearray(
            max(a, b) for a, b in zip(self.registers, other.registers)
        )
        merged.count = self.count + other.count
        return merged

    def _state_key(self):
        return (self.precision, bytes(self.registers), self.count)


#: Detected string formats, in fixed priority order (``dominant``
#: returns the first one that matched *every* string).  date-time must
#: precede date: every date-time prefix-matches the date pattern's
#: fullmatch cousin but not vice versa.
FORMAT_PATTERNS: Tuple[Tuple[str, "re.Pattern"], ...] = (
    (
        "date-time",
        re.compile(
            r"\d{4}-\d{2}-\d{2}[Tt ]\d{2}:\d{2}:\d{2}"
            r"(?:\.\d+)?(?:[Zz]|[+-]\d{2}:\d{2})?\Z"
        ),
    ),
    ("date", re.compile(r"\d{4}-\d{2}-\d{2}\Z")),
    ("time", re.compile(r"\d{2}:\d{2}:\d{2}(?:\.\d+)?\Z")),
    (
        "uuid",
        re.compile(
            r"[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-"
            r"[0-9a-fA-F]{4}-[0-9a-fA-F]{12}\Z"
        ),
    ),
    ("email", re.compile(r"[^@\s]+@[^@\s]+\.[^@\s]+\Z")),
    ("uri", re.compile(r"[A-Za-z][A-Za-z0-9+.-]*://\S+\Z")),
)


class StringFormatSketch(Sketch):
    """Per-format match counters for the strings observed at a path.

    Each format counts independently (a string can match several), so
    the merge is plain counter addition.  :meth:`dominant` reports the
    first format in :data:`FORMAT_PATTERNS` order that matched every
    observed string — the only situation where emitting ``format`` in
    the schema is sound.
    """

    __slots__ = ("total", "counts")

    name = "format"

    def __init__(self) -> None:
        self.total = 0
        self.counts: Dict[str, int] = {}

    def absorb(self, value) -> None:
        if not isinstance(value, str):
            return
        self.total += 1
        for format_name, pattern in FORMAT_PATTERNS:
            if pattern.match(value):
                self.counts[format_name] = self.counts.get(format_name, 0) + 1

    def dominant(self) -> Optional[str]:
        if self.total == 0:
            return None
        for format_name, _ in FORMAT_PATTERNS:
            if self.counts.get(format_name, 0) == self.total:
                return format_name
        return None

    def merge(self, other: "StringFormatSketch") -> "StringFormatSketch":
        merged = StringFormatSketch()
        merged.total = self.total + other.total
        for source in (self.counts, other.counts):
            for format_name, count in source.items():
                merged.counts[format_name] = (
                    merged.counts.get(format_name, 0) + count
                )
        return merged

    def _state_key(self):
        return (
            self.total,
            tuple(sorted(
                item for item in self.counts.items() if item[1]
            )),
        )


#: Registry: codec tag order is the index in this tuple.
SKETCH_CLASSES: Tuple[type, ...] = (
    MinMaxSketch,
    BloomMembershipSketch,
    HLLCardinalitySketch,
    StringFormatSketch,
)


#: Feature names accepted by ``--enrich``.
ENRICH_FEATURES = ("sketches", "unions")


@dataclass(frozen=True)
class EnrichmentOptions:
    """What to collect and with which sketch geometry.

    Frozen and hashable so it travels inside pickled
    :class:`~repro.engine.sharding.ShardTask` objects and compares by
    value across checkpoint/resume.
    """

    sketches: bool = True
    unions: bool = False
    bloom_bits: int = DEFAULT_BLOOM_BITS
    bloom_hashes: int = DEFAULT_BLOOM_HASHES
    hll_precision: int = DEFAULT_HLL_PRECISION
    #: Distinct values tracked per candidate discriminant key before
    #: its evidence saturates (saturation disqualifies the key).
    union_value_cap: int = 32
    #: Longest string admissible as a discriminant value.
    union_string_cap: int = 64

    def validate(self) -> "EnrichmentOptions":
        if not (self.sketches or self.unions):
            raise ValueError(
                "enrichment must enable at least one of "
                f"{ENRICH_FEATURES}"
            )
        if self.bloom_bits < 8 or self.bloom_bits % 8:
            raise ValueError(
                "bloom_bits must be a positive multiple of 8, got "
                f"{self.bloom_bits}"
            )
        if self.bloom_hashes < 1:
            raise ValueError(
                f"bloom_hashes must be >= 1, got {self.bloom_hashes}"
            )
        if not 4 <= self.hll_precision <= 16:
            raise ValueError(
                f"hll_precision must be in [4, 16], got "
                f"{self.hll_precision}"
            )
        if self.union_value_cap < 2:
            raise ValueError(
                f"union_value_cap must be >= 2, got {self.union_value_cap}"
            )
        if self.union_string_cap < 1:
            raise ValueError(
                f"union_string_cap must be >= 1, got "
                f"{self.union_string_cap}"
            )
        return self

    def spec(self) -> str:
        """Canonical ``--enrich`` spelling of the enabled features."""
        enabled = [
            name
            for name, on in (
                ("sketches", self.sketches),
                ("unions", self.unions),
            )
            if on
        ]
        return ",".join(enabled)


def parse_enrich_spec(
    spec: Union[None, str, EnrichmentOptions],
) -> Optional[EnrichmentOptions]:
    """Parse a ``--enrich`` spec like ``"sketches,unions"``.

    ``None`` means no enrichment; an :class:`EnrichmentOptions` passes
    through (validated).
    """
    if spec is None:
        return None
    if isinstance(spec, EnrichmentOptions):
        return spec.validate()
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    if not tokens:
        raise ValueError(
            f"empty --enrich spec; expected features from {ENRICH_FEATURES}"
        )
    unknown = sorted(set(tokens) - set(ENRICH_FEATURES))
    if unknown:
        raise ValueError(
            f"unknown --enrich feature(s) {unknown}; "
            f"known: {ENRICH_FEATURES}"
        )
    return EnrichmentOptions(
        sketches="sketches" in tokens,
        unions="unions" in tokens,
    ).validate()


class PathSketches:
    """The four-sketch bundle accumulated for one path."""

    __slots__ = ("numbers", "strings", "members", "cardinality")

    def __init__(self, options: EnrichmentOptions) -> None:
        self.numbers = MinMaxSketch()
        self.strings = StringFormatSketch()
        self.members = BloomMembershipSketch(
            options.bloom_bits, options.bloom_hashes
        )
        self.cardinality = HLLCardinalitySketch(options.hll_precision)

    @classmethod
    def from_sketches(
        cls,
        numbers: MinMaxSketch,
        strings: StringFormatSketch,
        members: BloomMembershipSketch,
        cardinality: HLLCardinalitySketch,
    ) -> "PathSketches":
        bundle = cls.__new__(cls)
        bundle.numbers = numbers
        bundle.strings = strings
        bundle.members = members
        bundle.cardinality = cardinality
        return bundle

    def absorb(self, value: Scalar) -> None:
        fingerprint = scalar_fingerprint(value)
        self.members.add_fingerprint(fingerprint)
        self.cardinality.add_fingerprint(fingerprint)
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            self.numbers.absorb(value)
        elif isinstance(value, str):
            self.strings.absorb(value)

    def merge(self, other: "PathSketches") -> "PathSketches":
        return PathSketches.from_sketches(
            self.numbers.merge(other.numbers),
            self.strings.merge(other.strings),
            self.members.merge(other.members),
            self.cardinality.merge(other.cardinality),
        )

    def sketches(self) -> Tuple[Sketch, ...]:
        return (self.numbers, self.strings, self.members, self.cardinality)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PathSketches):
            return NotImplemented
        return self.sketches() == other.sketches()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"PathSketches(numbers={self.numbers!r}, "
            f"strings={self.strings!r}, members={self.members!r}, "
            f"cardinality={self.cardinality!r})"
        )


#: Sort tag for scalar discriminant-value keys; the tuple itself is
#: the dict key (``True == 1`` would collide as plain dict keys).
def scalar_key(value: Scalar) -> Tuple[str, Union[bool, int, str]]:
    if value is None:
        return ("z", False)
    if value is True:
        return ("b", True)
    if value is False:
        return ("b", False)
    if isinstance(value, str):
        return ("s", value)
    return ("i", value)


def scalar_from_key(key: Tuple[str, Union[bool, int, str]]) -> Scalar:
    """Inverse of the tagged scalar key used in discriminant tables."""
    tag, payload = key
    if tag == "z":
        return None
    return payload


def record_shape(record: dict) -> Tuple[str, ...]:
    """Depth-2 key-path fingerprint of a record's shape.

    Each top-level key, plus ``key.child`` for dict-valued fields —
    deep enough to tell tagged variants apart when the tag predicts a
    nested payload's structure (the github-events pattern), shallow
    enough to stay a small sorted tuple.  Must mirror
    :func:`repro.discovery.tagged_unions.type_shape` exactly: branch
    membership joins this evidence against the type bag through it.
    """
    parts = []
    for key, value in record.items():
        parts.append(key)
        if isinstance(value, dict):
            for child in value:
                parts.append(key + "." + child)
    return tuple(sorted(set(parts)))


def _admissible_discriminant(value, string_cap: int) -> bool:
    """Scalars that can serve as a tag: bool/None, small ints, short
    strings.  Floats are excluded — ``1 == 1.0`` canonicalization
    would make the reported tag value ambiguous."""
    if value is None or isinstance(value, bool):
        return True
    if isinstance(value, int):
        return -MAX_DISCRIMINANT_INT <= value <= MAX_DISCRIMINANT_INT
    if isinstance(value, str):
        return len(value) <= string_cap
    return False


class KeyEvidence:
    """Evidence for one candidate discriminant key.

    ``values`` maps the key's tagged scalar value to a counter over
    the *shapes* (depth-2 key-path tuples; :func:`record_shape`) of
    the records carrying that value.  Past ``value_cap`` distinct values the table
    saturates: ``values`` is cleared and the key is disqualified.
    Saturation is absorbing, which keeps the merge associative — the
    union of value sets decides saturation no matter how absorptions
    are grouped.
    """

    __slots__ = ("present", "saturated", "values")

    def __init__(self) -> None:
        self.present = 0
        self.saturated = False
        self.values: Dict[
            Tuple[str, Union[bool, int, str]],
            Dict[Tuple[str, ...], int],
        ] = {}

    def observe(self, value: Scalar, shape: Tuple[str, ...], cap: int) -> None:
        self.present += 1
        if self.saturated:
            return
        key = scalar_key(value)
        shapes = self.values.get(key)
        if shapes is None:
            if len(self.values) >= cap:
                self.saturated = True
                self.values = {}
                return
            shapes = self.values[key] = {}
        shapes[shape] = shapes.get(shape, 0) + 1

    def merge(self, other: "KeyEvidence", cap: int) -> "KeyEvidence":
        merged = KeyEvidence()
        merged.present = self.present + other.present
        if self.saturated or other.saturated:
            merged.saturated = True
            return merged
        for source in (self.values, other.values):
            for key, shapes in source.items():
                target = merged.values.setdefault(key, {})
                for shape, count in shapes.items():
                    target[shape] = target.get(shape, 0) + count
        if len(merged.values) > cap:
            merged.saturated = True
            merged.values = {}
        return merged

    def _state_key(self):
        return (
            self.present,
            self.saturated,
            tuple(sorted(
                (key, tuple(sorted(shapes.items())))
                for key, shapes in self.values.items()
            )),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, KeyEvidence):
            return NotImplemented
        return self._state_key() == other._state_key()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"KeyEvidence(present={self.present}, "
            f"saturated={self.saturated}, values={len(self.values)})"
        )


class DiscriminantAccumulator:
    """Root-level key → value → shape evidence for tagged unions."""

    __slots__ = ("value_cap", "string_cap", "records", "keys")

    def __init__(self, value_cap: int, string_cap: int) -> None:
        self.value_cap = value_cap
        self.string_cap = string_cap
        self.records = 0
        self.keys: Dict[str, KeyEvidence] = {}

    def observe(self, record: dict) -> None:
        self.records += 1
        shape = record_shape(record)
        for key, value in record.items():
            if not _admissible_discriminant(value, self.string_cap):
                continue
            evidence = self.keys.get(key)
            if evidence is None:
                evidence = self.keys[key] = KeyEvidence()
            evidence.observe(value, shape, self.value_cap)

    def merge(self, other: "DiscriminantAccumulator") -> "DiscriminantAccumulator":
        if (self.value_cap, self.string_cap) != (
            other.value_cap,
            other.string_cap,
        ):
            raise ValueError(
                "cannot merge discriminant accumulators with different "
                f"caps: ({self.value_cap}, {self.string_cap}) vs "
                f"({other.value_cap}, {other.string_cap})"
            )
        merged = DiscriminantAccumulator(self.value_cap, self.string_cap)
        merged.records = self.records + other.records
        for name in self.keys.keys() | other.keys.keys():
            mine = self.keys.get(name)
            theirs = other.keys.get(name)
            if mine is None:
                merged.keys[name] = theirs.merge(
                    KeyEvidence(), self.value_cap
                )
            elif theirs is None:
                merged.keys[name] = mine.merge(
                    KeyEvidence(), self.value_cap
                )
            else:
                merged.keys[name] = mine.merge(theirs, self.value_cap)
        return merged

    def _state_key(self):
        return (
            self.value_cap,
            self.string_cap,
            self.records,
            tuple(sorted(
                (name, evidence._state_key())
                for name, evidence in self.keys.items()
            )),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, DiscriminantAccumulator):
            return NotImplemented
        return self._state_key() == other._state_key()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"DiscriminantAccumulator(records={self.records}, "
            f"keys={len(self.keys)})"
        )


class EnrichmentState:
    """All value-domain evidence for one discovery run.

    The monoid mirror of ``DiscoveryState``: ``observe`` plays the
    role of ``absorb`` (it takes the *value*, which structural absorb
    deliberately discards), ``merge`` requires equal options, and
    equality is byte equality through the codec.
    """

    __slots__ = ("options", "record_count", "paths", "discriminants")

    def __init__(self, options: Optional[EnrichmentOptions] = None) -> None:
        self.options = (options or EnrichmentOptions()).validate()
        self.record_count = 0
        self.paths: Dict[Path, PathSketches] = {}
        self.discriminants = DiscriminantAccumulator(
            self.options.union_value_cap, self.options.union_string_cap
        )

    @classmethod
    def empty(
        cls, options: Optional[EnrichmentOptions] = None
    ) -> "EnrichmentState":
        return cls(options)

    def empty_like(self) -> "EnrichmentState":
        return EnrichmentState(self.options)

    def observe(self, value) -> None:
        """Absorb one record's values (the record itself, not its type)."""
        self.record_count += 1
        if self.options.unions and isinstance(value, dict):
            self.discriminants.observe(value)
        if not self.options.sketches:
            return
        paths = self.paths
        options = self.options
        stack: List[Tuple[object, Path]] = [(value, ROOT)]
        while stack:
            node, path = stack.pop()
            if isinstance(node, dict):
                for key, child in node.items():
                    stack.append((child, path + (key,)))
            elif isinstance(node, list):
                child_path = path + (STAR,)
                for child in node:
                    stack.append((child, child_path))
            else:
                bundle = paths.get(path)
                if bundle is None:
                    bundle = paths[path] = PathSketches(options)
                bundle.absorb(node)

    def merge(self, other: "EnrichmentState") -> "EnrichmentState":
        if self.options != other.options:
            raise ValueError(
                "cannot merge enrichment states with different options: "
                f"{self.options} vs {other.options}"
            )
        merged = EnrichmentState(self.options)
        merged.record_count = self.record_count + other.record_count
        empty_bundle = None
        for path in self.paths.keys() | other.paths.keys():
            mine = self.paths.get(path)
            theirs = other.paths.get(path)
            if mine is None or theirs is None:
                # Merge with an empty bundle so the result never
                # aliases either side's mutable sketches.
                if empty_bundle is None:
                    empty_bundle = PathSketches(self.options)
                present = mine if mine is not None else theirs
                merged.paths[path] = present.merge(empty_bundle)
            else:
                merged.paths[path] = mine.merge(theirs)
        merged.discriminants = self.discriminants.merge(other.discriminants)
        return merged

    def to_bytes(self) -> bytes:
        from repro.discovery import codec

        return codec.dumps_enrichment(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EnrichmentState":
        from repro.discovery import codec

        return codec.loads_enrichment(data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EnrichmentState):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"EnrichmentState(options={self.options!r}, "
            f"record_count={self.record_count}, paths={len(self.paths)})"
        )


def dumps_sketch(sketch: Sketch) -> bytes:
    """Serialize one sketch (lazy delegate to the codec)."""
    from repro.discovery import codec

    return codec.dumps_sketch(sketch)


def loads_sketch(data: bytes) -> Sketch:
    """Deserialize one sketch (lazy delegate to the codec)."""
    from repro.discovery import codec

    return codec.loads_sketch(data)


def dumps_enrichment(state: EnrichmentState) -> bytes:
    """Serialize an :class:`EnrichmentState` (lazy codec delegate)."""
    from repro.discovery import codec

    return codec.dumps_enrichment(state)


def loads_enrichment(data: bytes) -> EnrichmentState:
    """Deserialize an :class:`EnrichmentState` (lazy codec delegate)."""
    from repro.discovery import codec

    return codec.loads_enrichment(data)
