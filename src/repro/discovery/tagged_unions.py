"""Tagged-union extraction from discriminant-key evidence.

"Extracting JSON Schemas with Tagged Unions" (PAPERS.md) observes that
heterogeneous record collections are often *tagged*: one low-entropy
key (``"type"``, ``"kind"``, ``"event"``) whose value predicts the
shape of the rest of the record.  Structural clustering recovers the
shapes but not the tag; this module recovers the tag from the
discriminant evidence that :class:`~repro.discovery.sketches
.EnrichmentState` accumulates (root-level key → scalar value →
record-shape counters) and synthesizes ``oneOf``/``if-then`` tagged
unions as an alternative entity representation, comparable
head-to-head with jxplain's Bimax/GreedyMerge path.

A key qualifies as a discriminant when, over the absorbed records:

* **coverage** — it is present (with an admissible scalar value) in at
  least ``min_coverage`` of the records;
* **cardinality** — it takes between 2 and ``max_branches`` distinct
  values, and its evidence never saturated (a saturated table means
  the key behaved like an id, not a tag);
* **entropy** — the Shannon entropy of its value distribution is at
  most ``max_entropy`` bits (a tag concentrates on a few values);
* **predictiveness** — knowing the value pins down the record's
  structure.  Each value's *signature* is the intersection of the
  depth-2 key-path shapes observed with it — optional fields and
  map-style random keys (``signatures.<server>``) drop out of the
  intersection, so the signature is the value's *required* structure.
  Predictiveness is the count-weighted fraction of records whose
  value's signature is unique among the key's values; it must reach
  ``min_predictiveness``, which also forces at least two structurally
  distinct branches.

The best qualifying key (by predictiveness, then coverage, then lower
entropy, then name — a total, deterministic order) becomes a
:class:`TaggedUnionDecision`.  Each branch's schema is the K-reduction
of the record types whose shape co-occurred with that value, so
branches stay consistent with the structural pass over the same bag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.discovery.kreduce import merge_k
from repro.discovery.sketches import (
    EnrichmentState,
    Scalar,
    scalar_from_key,
)
from repro.jsontypes.bag import CountedBag
from repro.jsontypes.paths import Path, ROOT
from repro.jsontypes.types import ObjectType
from repro.schema.nodes import Schema

__all__ = [
    "TaggedUnionBranch",
    "TaggedUnionConfig",
    "TaggedUnionDecision",
    "dumps_tagged_unions",
    "extract_tagged_unions",
    "loads_tagged_unions",
    "tagged_union_json_schema",
]


@dataclass(frozen=True)
class TaggedUnionConfig:
    """Thresholds for discriminant-key qualification (see module doc)."""

    max_branches: int = 16
    min_coverage: float = 0.95
    max_entropy: float = 4.0
    min_predictiveness: float = 0.9
    #: Below this many absorbed records the evidence is too thin to
    #: call anything a tag.
    min_records: int = 20
    #: Every value must back its branch with at least this many records.
    min_branch_support: int = 2

    def validate(self) -> "TaggedUnionConfig":
        if self.max_branches < 2:
            raise ValueError(
                f"max_branches must be >= 2, got {self.max_branches}"
            )
        if not 0.0 < self.min_coverage <= 1.0:
            raise ValueError(
                f"min_coverage must be in (0, 1], got {self.min_coverage}"
            )
        if self.max_entropy <= 0.0:
            raise ValueError(
                f"max_entropy must be > 0, got {self.max_entropy}"
            )
        if not 0.0 < self.min_predictiveness <= 1.0:
            raise ValueError(
                "min_predictiveness must be in (0, 1], got "
                f"{self.min_predictiveness}"
            )
        if self.min_records < 1:
            raise ValueError(
                f"min_records must be >= 1, got {self.min_records}"
            )
        if self.min_branch_support < 1:
            raise ValueError(
                f"min_branch_support must be >= 1, got "
                f"{self.min_branch_support}"
            )
        return self


@dataclass
class TaggedUnionBranch:
    """One arm of a tagged union: the tag value and its schema."""

    value: Scalar
    count: int
    schema: Schema


@dataclass
class TaggedUnionDecision:
    """A detected discriminant key and its synthesized branches."""

    path: Path
    key: str
    entropy: float
    coverage: float
    predictiveness: float
    branches: List[TaggedUnionBranch] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        return dumps_tagged_unions([self])

    def __eq__(self, other) -> bool:
        if not isinstance(other, TaggedUnionDecision):
            return NotImplemented
        return other.to_bytes() == self.to_bytes()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None


@dataclass(frozen=True)
class _Candidate:
    key: str
    entropy: float
    coverage: float
    predictiveness: float

    def sort_key(self):
        # Descending predictiveness/coverage, ascending entropy, then
        # the key name: a total order, so extraction is deterministic.
        return (
            -self.predictiveness,
            -self.coverage,
            self.entropy,
            self.key,
        )


def type_shape(tau: ObjectType) -> Tuple[str, ...]:
    """Depth-2 key-path fingerprint of an :class:`ObjectType`.

    The exact mirror of :func:`repro.discovery.sketches.record_shape`
    on the type side: ``type_shape(type_of(record)) ==
    record_shape(record)`` for every dict record, which is what lets
    branch membership join discriminant evidence (collected from
    values) against the retained type bag (collected from types).
    """
    parts = []
    for key, child in tau.fields:
        parts.append(key)
        if isinstance(child, ObjectType):
            for grandchild, _ in child.fields:
                parts.append(key + "." + grandchild)
    return tuple(sorted(set(parts)))


def _value_counts(evidence) -> Dict[tuple, int]:
    return {
        tagged: sum(shapes.values())
        for tagged, shapes in evidence.values.items()
    }


def _shannon_entropy(counts, total: int) -> float:
    entropy = 0.0
    for count in counts:
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


def _signature(shapes: Dict[Tuple[str, ...], int]) -> frozenset:
    """A value's required structure: the key paths present in *every*
    shape observed with it.  Optional fields and random map keys occur
    in some shapes but not all, so they cancel out here."""
    iterator = iter(shapes)
    signature = set(next(iterator))
    for shape in iterator:
        signature.intersection_update(shape)
    return frozenset(signature)


def extract_tagged_unions(
    state,
    config: Optional[TaggedUnionConfig] = None,
) -> List[TaggedUnionDecision]:
    """Find root-level tagged unions in an enriched discovery state.

    ``state`` must carry a union-enabled enrichment sidecar *and* a
    retained type bag (L-reduce or JXPLAIN; K-reduce folds its bag
    away, so branch schemas cannot be reconstructed from it).  Returns
    at most one decision — the best-qualifying root discriminant — or
    an empty list when no key qualifies.
    """
    config = (config or TaggedUnionConfig()).validate()
    enrichment: Optional[EnrichmentState] = getattr(
        state, "enrichment", None
    )
    if enrichment is None or not enrichment.options.unions:
        raise ValueError(
            "tagged-union extraction needs a state discovered with "
            "--enrich unions (no discriminant evidence present)"
        )
    bag = getattr(state, "bag", None)
    if bag is None:
        raise ValueError(
            f"{type(state).__name__} retains no type bag; tagged-union "
            "branch schemas need l-reduce or jxplain state"
        )
    evidence = enrichment.discriminants
    if evidence.records < config.min_records:
        return []

    candidates: List[_Candidate] = []
    for key, key_evidence in evidence.keys.items():
        if key_evidence.saturated:
            continue
        counts = _value_counts(key_evidence)
        if not 2 <= len(counts) <= config.max_branches:
            continue
        present = key_evidence.present
        coverage = present / evidence.records
        if coverage < config.min_coverage:
            continue
        if min(counts.values()) < config.min_branch_support:
            continue
        entropy = _shannon_entropy(counts.values(), present)
        if entropy > config.max_entropy:
            continue
        signatures = {
            tagged: _signature(shapes)
            for tagged, shapes in key_evidence.values.items()
        }
        occurrences: Dict[frozenset, int] = {}
        for signature in signatures.values():
            occurrences[signature] = occurrences.get(signature, 0) + 1
        predicted = sum(
            counts[tagged]
            for tagged, signature in signatures.items()
            if occurrences[signature] == 1
        )
        predictiveness = predicted / present
        if predictiveness < config.min_predictiveness:
            continue
        candidates.append(
            _Candidate(key, entropy, coverage, predictiveness)
        )
    if not candidates:
        return []
    best = min(candidates, key=_Candidate.sort_key)
    key_evidence = evidence.keys[best.key]

    # Index the bag's object types by their shape once; every record
    # that fed the discriminant table contributed its type here, so
    # each observed shape resolves to at least one member type.
    by_shape: Dict[Tuple[str, ...], CountedBag] = {}
    for tau, count in bag.items():
        if isinstance(tau, ObjectType):
            shape = type_shape(tau)
            members = by_shape.get(shape)
            if members is None:
                members = by_shape[shape] = CountedBag()
            members.add(tau, count)

    branches = []
    for tagged in sorted(key_evidence.values):
        shapes = key_evidence.values[tagged]
        branch_bag = CountedBag()
        for shape in sorted(shapes):
            members = by_shape.get(shape)
            if members is not None:
                for tau, count in members.items():
                    branch_bag.add(tau, count)
        if not branch_bag:
            continue
        branches.append(
            TaggedUnionBranch(
                value=scalar_from_key(tagged),
                count=sum(shapes.values()),
                schema=merge_k(branch_bag),
            )
        )
    if len(branches) < 2:
        return []
    return [
        TaggedUnionDecision(
            path=ROOT,
            key=best.key,
            entropy=best.entropy,
            coverage=best.coverage,
            predictiveness=best.predictiveness,
            branches=branches,
        )
    ]


def tagged_union_json_schema(
    decision: TaggedUnionDecision, style: str = "one-of"
) -> dict:
    """Render a decision as a JSON Schema tagged union.

    ``one-of`` emits a ``oneOf`` whose arms pair a ``const`` guard on
    the discriminant with the branch schema; ``if-then`` chains the
    same guards as nested ``if``/``then``/``else``.
    """
    from repro.schema.jsonschema import to_json_schema

    if style not in ("one-of", "if-then"):
        raise ValueError(
            f"unknown tagged-union style {style!r}; "
            "known: one-of, if-then"
        )
    arms = []
    for branch in decision.branches:
        guard = {
            "properties": {decision.key: {"const": branch.value}},
            "required": [decision.key],
        }
        body = to_json_schema(branch.schema)
        arms.append((guard, body))
    if style == "one-of":
        return {
            "oneOf": [
                {"allOf": [guard, body]} for guard, body in arms
            ]
        }
    # if-then: fold from the last arm backwards so the first branch is
    # the outermost conditional.
    document: dict = {}
    for guard, body in reversed(arms):
        conditional = {"if": guard, "then": body}
        if document:
            conditional["else"] = document
        document = conditional
    return document


def dumps_tagged_unions(decisions: List[TaggedUnionDecision]) -> bytes:
    """Serialize decisions (lazy delegate to the codec)."""
    from repro.discovery import codec

    return codec.dumps_tagged_unions(decisions)


def loads_tagged_unions(data: bytes) -> List[TaggedUnionDecision]:
    """Deserialize decisions (lazy delegate to the codec)."""
    from repro.discovery import codec

    return codec.loads_tagged_unions(data)
