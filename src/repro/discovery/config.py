"""Configuration for JXPLAIN discovery.

The knobs here correspond one-to-one to the design choices called out
in the paper: the key-space entropy threshold (Section 5.3), whether
array-tuple / object-collection detection is enabled at all (existing
systems hard-code "arrays are collections, objects are tuples"), and
which entity strategy resolves multi-entity ambiguity (Section 6).
Table 4 disables collection detection on the Pharmaceutical dataset via
``detect_object_collections=False``; the ablation benches toggle the
rest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.heuristics.collection import DEFAULT_ENTROPY_THRESHOLD


class FeatureMode(enum.Enum):
    """What a record's *feature vector* is for entity discovery (§6.4).

    * ``KEYS`` — the record's top-level key set (the §6 problem
      statement's simplification);
    * ``PATHS`` — the set of all paths in the record, pruned beneath
      nested collections (the paper's implementation; required to
      separate entities that share an envelope but differ in nested
      payloads, like GitHub events).
    """

    KEYS = "keys"
    PATHS = "paths"


class EntityStrategy(enum.Enum):
    """How a bag of tuple-like types is split into entities (§4.3).

    * ``SINGLE`` — one entity with optional fields (K-reduction's
      choice: high recall, low precision);
    * ``EXACT`` — one entity per distinct key-set (L-reduction's
      choice: high precision, low recall);
    * ``BIMAX_NAIVE`` — Algorithm 7;
    * ``BIMAX_MERGE`` — Algorithms 7 + 8 (JXPLAIN's default);
    * ``KMEANS`` — the k-means baseline of Section 7.3 (requires a
      ``kmeans_k``; uses the Bimax-Naive cluster count when unset).
    """

    SINGLE = "single"
    EXACT = "exact"
    BIMAX_NAIVE = "bimax-naive"
    BIMAX_MERGE = "bimax-merge"
    KMEANS = "kmeans"


@dataclass(frozen=True)
class JxplainConfig:
    """All tunable behaviour of the JXPLAIN merge.

    The defaults reproduce the configuration used for "Bimax-Merge"
    rows throughout the paper's experiments.
    """

    #: Key-space / length entropy threshold of Algorithm 5.
    entropy_threshold: float = DEFAULT_ENTROPY_THRESHOLD
    #: Depth bound for the §5.2 similarity constraint; None = the
    #: paper's literal (unbounded) rule.  A small bound (e.g. 4)
    #: tolerates kind-mixing buried deep inside otherwise-homogeneous
    #: collection elements (Wikidata's datavalue.value).
    similarity_depth: Optional[int] = None
    #: When False, arrays are always collections (the K-reduce rule).
    detect_array_tuples: bool = True
    #: When False, objects are always tuples (the K-reduce rule).
    detect_object_collections: bool = True
    #: Entity-partitioning strategy for tuple-like bags.
    entity_strategy: EntityStrategy = EntityStrategy.BIMAX_MERGE
    #: Feature vectors for entity discovery: key sets or full paths.
    feature_mode: FeatureMode = FeatureMode.PATHS
    #: k for the KMEANS strategy; None = use the Bimax-Naive count.
    kmeans_k: Optional[int] = None
    #: Seed for the KMEANS strategy (the only stochastic component).
    kmeans_seed: int = 0
    #: Weight k-means seeding/centroids by record multiplicity when the
    #: caller supplies counts (False preserves the paper's distinct-set
    #: clustering).
    kmeans_weighted: bool = False
    #: Hard bound on schema/recursion depth.
    max_depth: int = 128

    def with_(self, **overrides) -> "JxplainConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def validate(self) -> None:
        if self.entropy_threshold < 0:
            raise ValueError("entropy_threshold must be >= 0")
        if self.max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if self.similarity_depth is not None and self.similarity_depth <= 0:
            raise ValueError("similarity_depth must be positive when set")
        if (
            self.entity_strategy is EntityStrategy.KMEANS
            and self.kmeans_k is not None
            and self.kmeans_k <= 0
        ):
            raise ValueError("kmeans_k must be positive when set")


@dataclass(frozen=True)
class RobustnessConfig:
    """Failure-model knobs for a discovery run (DESIGN.md §8).

    Bundles the ingestion error-channel policy with the executor
    supervision settings so a service configures fault tolerance in
    one place.  The defaults are production-shaped: skip bad input
    lines, retry failed tasks twice with exponential backoff, rescue
    serially in the driver before giving up.
    """

    #: Ingestion policy: ``raise`` / ``skip`` / ``collect``.
    on_bad_record: str = "skip"
    #: Extra attempts per task after the first.
    max_retries: int = 2
    #: Per-attempt deadline in seconds (pooled backends); None = none.
    task_timeout: Optional[float] = None
    #: First backoff delay between attempts, in seconds.
    backoff_base: float = 0.01
    #: Deterministic jitter seed for the backoff schedule.
    retry_seed: int = 0
    #: Escalation after retries: ``raise`` / ``serial`` / ``skip``.
    on_failure: str = "serial"

    def validate(self) -> None:
        from repro.io.jsonlines import INGEST_POLICIES

        if self.on_bad_record not in INGEST_POLICIES:
            known = ", ".join(INGEST_POLICIES)
            raise ValueError(
                f"unknown on_bad_record {self.on_bad_record!r}; known: {known}"
            )
        # Delegate the executor-side invariants to RetryPolicy.
        self.retry_policy()

    def retry_policy(self):
        """The :class:`~repro.engine.executor.RetryPolicy` equivalent
        of the executor-side knobs (``None`` when supervision is fully
        disabled)."""
        from repro.engine.executor import RetryPolicy

        if (
            self.max_retries == 0
            and self.task_timeout is None
            and self.on_failure == "raise"
        ):
            return None
        return RetryPolicy(
            max_retries=self.max_retries,
            task_timeout=self.task_timeout,
            backoff_base=self.backoff_base,
            seed=self.retry_seed,
            on_failure=self.on_failure,
        )

    def with_(self, **overrides) -> "RobustnessConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


#: The configuration for the paper's "Bimax-Merge" (JXPLAIN) rows.
BIMAX_MERGE_CONFIG = JxplainConfig()

#: The configuration for the paper's "Bimax-Naive" rows.
BIMAX_NAIVE_CONFIG = JxplainConfig(
    entity_strategy=EntityStrategy.BIMAX_NAIVE
)
