"""L-reduction: naive schema discovery (Section 2.1).

``merge_naive(R) = { τ1, ..., τN }`` — the schema is exactly the set of
distinct types observed.  Maximum precision (it admits nothing it has
not seen), minimum recall (it rejects everything it has not seen), and
not compact.  The paper uses it as the precision lower bound in Table 2
and the recall cautionary tale in Table 1.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.discovery.base import Discoverer, register_discoverer
from repro.errors import EmptyInputError
from repro.jsontypes.types import JsonType
from repro.schema.nodes import Schema, exact_schema, union_of


def merge_naive(types: Iterable[JsonType]) -> Schema:
    """The L-reduction: a union of the distinct exact types."""
    distinct: List[JsonType] = []
    seen = set()
    for tau in types:
        if tau not in seen:
            seen.add(tau)
            distinct.append(tau)
    if not distinct:
        raise EmptyInputError("merge_naive: no input types")
    return union_of(exact_schema(tau) for tau in distinct)


class LReduce(Discoverer):
    """The L-reduction as a :class:`Discoverer`.

    A thin synthesis layer over
    :class:`~repro.discovery.state.LReduceState`: the bag of distinct
    types in first-occurrence order *is* the schema.
    """

    name = "l-reduce"

    def merge_types(self, types: Iterable[JsonType]) -> Schema:
        from repro.discovery.state import LReduceState

        state = LReduceState.empty()
        state.absorb_types(types)
        return state.synthesize()


register_discoverer(LReduce.name, LReduce)
