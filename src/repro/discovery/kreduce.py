"""K-reduction: the state-of-the-art baseline (Section 2.1, Alg. 1–3).

K-reduction models production schema discovery (Spark's JSON data
source, Oracle's JSON Data Guide): arrays are *always* single-entity
collections, objects are *always* tuples whose variation is explained
by optional fields, and each collection holds one entity.

Its defining property is distributivity over union::

    merge_K(R1 ∪ R2) = merge_K(merge_K(R1) ∪ merge_K(R2))

so it runs as an associative fold.  :func:`merge_k` is the batch form
(Algorithm 1); :func:`merge_k_schemas` is the fold's combine operator
over already-merged schemas, used by the dataflow engine and verified
equivalent to the batch form by property tests.

K-reduction is *multiplicity-invariant*: every statistic it computes
(key intersections, key unions, maximum lengths) is a function of the
set of distinct types, so :func:`merge_k` runs on a
:class:`~repro.jsontypes.bag.TypeBag` and — with counted bags enabled,
the default — its cost is proportional to distinct structure rather
than corpus size.  The list-based helpers
:func:`merge_object_tuple` / :func:`merge_array_coll` remain as the
paper-literal Algorithms 2 and 3.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Union as TUnion

from repro.discovery.base import Discoverer, register_discoverer
from repro.engine.instrument import counters
from repro.errors import EmptyInputError, UnsupportedSchemaError
from repro.jsontypes.bag import TypeBag, as_bag
from repro.jsontypes.kinds import Kind
from repro.jsontypes.types import ArrayType, JsonType, ObjectType, PrimitiveType
from repro.schema.nodes import (
    ArrayCollection,
    NEVER,
    ObjectTuple,
    PRIMITIVE_SCHEMAS,
    PrimitiveSchema,
    Schema,
    Union,
    union,
)


def merge_object_tuple(merge, objects: List[ObjectType]) -> Schema:
    """Algorithm 3: merge object types as a single tuple entity.

    Keys present in every object are required; the rest are optional.
    Nested field types are grouped by key and merged recursively with
    ``merge``.
    """
    if not objects:
        return NEVER
    universal = set(objects[0].keys())
    groups: Dict[str, List[JsonType]] = defaultdict(list)
    for tau in objects:
        keys = set(tau.keys())
        universal &= keys
        for key, value in tau.items():
            groups[key].append(value)
    required = {
        key: merge(values)
        for key, values in groups.items()
        if key in universal
    }
    optional = {
        key: merge(values)
        for key, values in groups.items()
        if key not in universal
    }
    return ObjectTuple(required, optional)


def merge_array_coll(merge, arrays: List[ArrayType]) -> Schema:
    """Algorithm 2: merge array types as a single-entity collection."""
    if not arrays:
        return NEVER
    elements: List[JsonType] = []
    max_length = 0
    for tau in arrays:
        elements.extend(tau.elements)
        max_length = max(max_length, len(tau))
    nested = merge(elements) if elements else NEVER
    return ArrayCollection(nested, max_length_seen=max_length)


def merge_k(types: TUnion[TypeBag, Iterable[JsonType]]) -> Schema:
    """Algorithm 1: the K-reduction of a bag of types.

    Accepts any iterable of types or an existing
    :class:`~repro.jsontypes.bag.TypeBag`; with counted bags (the
    default) each distinct type is traversed once regardless of its
    multiplicity.
    """
    bag = as_bag(types)
    if not bag:
        raise EmptyInputError("merge_k: no input types")
    counters.add("kreduce.merge_total_types", bag.total)
    counters.add("kreduce.merge_distinct_types", bag.distinct_count)
    return _merge_k_bag(bag)


def _merge_k_bag(bag: TypeBag) -> Schema:
    primitive_kinds: List[Kind] = []
    kinds_seen: Set[Kind] = set()
    arrays = bag.spawn()
    objects = bag.spawn()
    for tau, count in bag.items():
        if isinstance(tau, PrimitiveType):
            if tau.kind not in kinds_seen:
                kinds_seen.add(tau.kind)
                primitive_kinds.append(tau.kind)
        elif isinstance(tau, ArrayType):
            arrays.add(tau, count)
        else:
            objects.add(tau, count)
    branches: List[Schema] = [
        PRIMITIVE_SCHEMAS[kind] for kind in primitive_kinds
    ]
    if arrays:
        branches.append(_merge_k_arrays(arrays))
    if objects:
        branches.append(_merge_k_objects(objects))
    return union(*branches)


def _merge_k_arrays(arrays: TypeBag) -> Schema:
    """Algorithm 2 over a bag: a single-entity collection."""
    elements = arrays.spawn()
    max_length = 0
    for tau, count in arrays.items():
        for value in tau.elements:
            elements.add(value, count)
        if len(tau) > max_length:
            max_length = len(tau)
    nested = _merge_k_bag(elements) if elements else NEVER
    return ArrayCollection(nested, max_length_seen=max_length)


def _merge_k_objects(objects: TypeBag) -> Schema:
    """Algorithm 3 over a bag: one tuple entity, required = ∩ keys."""
    universal = None
    groups: Dict[str, TypeBag] = {}
    for tau, count in objects.items():
        keys = set(tau.keys())
        universal = keys if universal is None else universal & keys
        for key, value in tau.items():
            group = groups.get(key)
            if group is None:
                group = groups[key] = objects.spawn()
            group.add(value, count)
    required = {
        key: _merge_k_bag(values)
        for key, values in groups.items()
        if key in universal
    }
    optional = {
        key: _merge_k_bag(values)
        for key, values in groups.items()
        if key not in universal
    }
    return ObjectTuple(required, optional)


def merge_k_schemas(first: Schema, second: Schema) -> Schema:
    """The associative combine operator over K-reduce schemas.

    Only the shapes K-reduction produces are supported: primitives,
    ``ArrayCollection``, ``ObjectTuple``, and unions thereof.  The
    operation is commutative and associative, and satisfies
    ``merge_k(R1 + R2) == fold(merge_k_schemas, map(merge_k, [R1, R2]))``.
    """
    if first is NEVER:
        return second
    if second is NEVER:
        return first
    branches_first = _k_branches(first)
    branches_second = _k_branches(second)
    primitives: List[Schema] = []
    primitives_seen: Set[Schema] = set()
    arrays: List[ArrayCollection] = []
    objects: List[ObjectTuple] = []
    for branch in branches_first + branches_second:
        if isinstance(branch, PrimitiveSchema):
            if branch not in primitives_seen:
                primitives_seen.add(branch)
                primitives.append(branch)
        elif isinstance(branch, ArrayCollection):
            arrays.append(branch)
        elif isinstance(branch, ObjectTuple):
            objects.append(branch)
        else:
            raise UnsupportedSchemaError(
                f"merge_k_schemas: unexpected branch {branch!r}"
            )
    combined: List[Schema] = list(primitives)
    if arrays:
        element = NEVER
        max_length = 0
        for node in arrays:
            element = merge_k_schemas(element, node.element)
            max_length = max(max_length, node.max_length_seen)
        combined.append(ArrayCollection(element, max_length_seen=max_length))
    if objects:
        combined.append(_combine_object_tuples(objects))
    return union(*combined)


def _k_branches(schema: Schema) -> List[Schema]:
    if isinstance(schema, Union):
        return list(schema.branches)
    return [schema]


def _combine_object_tuples(tuples: List[ObjectTuple]) -> ObjectTuple:
    """Fold object tuples: required = required-in-all, rest optional."""
    required_keys = set(tuples[0].required_keys)
    field_schemas: Dict[str, Schema] = {}
    for node in tuples:
        # A key missing from (or optional in) any input tuple is optional.
        required_keys &= node.required_keys
        for key, child in node.required + node.optional:
            existing = field_schemas.get(key, NEVER)
            field_schemas[key] = merge_k_schemas(existing, child)
    required = {
        key: child
        for key, child in field_schemas.items()
        if key in required_keys
    }
    optional = {
        key: child
        for key, child in field_schemas.items()
        if key not in required_keys
    }
    return ObjectTuple(required, optional)


class KReduce(Discoverer):
    """The K-reduction as a :class:`Discoverer`.

    A thin synthesis layer over
    :class:`~repro.discovery.state.KReduceState`: the batch ``merge_k``
    folds the whole bag into the state in one shot (the counted-bag
    fast path), and the schema is the state's synthesis.
    """

    name = "k-reduce"

    def merge_types(self, types: Iterable[JsonType]) -> Schema:
        from repro.discovery.state import KReduceState

        state = KReduceState.empty()
        state.absorb_bag(as_bag(types))
        return state.synthesize()


register_discoverer(KReduce.name, KReduce)
