"""Schema-discovery algorithms: L-reduce, K-reduce, and JXPLAIN.

* :mod:`repro.discovery.lreduce` — naive discovery (§2.1);
* :mod:`repro.discovery.kreduce` — the production-style baseline
  (§2.1, Algorithms 1–3), with its associative fold form;
* :mod:`repro.discovery.jxplain` — the recursive reference JXPLAIN
  (§4.1, Algorithm 4);
* :mod:`repro.discovery.pipeline` — the staged three-pass JXPLAIN
  (§4.2, Figure 3) over the dataflow engine;
* :mod:`repro.discovery.fold` — pass ③ as an associative fold;
* :mod:`repro.discovery.state` — the serializable, mergeable
  :class:`DiscoveryState` monoid every algorithm synthesizes from,
  with checkpoint save/load;
* :mod:`repro.discovery.codec` — the versioned binary wire format of
  states and their constituents;
* :mod:`repro.discovery.sketches` — value-domain enrichment monoids
  (min/max, Bloom, HyperLogLog, string formats) carried alongside any
  state as an :class:`EnrichmentState` sidecar;
* :mod:`repro.discovery.tagged_unions` — discriminant-key detection
  synthesizing ``if/then``/``oneOf`` tagged unions.
"""

from repro.discovery.base import (
    Discoverer,
    FunctionDiscoverer,
    discoverer_names,
    make_discoverer,
    register_discoverer,
)
from repro.discovery.config import (
    BIMAX_MERGE_CONFIG,
    BIMAX_NAIVE_CONFIG,
    EntityStrategy,
    FeatureMode,
    JxplainConfig,
    RobustnessConfig,
)
from repro.discovery.coref import (
    CoReference,
    find_coreferences,
    unify_coreferences,
)
from repro.discovery.fold import DecidedFolder, FoldNode
from repro.discovery.jxplain import (
    Jxplain,
    JxplainMerger,
    JxplainNaive,
    cluster_key_sets,
    jxplain_merge,
)
from repro.discovery.kreduce import (
    KReduce,
    merge_array_coll,
    merge_k,
    merge_k_schemas,
    merge_object_tuple,
)
from repro.discovery.lreduce import LReduce, merge_naive
from repro.discovery.pipeline import (
    JxplainPipeline,
    PipelineMerger,
    PipelineResult,
    TupleShapes,
    build_partitioners,
)
from repro.discovery.sketches import (
    EnrichmentOptions,
    EnrichmentState,
    parse_enrich_spec,
)
from repro.discovery.state import (
    DiscoveryState,
    JxplainState,
    KReduceState,
    LReduceState,
    load_state,
    save_state,
    state_for_algorithm,
)
from repro.discovery.streaming import StreamingJxplain, StreamingKReduce
from repro.discovery.tagged_unions import (
    TaggedUnionConfig,
    TaggedUnionDecision,
    extract_tagged_unions,
    tagged_union_json_schema,
)
from repro.discovery.stat_tree import (
    CollectionDecisions,
    PathEntropy,
    StatTree,
    collection_paths,
    decide_collections,
    entropy_profile,
)

__all__ = [
    "BIMAX_MERGE_CONFIG",
    "BIMAX_NAIVE_CONFIG",
    "CoReference",
    "CollectionDecisions",
    "DecidedFolder",
    "Discoverer",
    "DiscoveryState",
    "EnrichmentOptions",
    "EnrichmentState",
    "EntityStrategy",
    "FeatureMode",
    "FoldNode",
    "FunctionDiscoverer",
    "Jxplain",
    "JxplainConfig",
    "JxplainMerger",
    "JxplainNaive",
    "JxplainPipeline",
    "JxplainState",
    "KReduce",
    "KReduceState",
    "LReduce",
    "LReduceState",
    "PathEntropy",
    "PipelineMerger",
    "PipelineResult",
    "RobustnessConfig",
    "StatTree",
    "StreamingJxplain",
    "StreamingKReduce",
    "TaggedUnionConfig",
    "TaggedUnionDecision",
    "TupleShapes",
    "build_partitioners",
    "cluster_key_sets",
    "collection_paths",
    "decide_collections",
    "discoverer_names",
    "entropy_profile",
    "extract_tagged_unions",
    "find_coreferences",
    "unify_coreferences",
    "jxplain_merge",
    "parse_enrich_spec",
    "tagged_union_json_schema",
    "load_state",
    "make_discoverer",
    "merge_array_coll",
    "merge_k",
    "merge_k_schemas",
    "merge_naive",
    "merge_object_tuple",
    "register_discoverer",
    "save_state",
    "state_for_algorithm",
]
