"""Greedy set cover, used by GreedyMerge (Section 6.3).

GreedyMerge needs a *minimal* set of entities whose maximal elements
jointly cover a candidate key-set.  Minimal set cover is NP-hard, so —
consistent with the paper's Example 11, which only ever needs small
covers — we use the classical greedy approximation: repeatedly take the
set covering the most still-uncovered keys.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

KeySet = FrozenSet[str]


def greedy_set_cover(
    target: KeySet, candidates: Sequence[KeySet]
) -> Optional[List[int]]:
    """Indices of a greedy cover of ``target`` from ``candidates``.

    Returns ``None`` when no subset of the candidates covers the
    target.  The empty target is covered by the empty cover only when
    at least one candidate exists — a zero-candidate call always fails,
    matching GreedyMerge's "no cover exists" branch.

    Deterministic: ties are broken by candidate index.
    """
    if not candidates:
        return None
    uncovered = set(target)
    if not uncovered:
        return []
    # Fast feasibility check: every target key must appear somewhere.
    available = set()
    for candidate in candidates:
        available |= candidate
    if not uncovered <= available:
        return None
    cover: List[int] = []
    chosen = [False] * len(candidates)
    target_keys = set(target)
    while uncovered:
        best_index = -1
        best_score = None
        for index, candidate in enumerate(candidates):
            if chosen[index]:
                continue
            gain = len(uncovered & candidate)
            if gain == 0:
                continue
            # Prefer covers that stay inside the target: a set bringing
            # keys the candidate entity does not have is evidence of a
            # *different* entity that merely shares fields, and pulling
            # it in would glue distinct entities together (e.g. Yelp's
            # salons melting into the generic business entity).
            extraneous = len(candidate - target_keys)
            score = (extraneous, -gain)
            if best_score is None or score < best_score:
                best_score = score
                best_index = index
        if best_index < 0:  # pragma: no cover - feasibility checked above
            return None
        chosen[best_index] = True
        cover.append(best_index)
        uncovered -= candidates[best_index]
    return cover


def greedy_set_cover_masks(
    target: int, candidates: Sequence[int]
) -> Optional[List[int]]:
    """:func:`greedy_set_cover` over interned integer bitmasks.

    Byte-for-byte the same greedy choices — gains and extraneous-key
    counts become popcounts, feasibility becomes a single AND — so the
    returned index list is identical to the frozenset version on
    equivalently encoded inputs.
    """
    if not candidates:
        return None
    uncovered = target
    if not uncovered:
        return []
    available = 0
    for candidate in candidates:
        available |= candidate
    if uncovered & available != uncovered:
        return None
    cover: List[int] = []
    chosen = [False] * len(candidates)
    while uncovered:
        best_index = -1
        best_score = None
        for index, candidate in enumerate(candidates):
            if chosen[index]:
                continue
            gain = (uncovered & candidate).bit_count()
            if gain == 0:
                continue
            # Prefer covers that stay inside the target (see the
            # frozenset implementation above for the rationale).
            extraneous = (candidate & ~target).bit_count()
            score = (extraneous, -gain)
            if best_score is None or score < best_score:
                best_score = score
                best_index = index
        if best_index < 0:  # pragma: no cover - feasibility checked above
            return None
        chosen[best_index] = True
        cover.append(best_index)
        uncovered &= ~candidates[best_index]
    return cover


def cover_exists(target: KeySet, candidates: Sequence[KeySet]) -> bool:
    """Does any subset of ``candidates`` cover ``target``?

    Equivalent to checking the union, but spelled out for symmetry with
    :func:`greedy_set_cover`.
    """
    return greedy_set_cover(target, candidates) is not None


def minimal_cover_size(
    target: KeySet, candidates: Sequence[KeySet]
) -> Optional[int]:
    """Size of an exact minimal cover, by branch and bound.

    Exponential in the worst case; intended for tests that check the
    greedy approximation stays close on realistic inputs.
    """
    greedy = greedy_set_cover(target, candidates)
    if greedy is None:
        return None
    best = len(greedy)
    order = sorted(
        range(len(candidates)),
        key=lambda i: -len(candidates[i] & target),
    )

    def search(uncovered: frozenset, start: int, used: int) -> None:
        nonlocal best
        if not uncovered:
            best = min(best, used)
            return
        if used + 1 >= best:
            return
        for position in range(start, len(order)):
            candidate = candidates[order[position]]
            if uncovered & candidate:
                search(uncovered - candidate, position + 1, used + 1)

    search(frozenset(target), 0, 0)
    return best


def cover_signature(
    target: KeySet, candidates: Sequence[KeySet]
) -> Tuple[bool, int]:
    """(covered?, greedy cover size) — handy for diagnostics."""
    cover = greedy_set_cover(target, candidates)
    if cover is None:
        return False, 0
    return True, len(cover)
