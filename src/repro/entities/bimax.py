"""Bimax bi-clustering (Section 6.2, Algorithms 6 and 7).

Bimax — borrowed from gene-expression analysis (Prelic et al.) — sorts
a list of key-sets so that similar sets end up adjacent, using only
subset/superset structure and never a distance measure.  That makes it
robust to entity-size skew, the failure mode of Jaccard-style measures
illustrated by the paper's Example 9.

:func:`bimax_order` is Algorithm 6 (the reordering);
:func:`bimax_naive` is Algorithm 7, which additionally emits each
``K_sub`` block — the seed set and all of its subsets — as one entity
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Tuple

#: A feature set: record keys (strings) or record paths (tuples),
#: depending on the configured feature mode.  Any hashable works.
KeySet = FrozenSet


@dataclass
class EntityCluster:
    """One discovered entity: a seed key-set and its member key-sets.

    ``maximal`` is the entity's maximal element — every member is a
    subset of it.  Bimax-Naive seeds it with the largest key-set of the
    block; GreedyMerge may later *synthesize* a larger one by unioning
    covers (tracked by ``synthesized``).
    """

    maximal: KeySet
    members: List[KeySet] = field(default_factory=list)
    synthesized: bool = False

    @property
    def size(self) -> int:
        return len(self.maximal)

    def __contains__(self, key_set: KeySet) -> bool:
        return key_set in self.members

    def covers(self, key_set: KeySet) -> bool:
        """Is ``key_set`` within this entity's maximal element?"""
        return key_set <= self.maximal


def _sorted_by_size(key_sets: Iterable[KeySet]) -> List[KeySet]:
    """Descending size; ties broken by sorted key reprs for determinism.

    Keys are sorted by ``repr`` because feature vectors may mix key
    types (strings, array positions, path tuples), which are not
    mutually ordered.
    """
    return sorted(
        key_sets,
        key=lambda ks: (-len(ks), tuple(sorted(repr(k) for k in ks))),
    )


def bimax_order(key_sets: Sequence[KeySet]) -> List[KeySet]:
    """Algorithm 6: reorder key-sets so similar sets are adjacent.

    Repeatedly takes the current head ``k_max`` and stably rearranges
    the remainder as (subsets of ``k_max``) < (overlapping) <
    (disjoint), then advances past the subset block.
    """
    ordering = _sorted_by_size(key_sets)
    index = 0
    while index < len(ordering):
        k_max = ordering[index]
        subsets: List[KeySet] = []
        overlap: List[KeySet] = []
        disjoint: List[KeySet] = []
        for key_set in ordering[index:]:
            if key_set <= k_max:
                subsets.append(key_set)
            elif not (key_set & k_max):
                disjoint.append(key_set)
            else:
                overlap.append(key_set)
        ordering[index:] = subsets + overlap + disjoint
        index += len(subsets)
    return ordering


def bimax_naive(key_sets: Sequence[KeySet]) -> List[EntityCluster]:
    """Algorithm 7: cluster key-sets into subset-blocks.

    Returns clusters in emission (insertion) order.  Each cluster's
    maximal element is its seed — the largest key-set of its block —
    and its members are that seed's subsets from the remaining input.
    Duplicates in the input collapse (a bag of identical key-sets forms
    a single member).
    """
    ordering = bimax_order(_distinct(key_sets))
    clusters: List[EntityCluster] = []
    index = 0
    while index < len(ordering):
        k_max = ordering[index]
        subsets: List[KeySet] = []
        overlap: List[KeySet] = []
        disjoint: List[KeySet] = []
        for key_set in ordering[index:]:
            if key_set <= k_max:
                subsets.append(key_set)
            elif not (key_set & k_max):
                disjoint.append(key_set)
            else:
                overlap.append(key_set)
        ordering[index:] = subsets + overlap + disjoint
        clusters.append(EntityCluster(maximal=k_max, members=list(subsets)))
        index += len(subsets)
    return clusters


def _distinct(key_sets: Iterable[KeySet]) -> List[KeySet]:
    seen = set()
    unique: List[KeySet] = []
    for key_set in key_sets:
        frozen = frozenset(key_set)
        if frozen not in seen:
            seen.add(frozen)
            unique.append(frozen)
    return unique


def block_boundaries(key_sets: Sequence[KeySet]) -> List[Tuple[int, int]]:
    """The ``(start, end)`` spans of each subset block after ordering.

    A convenience for tests and visualisation of the Bimax structure.
    """
    clusters = bimax_naive(key_sets)
    spans: List[Tuple[int, int]] = []
    start = 0
    for cluster in clusters:
        end = start + len(cluster.members)
        spans.append((start, end))
        start = end
    return spans
