"""Bimax bi-clustering (Section 6.2, Algorithms 6 and 7).

Bimax — borrowed from gene-expression analysis (Prelic et al.) — sorts
a list of key-sets so that similar sets end up adjacent, using only
subset/superset structure and never a distance measure.  That makes it
robust to entity-size skew, the failure mode of Jaccard-style measures
illustrated by the paper's Example 9.

:func:`bimax_order` is Algorithm 6 (the reordering);
:func:`bimax_naive` is Algorithm 7, which additionally emits each
``K_sub`` block — the seed set and all of its subsets — as one entity
cluster.

Both run internally on either frozensets or interned integer bitmasks
(:mod:`repro.entities.keyset`); the bitset path turns every
subset/overlap test of the O(n²) partition loop into a couple of
machine-word operations while emitting byte-identical clusters.  The
public API speaks frozensets regardless of representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import (
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.instrument import counters
from repro.entities.keyset import KeySetUniverse, bitset_enabled, encode_all

#: A feature set: record keys (strings) or record paths (tuples),
#: depending on the configured feature mode.  Any hashable works.
KeySet = FrozenSet


@dataclass
class EntityCluster:
    """One discovered entity: a seed key-set and its member key-sets.

    ``maximal`` is the entity's maximal element — every member is a
    subset of it.  Bimax-Naive seeds it with the largest key-set of the
    block; GreedyMerge may later *synthesize* a larger one by unioning
    covers (tracked by ``synthesized``).

    ``member_counts``, when present, aligns with ``members`` and
    carries each member's record multiplicity, so downstream consumers
    (partition weighting, k-means seeding) can weight by record
    frequency rather than by distinct shape.  It is populated whenever
    the clustering entry point was given multiplicities.
    """

    maximal: KeySet
    members: List[KeySet] = field(default_factory=list)
    synthesized: bool = False
    member_counts: Optional[List[int]] = None

    @property
    def size(self) -> int:
        return len(self.maximal)

    @property
    def weight(self) -> int:
        """Total records covered: sum of multiplicities, or the member
        count when multiplicities were not threaded through."""
        if self.member_counts is None:
            return len(self.members)
        return sum(self.member_counts)

    def __contains__(self, key_set: KeySet) -> bool:
        return key_set in self.members

    def covers(self, key_set: KeySet) -> bool:
        """Is ``key_set`` within this entity's maximal element?"""
        return key_set <= self.maximal


@lru_cache(maxsize=65536)
def _repr_sort_key(key_set: KeySet) -> Tuple[str, ...]:
    """``tuple(sorted(map(repr, ks)))``, computed once per key-set.

    Keys are sorted by ``repr`` because feature vectors may mix key
    types (strings, array positions, path tuples), which are not
    mutually ordered.  The cache matters because Bimax re-sorts the
    same sets on every :func:`~repro.entities.greedy_merge.merge_to_fixpoint`
    round.
    """
    return tuple(sorted(map(repr, key_set)))


def _sorted_by_size(key_sets: Iterable[KeySet]) -> List[KeySet]:
    """Descending size; ties broken by the precomputed repr key for
    determinism."""
    return sorted(key_sets, key=lambda ks: (-len(ks), _repr_sort_key(ks)))


def _sorted_masks(masks: Sequence[int], universe: KeySetUniverse) -> List[int]:
    """The mask counterpart of :func:`_sorted_by_size`.

    Bit positions are repr-sorted, so a mask's bit-order repr tuple is
    exactly the frozenset tie-break key — the two sorts agree on every
    input, including the stability of equal keys.
    """
    keyed = {mask: (-mask.bit_count(), universe.sort_key(mask)) for mask in masks}
    return sorted(masks, key=keyed.__getitem__)


def distinct_key_sets(
    key_sets: Iterable[KeySet],
    counts: Optional[Sequence[int]] = None,
) -> Tuple[List[KeySet], List[int]]:
    """Multiplicity-preserving dedup: ``(distinct sets, multiplicities)``.

    Order is first occurrence.  Without explicit ``counts`` each
    occurrence weighs 1 (so the multiplicities are occurrence counts);
    with ``counts`` aligned to the input, duplicates accumulate their
    given weights — the bag semantics the counted-merge layer feeds in.
    """
    index: dict = {}
    unique: List[KeySet] = []
    weights: List[int] = []
    if counts is None:
        for key_set in key_sets:
            frozen = frozenset(key_set)
            at = index.get(frozen)
            if at is None:
                index[frozen] = len(unique)
                unique.append(frozen)
                weights.append(1)
            else:
                weights[at] += 1
    else:
        for key_set, count in zip(key_sets, counts):
            frozen = frozenset(key_set)
            at = index.get(frozen)
            if at is None:
                index[frozen] = len(unique)
                unique.append(frozen)
                weights.append(count)
            else:
                weights[at] += count
    return unique, weights


def _distinct(key_sets: Iterable[KeySet]) -> List[KeySet]:
    unique, _ = distinct_key_sets(key_sets)
    return unique


# -- Algorithm 6: the reordering -------------------------------------------


def _bimax_order_sets(ordering: List[KeySet]) -> List[KeySet]:
    """The seed frozenset implementation of the Bimax reorder loop."""
    subset_tests = 0
    index = 0
    while index < len(ordering):
        k_max = ordering[index]
        subsets: List[KeySet] = []
        overlap: List[KeySet] = []
        disjoint: List[KeySet] = []
        for key_set in ordering[index:]:
            subset_tests += 1
            if key_set <= k_max:
                subsets.append(key_set)
            elif not (key_set & k_max):
                disjoint.append(key_set)
            else:
                overlap.append(key_set)
        ordering[index:] = subsets + overlap + disjoint
        index += len(subsets)
    counters.add("entities.subset_tests", subset_tests)
    return ordering


def _bimax_order_masks(ordering: List[int]) -> List[int]:
    """The bitset implementation: the same loop over int masks."""
    subset_tests = 0
    index = 0
    while index < len(ordering):
        k_max = ordering[index]
        subsets: List[int] = []
        overlap: List[int] = []
        disjoint: List[int] = []
        for mask in ordering[index:]:
            inter = mask & k_max
            if inter == mask:
                subsets.append(mask)
            elif not inter:
                disjoint.append(mask)
            else:
                overlap.append(mask)
        subset_tests += len(ordering) - index
        ordering[index:] = subsets + overlap + disjoint
        index += len(subsets)
    counters.add("entities.subset_tests", subset_tests)
    return ordering


def bimax_order(key_sets: Sequence[KeySet]) -> List[KeySet]:
    """Algorithm 6: reorder key-sets so similar sets are adjacent.

    Repeatedly takes the current head ``k_max`` and stably rearranges
    the remainder as (subsets of ``k_max``) < (overlapping) <
    (disjoint), then advances past the subset block.
    """
    if not bitset_enabled():
        return _bimax_order_sets(_sorted_by_size(key_sets))
    universe = KeySetUniverse.from_key_sets(key_sets)
    masks = _sorted_masks(encode_all(universe, key_sets), universe)
    return [universe.decode(mask) for mask in _bimax_order_masks(masks)]


# -- Algorithm 7: the naive clustering -------------------------------------


def _bimax_naive_sets(
    distinct: List[KeySet], weights: List[int]
) -> List[Tuple[KeySet, List[KeySet], List[int]]]:
    count_of = dict(zip(distinct, weights))
    ordering = _bimax_order_sets(_sorted_by_size(distinct))
    blocks: List[Tuple[KeySet, List[KeySet], List[int]]] = []
    subset_tests = 0
    index = 0
    while index < len(ordering):
        k_max = ordering[index]
        subsets: List[KeySet] = []
        overlap: List[KeySet] = []
        disjoint: List[KeySet] = []
        for key_set in ordering[index:]:
            if key_set <= k_max:
                subsets.append(key_set)
            elif not (key_set & k_max):
                disjoint.append(key_set)
            else:
                overlap.append(key_set)
        subset_tests += len(ordering) - index
        ordering[index:] = subsets + overlap + disjoint
        blocks.append(
            (k_max, list(subsets), [count_of[ks] for ks in subsets])
        )
        index += len(subsets)
    counters.add("entities.subset_tests", subset_tests)
    return blocks


def _bimax_naive_masks(
    distinct: List[KeySet], weights: List[int]
) -> List[Tuple[KeySet, List[KeySet], List[int]]]:
    universe = KeySetUniverse.from_key_sets(distinct)
    masks = encode_all(universe, distinct)
    count_of = dict(zip(masks, weights))
    ordering = _bimax_order_masks(_sorted_masks(masks, universe))
    blocks: List[Tuple[KeySet, List[KeySet], List[int]]] = []
    subset_tests = 0
    index = 0
    while index < len(ordering):
        k_max = ordering[index]
        subsets: List[int] = []
        overlap: List[int] = []
        disjoint: List[int] = []
        for mask in ordering[index:]:
            inter = mask & k_max
            if inter == mask:
                subsets.append(mask)
            elif not inter:
                disjoint.append(mask)
            else:
                overlap.append(mask)
        subset_tests += len(ordering) - index
        ordering[index:] = subsets + overlap + disjoint
        blocks.append(
            (
                universe.decode(k_max),
                [universe.decode(m) for m in subsets],
                [count_of[m] for m in subsets],
            )
        )
        index += len(subsets)
    counters.add("entities.subset_tests", subset_tests)
    return blocks


def bimax_naive(
    key_sets: Sequence[KeySet],
    counts: Optional[Sequence[int]] = None,
) -> List[EntityCluster]:
    """Algorithm 7: cluster key-sets into subset-blocks.

    Returns clusters in emission (insertion) order.  Each cluster's
    maximal element is its seed — the largest key-set of its block —
    and its members are that seed's subsets from the remaining input.
    Duplicates in the input collapse (a bag of identical key-sets forms
    a single member); their multiplicities accumulate and, when
    ``counts`` is given, are recorded on the clusters'
    ``member_counts``.
    """
    distinct, weights = distinct_key_sets(key_sets, counts)
    if bitset_enabled():
        blocks = _bimax_naive_masks(distinct, weights)
    else:
        blocks = _bimax_naive_sets(distinct, weights)
    counters.add("entities.clusters_emitted", len(blocks))
    keep_counts = counts is not None
    return [
        EntityCluster(
            maximal=maximal,
            members=members,
            member_counts=list(member_counts) if keep_counts else None,
        )
        for maximal, members, member_counts in blocks
    ]


def block_boundaries(key_sets: Sequence[KeySet]) -> List[Tuple[int, int]]:
    """The ``(start, end)`` spans of each subset block after ordering.

    A convenience for tests and visualisation of the Bimax structure.
    """
    clusters = bimax_naive(key_sets)
    spans: List[Tuple[int, int]] = []
    start = 0
    for cluster in clusters:
        end = start + len(cluster.members)
        spans.append((start, end))
        start = end
    return spans
