"""Deterministic record → entity assignment (Section 4.3).

JXPLAIN's ``partition`` heuristic must output "a deterministic
algorithm for partitioning input types by entity".
:class:`EntityPartitioner` is that algorithm: built once from the
clusters that Bimax-Naive / GreedyMerge discovered, it assigns any
key-set (including ones never seen in training) to an entity:

1. a key-set that is a member of exactly one cluster goes there;
2. otherwise, the entity with the *smallest* maximal superset wins
   (most specific entity that fully explains the record);
3. otherwise — a record matching no entity — the entity with the
   largest key overlap wins, with deterministic tie-breaking.

Rule 3 only matters during validation of unseen data; during discovery
every training key-set belongs to some cluster by construction.

Rules 2 and 3 scan every cluster's maximal element, so the partitioner
encodes the maximals as integer bitmasks at construction (when the
bitset representation is enabled) and each ``assign`` becomes a strip
of AND/popcount operations.  A key outside the training vocabulary can
never witness a subset relation, so rule 2 skips masked sets that lost
keys in encoding; rule 3's overlaps are unaffected (unknown keys
overlap nothing in either representation).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, TypeVar

from repro.engine.instrument import counters
from repro.entities.bimax import EntityCluster
from repro.entities.keyset import KeySetUniverse, bitset_enabled

KeySet = FrozenSet[str]
T = TypeVar("T")


class EntityPartitioner:
    """Assigns key-sets to the entity clusters they belong to."""

    def __init__(self, clusters: Sequence[EntityCluster]):
        if not clusters:
            raise ValueError("partitioner requires at least one cluster")
        self._clusters = list(clusters)
        self._member_index: Dict[KeySet, int] = {}
        for index, cluster in enumerate(self._clusters):
            for member in cluster.members:
                self._member_index.setdefault(member, index)
        # Snapshot the representation at construction so a partitioner
        # stays internally consistent however the global toggle moves.
        self._universe: Optional[KeySetUniverse] = None
        if bitset_enabled():
            self._universe = KeySetUniverse.from_key_sets(
                cluster.maximal for cluster in self._clusters
            )
            self._maximal_masks = [
                self._universe.encode(cluster.maximal)
                for cluster in self._clusters
            ]
            self._sizes = [mask.bit_count() for mask in self._maximal_masks]

    @property
    def clusters(self) -> List[EntityCluster]:
        return list(self._clusters)

    @property
    def entity_count(self) -> int:
        return len(self._clusters)

    def cluster_weights(self) -> List[int]:
        """Per-entity record weight (multiplicity-aware when the
        clusters carry ``member_counts``; member counts otherwise)."""
        return [cluster.weight for cluster in self._clusters]

    def assign(self, key_set: KeySet) -> int:
        """The entity index for ``key_set`` (always succeeds)."""
        key_set = frozenset(key_set)
        direct = self._member_index.get(key_set)
        if direct is not None:
            return direct
        if self._universe is not None:
            return self._assign_mask(key_set)
        return self._assign_sets(key_set)

    def _assign_sets(self, key_set: KeySet) -> int:
        best_superset = -1
        best_superset_size = None
        for index, cluster in enumerate(self._clusters):
            if key_set <= cluster.maximal:
                if (
                    best_superset_size is None
                    or cluster.size < best_superset_size
                ):
                    best_superset = index
                    best_superset_size = cluster.size
        if best_superset >= 0:
            return best_superset
        best_overlap = -1
        best_index = 0
        for index, cluster in enumerate(self._clusters):
            overlap = len(key_set & cluster.maximal)
            if overlap > best_overlap or (
                overlap == best_overlap
                and cluster.size < self._clusters[best_index].size
            ):
                best_overlap = overlap
                best_index = index
        return best_index

    def _assign_mask(self, key_set: KeySet) -> int:
        mask, complete = self._universe.encode_partial(key_set)
        masks = self._maximal_masks
        sizes = self._sizes
        if complete:
            best_superset = -1
            best_superset_size = None
            for index, maximal in enumerate(masks):
                if mask & maximal == mask:
                    if (
                        best_superset_size is None
                        or sizes[index] < best_superset_size
                    ):
                        best_superset = index
                        best_superset_size = sizes[index]
            if best_superset >= 0:
                return best_superset
        best_overlap = -1
        best_index = 0
        for index, maximal in enumerate(masks):
            overlap = (mask & maximal).bit_count()
            if overlap > best_overlap or (
                overlap == best_overlap
                and sizes[index] < sizes[best_index]
            ):
                best_overlap = overlap
                best_index = index
        return best_index

    def partition(self, items: Sequence[T], key_sets: Sequence[KeySet]) -> List[List[T]]:
        """Split ``items`` into per-entity groups by their key-sets."""
        if len(items) != len(key_sets):
            raise ValueError("items and key_sets must align")
        counters.add("entities.assignments", len(items))
        groups: List[List[T]] = [[] for _ in self._clusters]
        for item, key_set in zip(items, key_sets):
            groups[self.assign(key_set)].append(item)
        return groups

    def non_empty_groups(
        self, items: Sequence[T], key_sets: Sequence[KeySet]
    ) -> List[List[T]]:
        """:meth:`partition` with empty groups dropped."""
        return [g for g in self.partition(items, key_sets) if g]

    def group_weights(
        self,
        key_sets: Sequence[KeySet],
        counts: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Record weight landing on each entity for a bag of key-sets.

        ``counts`` carries per-key-set multiplicities (1 each when
        omitted), so callers holding a counted bag can weight entities
        by record frequency without materialising duplicates.
        """
        weights = [0] * len(self._clusters)
        if counts is None:
            counts = [1] * len(key_sets)
        for key_set, count in zip(key_sets, counts):
            weights[self.assign(key_set)] += count
        return weights
