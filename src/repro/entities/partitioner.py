"""Deterministic record → entity assignment (Section 4.3).

JXPLAIN's ``partition`` heuristic must output "a deterministic
algorithm for partitioning input types by entity".
:class:`EntityPartitioner` is that algorithm: built once from the
clusters that Bimax-Naive / GreedyMerge discovered, it assigns any
key-set (including ones never seen in training) to an entity:

1. a key-set that is a member of exactly one cluster goes there;
2. otherwise, the entity with the *smallest* maximal superset wins
   (most specific entity that fully explains the record);
3. otherwise — a record matching no entity — the entity with the
   largest key overlap wins, with deterministic tie-breaking.

Rule 3 only matters during validation of unseen data; during discovery
every training key-set belongs to some cluster by construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, TypeVar

from repro.entities.bimax import EntityCluster

KeySet = FrozenSet[str]
T = TypeVar("T")


class EntityPartitioner:
    """Assigns key-sets to the entity clusters they belong to."""

    def __init__(self, clusters: Sequence[EntityCluster]):
        if not clusters:
            raise ValueError("partitioner requires at least one cluster")
        self._clusters = list(clusters)
        self._member_index: Dict[KeySet, int] = {}
        for index, cluster in enumerate(self._clusters):
            for member in cluster.members:
                self._member_index.setdefault(member, index)

    @property
    def clusters(self) -> List[EntityCluster]:
        return list(self._clusters)

    @property
    def entity_count(self) -> int:
        return len(self._clusters)

    def assign(self, key_set: KeySet) -> int:
        """The entity index for ``key_set`` (always succeeds)."""
        key_set = frozenset(key_set)
        direct = self._member_index.get(key_set)
        if direct is not None:
            return direct
        best_superset = -1
        best_superset_size = None
        for index, cluster in enumerate(self._clusters):
            if key_set <= cluster.maximal:
                if (
                    best_superset_size is None
                    or cluster.size < best_superset_size
                ):
                    best_superset = index
                    best_superset_size = cluster.size
        if best_superset >= 0:
            return best_superset
        best_overlap = -1
        best_index = 0
        for index, cluster in enumerate(self._clusters):
            overlap = len(key_set & cluster.maximal)
            if overlap > best_overlap or (
                overlap == best_overlap
                and cluster.size < self._clusters[best_index].size
            ):
                best_overlap = overlap
                best_index = index
        return best_index

    def partition(self, items: Sequence[T], key_sets: Sequence[KeySet]) -> List[List[T]]:
        """Split ``items`` into per-entity groups by their key-sets."""
        if len(items) != len(key_sets):
            raise ValueError("items and key_sets must align")
        groups: List[List[T]] = [[] for _ in self._clusters]
        for item, key_set in zip(items, key_sets):
            groups[self.assign(key_set)].append(item)
        return groups

    def non_empty_groups(
        self, items: Sequence[T], key_sets: Sequence[KeySet]
    ) -> List[List[T]]:
        """:meth:`partition` with empty groups dropped."""
        return [g for g in self.partition(items, key_sets) if g]
