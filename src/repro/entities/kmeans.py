"""k-means clustering of key-sets — the baseline of Section 7.3.

The paper compares Bimax-Merge against classical k-means over binary
key-membership vectors with Euclidean distance, *giving k-means the
ground-truth k* (information Bimax never needs).  Even so, k-means
splits attribute-rich entities into several clusters while starving
small ones, because every field is weighted equally (Example 9).

Implementation: k-means++ initialisation and Lloyd iterations over a
dense ``numpy`` matrix, fully deterministic under a seed.  The binary
matrix is materialised through the bitset layer
(:class:`~repro.entities.keyset.KeySetUniverse`): each key-set encodes
to one integer mask whose bits are scattered into a row, and the
universe's ``repr``-sorted key order *is* the vocabulary — identical
to the historical ``sorted(set().union(*key_sets), key=repr)``.

``weights`` (optional, aligned with the key-sets) are record
multiplicities from a counted bag: the k-means++ seeding distribution,
the Lloyd centroid means, and the inertia all weight by them, so a
deduplicated bag clusters exactly like the duplicated corpus would.
Unweighted calls are bit-for-bit the seed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.entities.keyset import KeySetUniverse, iter_bits

KeySet = FrozenSet[str]


@dataclass
class KMeansResult:
    """Labels plus the fitted centroids and key vocabulary."""

    labels: np.ndarray
    centroids: np.ndarray
    vocabulary: Tuple[str, ...]
    inertia: float

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def cluster_key_sets(self, threshold: float = 0.5) -> List[KeySet]:
        """The key-set each centroid implies (membership >= threshold)."""
        out: List[KeySet] = []
        for row in self.centroids:
            keys = {
                self.vocabulary[i]
                for i in range(len(self.vocabulary))
                if row[i] >= threshold
            }
            out.append(frozenset(keys))
        return out


def encode_key_sets(
    key_sets: Sequence[KeySet],
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Binary membership matrix over the union vocabulary.

    Vocabulary order sorts by ``repr`` so heterogeneous feature keys
    (strings, path tuples) order deterministically.
    """
    if not key_sets:
        return np.zeros((0, 0), dtype=np.float64), ()
    universe = KeySetUniverse.from_key_sets(key_sets)
    vocabulary = universe.keys
    matrix = np.zeros((len(key_sets), len(vocabulary)), dtype=np.float64)
    for row, key_set in enumerate(key_sets):
        for bit in iter_bits(universe.encode(key_set)):
            matrix[row, bit] = 1.0
    return matrix, vocabulary


def _kmeans_pp_init(
    matrix: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance.

    With ``weights``, both the first pick and every subsequent pick
    draw proportionally to record multiplicity (times squared
    distance), matching seeding over the duplicated corpus.
    """
    count = matrix.shape[0]
    if weights is None:
        first = int(rng.integers(count))
    else:
        first = int(rng.choice(count, p=weights / weights.sum()))
    centroids = [matrix[first]]
    distances = np.sum((matrix - centroids[0]) ** 2, axis=1)
    for _ in range(1, k):
        scores = distances if weights is None else distances * weights
        total = scores.sum()
        if total <= 0:
            choice = int(rng.integers(count))
        else:
            choice = int(rng.choice(count, p=scores / total))
        centroids.append(matrix[choice])
        new_d = np.sum((matrix - centroids[-1]) ** 2, axis=1)
        distances = np.minimum(distances, new_d)
    return np.array(centroids)


def kmeans_key_sets(
    key_sets: Sequence[KeySet],
    k: int,
    *,
    seed: int = 0,
    max_iterations: int = 100,
    weights: Optional[Sequence[int]] = None,
) -> KMeansResult:
    """Cluster key-sets into ``k`` groups with Lloyd's algorithm."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not key_sets:
        raise ValueError("cannot cluster an empty input")
    if k > len(key_sets):
        raise ValueError(
            f"k={k} exceeds the number of key-sets ({len(key_sets)})"
        )
    if weights is not None and len(weights) != len(key_sets):
        raise ValueError("weights must align with key_sets")
    matrix, vocabulary = encode_key_sets(key_sets)
    weight_array = (
        np.asarray(weights, dtype=np.float64) if weights is not None else None
    )
    rng = np.random.default_rng(seed)
    centroids = _kmeans_pp_init(matrix, k, rng, weights=weight_array)
    labels = np.zeros(matrix.shape[0], dtype=np.int64)
    for _ in range(max_iterations):
        # Assignment step.
        distances = (
            np.sum(matrix**2, axis=1, keepdims=True)
            - 2.0 * matrix @ centroids.T
            + np.sum(centroids**2, axis=1)
        )
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        # Update step; empty clusters re-seed from the farthest point.
        for cluster in range(k):
            mask = labels == cluster
            if mask.any():
                if weight_array is None:
                    centroids[cluster] = matrix[mask].mean(axis=0)
                else:
                    centroids[cluster] = np.average(
                        matrix[mask], axis=0, weights=weight_array[mask]
                    )
            else:
                farthest = int(np.argmax(distances.min(axis=1)))
                centroids[cluster] = matrix[farthest]
    final_d = (
        np.sum(matrix**2, axis=1, keepdims=True)
        - 2.0 * matrix @ centroids.T
        + np.sum(centroids**2, axis=1)
    )
    point_d = final_d[np.arange(matrix.shape[0]), labels]
    if weight_array is not None:
        point_d = point_d * weight_array
    inertia = float(point_d.sum())
    return KMeansResult(
        labels=labels,
        centroids=centroids,
        vocabulary=vocabulary,
        inertia=inertia,
    )


def kmeans_clusters(
    key_sets: Sequence[KeySet],
    k: int,
    *,
    seed: int = 0,
    weights: Optional[Sequence[int]] = None,
) -> List[List[KeySet]]:
    """Group the input key-sets by their k-means label."""
    result = kmeans_key_sets(key_sets, k, seed=seed, weights=weights)
    clusters: List[List[KeySet]] = [[] for _ in range(k)]
    for key_set, label in zip(key_sets, result.labels):
        clusters[int(label)].append(key_set)
    return clusters
