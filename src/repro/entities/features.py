"""Feature-vector preprocessing for entity discovery (Section 6.4).

Entity discovery (Bimax + GreedyMerge) makes multiple passes over the
key-sets at every tuple-typed path, so a preprocessing step compacts
each record into a *feature vector* — the set of paths appearing in it.
Two storage strategies are offered, as in the paper:

* **sparse** — a frozenset of path identifiers per distinct vector
  (cheap when schemas are wide but records are sparse);
* **dense** — a bit-matrix over the path vocabulary (cheap when most
  fields are mandatory).

The *nested-collection pruning* optimisation keeps only paths contained
in the outer collection but not inside any nested collection: a nested
collection's internal keys (e.g. 2 397 drug names) would otherwise
explode the number of distinct feature vectors.  Figure 5's memory
comparison is reproduced by :func:`feature_memory_profile`.
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.jsontypes.paths import Path, ROOT, STAR
from repro.jsontypes.types import ArrayType, JsonType, ObjectType

#: A feature vector: the set of (generalized) paths present in a record.
FeatureVector = FrozenSet[Path]


def type_paths(
    tau: JsonType,
    *,
    collection_paths: FrozenSet[Path] = frozenset(),
    prune_nested: bool = True,
) -> FeatureVector:
    """The feature vector of one record type.

    Every path with a complex or primitive node is a feature.  Steps
    beneath a path listed in ``collection_paths`` are either pruned
    (``prune_nested=True``, the paper's optimisation — the collection
    path itself remains a feature) or generalized to the ``*`` wildcard
    step so instances share features.
    """
    features: set = set()

    def walk(node: JsonType, path: Path) -> None:
        if path != ROOT:
            features.add(path)
        if path in collection_paths:
            if prune_nested:
                return
            if isinstance(node, ObjectType):
                for _, child in node.items():
                    walk(child, path + (STAR,))
            elif isinstance(node, ArrayType):
                for child in node.elements:
                    walk(child, path + (STAR,))
            return
        if isinstance(node, ObjectType):
            for key, child in node.items():
                walk(child, path + (key,))
        elif isinstance(node, ArrayType):
            for index, child in enumerate(node.elements):
                walk(child, path + (index,))

    walk(tau, ROOT)
    return frozenset(features)


def top_level_key_set(tau: ObjectType) -> FrozenSet[str]:
    """The paper's §6 problem-statement features: the record's keys."""
    return tau.key_set()


@dataclass
class FeatureVectorSet:
    """A compacted bag of feature vectors with multiplicities."""

    counts: Counter
    _vocabulary: Optional[Tuple[Path, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_vectors(cls, vectors: Iterable[FeatureVector]) -> "FeatureVectorSet":
        return cls(Counter(vectors))

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def distinct(self) -> int:
        return len(self.counts)

    def vocabulary(self) -> Tuple[Path, ...]:
        """The ``repr``-sorted union of all feature paths.

        Computed once and cached: both memory estimates and the dense
        encoding consult it, and a memory profile alone would otherwise
        rebuild it twice per estimate.  Call :meth:`invalidate` after
        mutating ``counts`` in place.
        """
        if self._vocabulary is None:
            paths: set = set()
            for vector in self.counts:
                paths |= vector
            self._vocabulary = tuple(sorted(paths, key=repr))
        return self._vocabulary

    def invalidate(self) -> None:
        """Drop the cached vocabulary after an in-place mutation."""
        self._vocabulary = None

    def sparse_memory_bytes(self) -> int:
        """Estimated bytes for the sparse (set-per-vector) encoding.

        Counts each distinct vector's set object plus one pointer per
        entry; the path vocabulary itself is shared and counted once.
        """
        vocab = self.vocabulary()
        vocab_bytes = sum(_path_bytes(path) for path in vocab)
        vector_bytes = 0
        for vector in self.counts:
            vector_bytes += sys.getsizeof(frozenset()) + 8 * len(vector)
        return vocab_bytes + vector_bytes

    def dense_memory_bytes(self) -> int:
        """Estimated bytes for the dense bit-matrix encoding."""
        vocab = self.vocabulary()
        vocab_bytes = sum(_path_bytes(path) for path in vocab)
        width = max(1, (len(vocab) + 7) // 8)
        return vocab_bytes + self.distinct * width

    def dense_matrix(self):
        """Materialize the dense encoding as ``numpy`` booleans."""
        import numpy as np

        vocab = self.vocabulary()
        index: Dict[Path, int] = {path: i for i, path in enumerate(vocab)}
        matrix = np.zeros((self.distinct, len(vocab)), dtype=bool)
        ordering = list(self.counts)
        for row, vector in enumerate(ordering):
            for path in vector:
                matrix[row, index[path]] = True
        return matrix, vocab, ordering


def _path_bytes(path: Path) -> int:
    total = sys.getsizeof(())
    for step in path:
        total += sys.getsizeof(step) if not isinstance(step, int) else 28
    return total


def extract_feature_vectors(
    types: Sequence[JsonType],
    *,
    collection_paths: FrozenSet[Path] = frozenset(),
    prune_nested: bool = True,
) -> FeatureVectorSet:
    """Compact a bag of record types into a feature-vector set."""
    vectors = (
        type_paths(
            tau,
            collection_paths=collection_paths,
            prune_nested=prune_nested,
        )
        for tau in types
    )
    return FeatureVectorSet.from_vectors(vectors)


@dataclass
class FeatureMemoryProfile:
    """Figure 5's comparison for one dataset."""

    sparse_bytes: int
    dense_bytes: int
    pruned_sparse_bytes: int
    pruned_dense_bytes: int
    distinct_vectors: int
    pruned_distinct_vectors: int

    def rows(self) -> List[Tuple[str, int]]:
        return [
            ("sparse", self.sparse_bytes),
            ("dense", self.dense_bytes),
            ("sparse+pruning", self.pruned_sparse_bytes),
            ("dense+pruning", self.pruned_dense_bytes),
        ]


def feature_memory_profile(
    types: Sequence[JsonType],
    collection_paths: FrozenSet[Path],
) -> FeatureMemoryProfile:
    """Measure all four encodings on one bag of record types.

    The unpruned variant uses raw record paths — what a preprocessor
    unaware of collections would store; the pruned variant drops paths
    beneath the detected collections (§6.4's optimisation).
    """
    unpruned = extract_feature_vectors(
        types, collection_paths=frozenset(), prune_nested=False
    )
    pruned = extract_feature_vectors(
        types, collection_paths=collection_paths, prune_nested=True
    )
    return FeatureMemoryProfile(
        sparse_bytes=unpruned.sparse_memory_bytes(),
        dense_bytes=unpruned.dense_memory_bytes(),
        pruned_sparse_bytes=pruned.sparse_memory_bytes(),
        pruned_dense_bytes=pruned.dense_memory_bytes(),
        distinct_vectors=unpruned.distinct,
        pruned_distinct_vectors=pruned.distinct,
    )
