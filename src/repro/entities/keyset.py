"""Bitset representation of key-sets: the entity layer's fast path.

Entity discovery (Bimax ordering, Bimax-Naive, GreedyMerge, the
partitioner's assignment rules) is dominated by subset and overlap
tests over key-sets.  With Python ``frozenset``\\ s every test walks the
smaller set and hashes each element; with *bitmasks* over a fixed key
vocabulary the same tests are single arbitrary-precision integer
operations — one machine word per 64 keys:

* subset        — ``a & b == a``
* overlap       — ``a & b != 0``
* union         — ``a | b``
* difference    — ``a & ~b``
* cardinality   — ``a.bit_count()``

:class:`KeySetUniverse` is the encoder: it interns every distinct key
of a workload at a bit position and converts frozensets to masks and
back.  Bit positions are assigned in ``repr``-sorted key order, which
makes two derived quantities cheap and *exactly* equal to their
frozenset counterparts:

* the deterministic tie-break key ``tuple(sorted(map(repr, ks)))``
  used by Bimax ordering is just the reprs of a mask's set bits in
  ascending bit order;
* the k-means vocabulary (``repr``-sorted union of all keys) is the
  universe's key tuple itself.

Decoding returns the *original* frozenset object whenever the mask
corresponds to an encoded input (masks are interned alongside the
sets), so round-trips through the bitset layer cost no allocations for
unchanged sets.

Which representation the entity algorithms use internally is selected
by :func:`set_entity_representation` (``"bitset"`` by default,
``"frozenset"`` restores the seed implementations); the public API of
every entity function consumes and produces frozensets either way, so
callers never see masks unless they opt in.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

#: A key-set as the public API sees it.
KeySet = FrozenSet

#: A key-set as the bitset layer sees it.
Mask = int


class KeySetUniverse:
    """Interns a key vocabulary and encodes key-sets as int bitmasks.

    The universe is immutable once built: every key of every set it
    will encode must be present at construction.  ``encode_partial``
    tolerates unknown keys (dropping them and reporting the loss) for
    the partitioner's unseen-record assignment path.
    """

    __slots__ = ("_keys", "_index", "_reprs", "_interned")

    def __init__(self, keys: Iterable) -> None:
        ordered = sorted(set(keys), key=repr)
        self._keys: Tuple = tuple(ordered)
        self._index: Dict = {key: i for i, key in enumerate(ordered)}
        self._reprs: Tuple[str, ...] = tuple(repr(key) for key in ordered)
        #: mask -> the original frozenset it was encoded from.
        self._interned: Dict[Mask, KeySet] = {}

    @classmethod
    def from_key_sets(cls, key_sets: Iterable[KeySet]) -> "KeySetUniverse":
        keys: set = set()
        for key_set in key_sets:
            keys |= key_set
        return cls(keys)

    @property
    def keys(self) -> Tuple:
        """The vocabulary, ``repr``-sorted; bit ``i`` is ``keys[i]``."""
        return self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._index

    def bit_of(self, key) -> int:
        """The bit position of ``key`` (KeyError when unknown)."""
        return self._index[key]

    def encode(self, key_set: KeySet) -> Mask:
        """The bitmask of ``key_set``; every key must be known."""
        index = self._index
        mask = 0
        for key in key_set:
            mask |= 1 << index[key]
        self._interned.setdefault(mask, key_set)
        return mask

    def encode_partial(self, key_set: KeySet) -> Tuple[Mask, bool]:
        """``(mask of known keys, were all keys known?)``.

        Unknown keys are dropped from the mask; the flag lets callers
        distinguish "subset under the mask" from a genuine subset (a
        set with an out-of-universe key is never a subset of any
        universe set).
        """
        index = self._index
        mask = 0
        complete = True
        for key in key_set:
            bit = index.get(key)
            if bit is None:
                complete = False
            else:
                mask |= 1 << bit
        return mask, complete

    def decode(self, mask: Mask) -> KeySet:
        """The frozenset of a mask; reuses the encoded original when
        one exists, so unchanged sets round-trip by identity."""
        interned = self._interned.get(mask)
        if interned is not None:
            return interned
        keys = self._keys
        decoded = frozenset(keys[i] for i in iter_bits(mask))
        self._interned[mask] = decoded
        return decoded

    def sort_key(self, mask: Mask) -> Tuple[str, ...]:
        """``tuple(sorted(map(repr, keys of mask)))`` — equal to the
        frozenset tie-break key because bits are repr-sorted."""
        reprs = self._reprs
        return tuple(reprs[i] for i in iter_bits(mask))


def iter_bits(mask: Mask) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def encode_all(
    universe: KeySetUniverse, key_sets: Sequence[KeySet]
) -> List[Mask]:
    """Encode a sequence of key-sets under one universe."""
    return [universe.encode(key_set) for key_set in key_sets]


#: The representations the entity algorithms can run on internally.
REPRESENTATIONS = ("bitset", "frozenset")

_REPRESENTATION = "bitset"


def set_entity_representation(mode: str) -> str:
    """Select the internal representation for entity discovery.

    ``"bitset"`` (the default) runs Bimax / GreedyMerge / the
    partitioner on interned integer masks; ``"frozenset"`` restores the
    seed's set-based implementations.  Returns the previous mode.  The
    two produce byte-identical clusters (same maximals, members, and
    emission order) — the equivalence suite asserts it.
    """
    global _REPRESENTATION
    if mode not in REPRESENTATIONS:
        raise ValueError(
            f"unknown entity representation {mode!r}; "
            f"known: {', '.join(REPRESENTATIONS)}"
        )
    previous = _REPRESENTATION
    _REPRESENTATION = mode
    return previous


def entity_representation() -> str:
    return _REPRESENTATION


def bitset_enabled() -> bool:
    return _REPRESENTATION == "bitset"
