"""Entity discovery: Bimax bi-clustering, GreedyMerge, baselines.

Implements Section 6 of the paper: Algorithm 6 (Bimax ordering),
Algorithm 7 (Bimax-Naive clustering), Algorithm 8 (GreedyMerge), the
k-means baseline of Section 7.3, the feature-vector preprocessing of
Section 6.4, and the deterministic record→entity partitioner.

All of the subset/overlap-heavy algorithms run internally on interned
integer bitmasks (:mod:`repro.entities.keyset`) by default;
:func:`set_entity_representation` switches back to the seed's
frozenset implementations, and the two are cluster-identical.
"""

from repro.entities.bimax import (
    EntityCluster,
    KeySet,
    bimax_naive,
    bimax_order,
    block_boundaries,
    distinct_key_sets,
)
from repro.entities.keyset import (
    KeySetUniverse,
    entity_representation,
    iter_bits,
    set_entity_representation,
)
from repro.entities.features import (
    FeatureMemoryProfile,
    FeatureVector,
    FeatureVectorSet,
    extract_feature_vectors,
    feature_memory_profile,
    top_level_key_set,
    type_paths,
)
from repro.entities.greedy_merge import (
    bimax_merge,
    greedy_merge,
    merge_to_fixpoint,
)
from repro.entities.kmeans import (
    KMeansResult,
    encode_key_sets,
    kmeans_clusters,
    kmeans_key_sets,
)
from repro.entities.partitioner import EntityPartitioner
from repro.entities.set_cover import (
    cover_exists,
    greedy_set_cover,
    greedy_set_cover_masks,
    minimal_cover_size,
)

__all__ = [
    "EntityCluster",
    "EntityPartitioner",
    "FeatureMemoryProfile",
    "FeatureVector",
    "FeatureVectorSet",
    "KMeansResult",
    "KeySet",
    "KeySetUniverse",
    "bimax_merge",
    "bimax_naive",
    "bimax_order",
    "block_boundaries",
    "cover_exists",
    "distinct_key_sets",
    "encode_key_sets",
    "entity_representation",
    "extract_feature_vectors",
    "feature_memory_profile",
    "greedy_merge",
    "merge_to_fixpoint",
    "greedy_set_cover",
    "greedy_set_cover_masks",
    "iter_bits",
    "kmeans_clusters",
    "kmeans_key_sets",
    "minimal_cover_size",
    "set_entity_representation",
    "top_level_key_set",
    "type_paths",
]
