"""GreedyMerge: coalescing Bimax-Naive clusters (Section 6.3, Alg. 8).

Bimax-Naive seeds every entity from a *maximal record*, so an entity
with many independent optional fields fragments into several clusters —
Example 10 shows that seeing a truly maximal record can require
trillions of samples.  GreedyMerge repairs the fragmentation: walking
clusters smallest-first (reverse Bimax insertion order), it looks for a
minimal set of other clusters whose maximal elements jointly cover the
candidate's maximal element.  A cover signals that the candidate's keys
all re-occur across its neighbours — the signature of optional-field
fragments of a single entity — so the cover is folded into the
candidate and the search repeats with the enlarged (synthesized)
maximal element.  When no cover exists (the candidate owns at least one
key no other cluster has), the entity is emitted.

Emitted entities are final: they are not offered as cover members to
later candidates.  (The paper's pseudocode only removes *consumed*
covers from ``K_naive``; allowing emitted entities back into the pool
lets every later candidate swallow the previously-emitted one whose
synthesized maximal keeps growing, cascading all entities into a
single blob on streams with shared foreign keys.)  Each successful
cover consumes at least one live cluster, so the algorithm terminates.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.entities.bimax import EntityCluster, KeySet, bimax_naive
from repro.entities.set_cover import greedy_set_cover


def greedy_merge(clusters: Sequence[EntityCluster]) -> List[EntityCluster]:
    """Algorithm 8: merge Bimax-Naive clusters via set covers.

    ``clusters`` must be in Bimax-Naive insertion order (largest
    first); processing runs in reverse, i.e. smallest-first.  Returns
    merged entities in emission order.
    """
    live: List[EntityCluster] = [
        EntityCluster(
            maximal=cluster.maximal,
            members=list(cluster.members),
            synthesized=cluster.synthesized,
        )
        for cluster in clusters
    ]
    consumed = [False] * len(live)
    emitted = [False] * len(live)
    merged: List[EntityCluster] = []

    for position in range(len(live) - 1, -1, -1):
        if consumed[position]:
            continue
        candidate = live[position]
        while True:
            # Offer cover members nearest-first in Bimax insertion
            # order: the ordering places similar entities adjacent, so
            # ties in the greedy cover resolve toward similar entities
            # (the property Example 11 relies on).
            pool = [
                index
                for index in range(len(live) - 1, -1, -1)
                if index != position
                and not consumed[index]
                and not emitted[index]
            ]
            cover_local = greedy_set_cover(
                candidate.maximal, [live[i].maximal for i in pool]
            )
            if cover_local is None or not cover_local:
                break
            new_keys: set = set(candidate.maximal)
            for local in cover_local:
                index = pool[local]
                consumed[index] = True
                candidate.members.extend(live[index].members)
                new_keys |= live[index].maximal
            candidate.maximal = frozenset(new_keys)
            candidate.synthesized = True
        emitted[position] = True
        merged.append(candidate)

    return merged


def merge_to_fixpoint(
    clusters: Sequence[EntityCluster], max_iterations: int = 4
) -> List[EntityCluster]:
    """Iterate GreedyMerge over its own output until it stabilises.

    A single pass can strand fragments: once an entity is emitted it
    cannot absorb a later fragment that only its keys could cover.
    Re-clustering the emitted entities' maximal elements (they are
    just key-sets) lets stranded fragments meet in the next round;
    entities with genuinely unique keys are fixed points.  Converges
    in 1-2 extra rounds in practice; ``max_iterations`` is a backstop.
    """
    current = list(clusters)
    for _ in range(max_iterations):
        before = len(current)
        members_of: dict = {}
        for cluster in current:
            members_of.setdefault(cluster.maximal, []).extend(
                cluster.members
            )
        regrouped = greedy_merge(
            bimax_naive([cluster.maximal for cluster in current])
        )
        rebuilt: List[EntityCluster] = []
        for group in regrouped:
            members: List[KeySet] = []
            for member in group.members:
                members.extend(members_of.get(member, [member]))
            rebuilt.append(
                EntityCluster(
                    maximal=group.maximal,
                    members=members,
                    synthesized=True,
                )
            )
        current = rebuilt
        if len(current) == before:
            break
    return current


def bimax_merge(key_sets: Sequence[KeySet]) -> List[EntityCluster]:
    """Bimax-Naive, GreedyMerge, then fixpoint iteration — the full §6
    pipeline as used by JXPLAIN's BIMAX_MERGE strategy."""
    return merge_to_fixpoint(greedy_merge(bimax_naive(key_sets)))
