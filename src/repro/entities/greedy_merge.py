"""GreedyMerge: coalescing Bimax-Naive clusters (Section 6.3, Alg. 8).

Bimax-Naive seeds every entity from a *maximal record*, so an entity
with many independent optional fields fragments into several clusters —
Example 10 shows that seeing a truly maximal record can require
trillions of samples.  GreedyMerge repairs the fragmentation: walking
clusters smallest-first (reverse Bimax insertion order), it looks for a
minimal set of other clusters whose maximal elements jointly cover the
candidate's maximal element.  A cover signals that the candidate's keys
all re-occur across its neighbours — the signature of optional-field
fragments of a single entity — so the cover is folded into the
candidate and the search repeats with the enlarged (synthesized)
maximal element.  When no cover exists (the candidate owns at least one
key no other cluster has), the entity is emitted.

Emitted entities are final: they are not offered as cover members to
later candidates.  (The paper's pseudocode only removes *consumed*
covers from ``K_naive``; allowing emitted entities back into the pool
lets every later candidate swallow the previously-emitted one whose
synthesized maximal keeps growing, cascading all entities into a
single blob on streams with shared foreign keys.)  Each successful
cover consumes at least one live cluster, so the algorithm terminates.

The O(n² · cover) search runs internally on either frozensets or
interned integer bitmasks (:mod:`repro.entities.keyset`); only the
maximal elements participate in set algebra, so the bitset path encodes
just those and leaves member lists untouched.  Member multiplicities
(``EntityCluster.member_counts``), when present on every input
cluster, ride along through merges.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.engine.instrument import counters
from repro.entities.bimax import EntityCluster, KeySet, bimax_naive
from repro.entities.keyset import KeySetUniverse, bitset_enabled
from repro.entities.set_cover import greedy_set_cover, greedy_set_cover_masks


def _counts_threaded(clusters: Sequence[EntityCluster]) -> bool:
    """Multiplicities propagate only when every input carries them."""
    return bool(clusters) and all(
        cluster.member_counts is not None for cluster in clusters
    )


def _greedy_merge_sets(
    clusters: Sequence[EntityCluster], with_counts: bool
) -> List[EntityCluster]:
    """The seed frozenset implementation of Algorithm 8."""
    live: List[EntityCluster] = [
        EntityCluster(
            maximal=cluster.maximal,
            members=list(cluster.members),
            synthesized=cluster.synthesized,
            member_counts=(
                list(cluster.member_counts) if with_counts else None
            ),
        )
        for cluster in clusters
    ]
    consumed = [False] * len(live)
    emitted = [False] * len(live)
    merged: List[EntityCluster] = []
    cover_calls = 0

    for position in range(len(live) - 1, -1, -1):
        if consumed[position]:
            continue
        candidate = live[position]
        while True:
            # Offer cover members nearest-first in Bimax insertion
            # order: the ordering places similar entities adjacent, so
            # ties in the greedy cover resolve toward similar entities
            # (the property Example 11 relies on).
            pool = [
                index
                for index in range(len(live) - 1, -1, -1)
                if index != position
                and not consumed[index]
                and not emitted[index]
            ]
            cover_calls += 1
            cover_local = greedy_set_cover(
                candidate.maximal, [live[i].maximal for i in pool]
            )
            if cover_local is None or not cover_local:
                break
            new_keys: set = set(candidate.maximal)
            for local in cover_local:
                index = pool[local]
                consumed[index] = True
                candidate.members.extend(live[index].members)
                if with_counts:
                    candidate.member_counts.extend(
                        live[index].member_counts
                    )
                new_keys |= live[index].maximal
            candidate.maximal = frozenset(new_keys)
            candidate.synthesized = True
        emitted[position] = True
        merged.append(candidate)

    counters.add("entities.cover_calls", cover_calls)
    return merged


def _greedy_merge_masks(
    clusters: Sequence[EntityCluster], with_counts: bool
) -> List[EntityCluster]:
    """The bitset implementation: maximal elements as int masks."""
    universe = KeySetUniverse.from_key_sets(
        cluster.maximal for cluster in clusters
    )
    count = len(clusters)
    maximals = [universe.encode(cluster.maximal) for cluster in clusters]
    members = [list(cluster.members) for cluster in clusters]
    member_counts = [
        list(cluster.member_counts) if with_counts else None
        for cluster in clusters
    ]
    synthesized = [cluster.synthesized for cluster in clusters]
    consumed = [False] * count
    emitted = [False] * count
    merged: List[EntityCluster] = []
    cover_calls = 0

    for position in range(count - 1, -1, -1):
        if consumed[position]:
            continue
        while True:
            pool = [
                index
                for index in range(count - 1, -1, -1)
                if index != position
                and not consumed[index]
                and not emitted[index]
            ]
            cover_calls += 1
            cover_local = greedy_set_cover_masks(
                maximals[position], [maximals[i] for i in pool]
            )
            if cover_local is None or not cover_local:
                break
            new_mask = maximals[position]
            for local in cover_local:
                index = pool[local]
                consumed[index] = True
                members[position].extend(members[index])
                if with_counts:
                    member_counts[position].extend(member_counts[index])
                new_mask |= maximals[index]
            maximals[position] = new_mask
            synthesized[position] = True
        emitted[position] = True
        merged.append(
            EntityCluster(
                maximal=universe.decode(maximals[position]),
                members=members[position],
                synthesized=synthesized[position],
                member_counts=member_counts[position],
            )
        )

    counters.add("entities.cover_calls", cover_calls)
    return merged


def greedy_merge(clusters: Sequence[EntityCluster]) -> List[EntityCluster]:
    """Algorithm 8: merge Bimax-Naive clusters via set covers.

    ``clusters`` must be in Bimax-Naive insertion order (largest
    first); processing runs in reverse, i.e. smallest-first.  Returns
    merged entities in emission order.
    """
    with_counts = _counts_threaded(clusters)
    if bitset_enabled():
        merged = _greedy_merge_masks(clusters, with_counts)
    else:
        merged = _greedy_merge_sets(clusters, with_counts)
    counters.add("entities.clusters_emitted", len(merged))
    return merged


def merge_to_fixpoint(
    clusters: Sequence[EntityCluster], max_iterations: int = 4
) -> List[EntityCluster]:
    """Iterate GreedyMerge over its own output until it stabilises.

    A single pass can strand fragments: once an entity is emitted it
    cannot absorb a later fragment that only its keys could cover.
    Re-clustering the emitted entities' maximal elements (they are
    just key-sets) lets stranded fragments meet in the next round;
    entities with genuinely unique keys are fixed points.  Converges
    in 1-2 extra rounds in practice; ``max_iterations`` is a backstop.
    """
    current = list(clusters)
    with_counts = _counts_threaded(current)
    for _ in range(max_iterations):
        before = len(current)
        members_of: dict = {}
        for cluster in current:
            entry = members_of.setdefault(cluster.maximal, ([], []))
            entry[0].extend(cluster.members)
            if with_counts:
                entry[1].extend(cluster.member_counts)
        regrouped = greedy_merge(
            bimax_naive([cluster.maximal for cluster in current])
        )
        rebuilt: List[EntityCluster] = []
        for group in regrouped:
            members: List[KeySet] = []
            group_counts: List[int] = []
            for member in group.members:
                entry = members_of.get(member)
                if entry is None:
                    members.append(member)
                    group_counts.append(1)
                else:
                    members.extend(entry[0])
                    group_counts.extend(entry[1])
            rebuilt.append(
                EntityCluster(
                    maximal=group.maximal,
                    members=members,
                    synthesized=True,
                    member_counts=group_counts if with_counts else None,
                )
            )
        current = rebuilt
        if len(current) == before:
            break
    return current


def bimax_merge(key_sets: Sequence[KeySet]) -> List[EntityCluster]:
    """Bimax-Naive, GreedyMerge, then fixpoint iteration — the full §6
    pipeline as used by JXPLAIN's BIMAX_MERGE strategy."""
    return merge_to_fixpoint(greedy_merge(bimax_naive(key_sets)))
