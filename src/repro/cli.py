"""Command-line interface: ``jxplain``.

Subcommands:

* ``discover`` — extract a schema from a JSON-lines file and print it
  (text or JSON Schema);
* ``validate`` — validate a JSON-lines file against a JSON Schema
  document produced by ``discover --format json``;
* ``entropy`` — report the schema entropy of a stored schema;
* ``generate`` — materialize one of the synthetic datasets as
  JSON-lines;
* ``diff`` — compare two stored schemas and report structural changes;
* ``docs`` — render a stored schema as a Markdown documentation page;
* ``coref`` — report entities repeated at multiple schema paths;
* ``lint`` — run the repo's own static-invariant analyzer
  (:mod:`repro.analysis`) over source trees;
* ``datasets`` / ``algorithms`` — list what is available.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.datasets import dataset_names, make_dataset
from repro.discovery import EntityStrategy, discoverer_names, make_discoverer
from repro.io.jsonlines import (
    INGEST_MODES,
    INGEST_POLICIES,
    ingest_jsonlines,
    write_jsonlines,
)
from repro.schema import (
    from_json_schema,
    render,
    schema_entropy,
    to_json_schema,
)
from repro.validation import first_failures, validate_records


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jxplain",
        description="Ambiguity-aware JSON schema discovery (SIGMOD 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    discover = sub.add_parser(
        "discover", help="extract a schema from a JSON-lines file"
    )
    discover.add_argument(
        "input",
        nargs="?",
        default=None,
        help="path to a .jsonl file (optional with --resume)",
    )
    discover.add_argument(
        "--algorithm",
        default="bimax-merge",
        help="one of: " + ", ".join(discoverer_names()),
    )
    discover.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output as readable text or a JSON Schema document",
    )
    discover.add_argument(
        "--output", default=None, help="write the schema here instead of stdout"
    )
    discover.add_argument(
        "--threshold", type=float, default=None,
        help="key-space entropy threshold (default 1.0)",
    )
    discover.add_argument(
        "--similarity-depth", type=int, default=None,
        help="bound the similarity check depth (default: unbounded)",
    )
    discover.add_argument(
        "--strategy", default=None,
        choices=[strategy.value for strategy in EntityStrategy],
        help="entity strategy (default bimax-merge)",
    )
    discover.add_argument(
        "--no-collections", action="store_true",
        help="disable collection detection (K-reduce-style objects/arrays)",
    )
    discover.add_argument(
        "--on-bad-record",
        choices=INGEST_POLICIES,
        default="raise",
        help="malformed input lines: abort (raise), drop them (skip), "
        "or drop and report payloads (collect)",
    )
    discover.add_argument(
        "--ingest",
        choices=INGEST_MODES,
        default="classic",
        help="how to read input: parse values (classic) or stream "
        "interned record types in one pass over the bytes (fused)",
    )
    discover.add_argument(
        "--enrich", default=None, metavar="FEATURES",
        help="collect value-domain evidence alongside discovery: a "
        "comma list from {sketches, unions}.  'sketches' annotates "
        "JSON Schema output with min/max bounds, string formats, "
        "distinct-value estimates, and Bloom membership filters; "
        "'unions' detects tagged unions from low-entropy "
        "discriminant keys.  The structural schema is unchanged.",
    )
    discover.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="save the discovery state here after the run "
        "(resume later with --resume)",
    )
    discover.add_argument(
        "--resume", action="store_true",
        help="load the state from --checkpoint and continue from it "
        "instead of starting fresh",
    )
    discover.add_argument(
        "--append", action="append", default=[], metavar="FILE",
        help="absorb this additional .jsonl file into the state "
        "(repeatable)",
    )
    discover.add_argument(
        "--shards", default=None, metavar="N|auto",
        help="split the input into newline-aligned byte ranges and "
        "discover them in parallel workers (auto sizes the shard "
        "count adaptively); state and schema are byte-identical to "
        "an unsharded run",
    )
    discover.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="with --shards: fan out over a process pool of N "
        "workers (default: the REPRO_EXECUTOR backend)",
    )
    discover.add_argument(
        "--merge-fanin", type=int, default=None, metavar="K",
        help="with --shards: fan-in of the partial-state merge tree "
        "(default 2; any value yields identical bytes)",
    )
    discover.add_argument(
        "--num-partitions", default=None, metavar="N|auto",
        help="dataset partition count for pipeline algorithms "
        "(auto = adaptive from record count and worker count)",
    )

    validate = sub.add_parser(
        "validate", help="validate records against a stored JSON Schema"
    )
    validate.add_argument("schema", help="JSON Schema document (from discover)")
    validate.add_argument("input", help="path to a .jsonl file")
    validate.add_argument(
        "--explain", type=int, default=0, metavar="N",
        help="print explanations for the first N failures",
    )
    validate.add_argument(
        "--on-bad-record",
        choices=INGEST_POLICIES,
        default="raise",
        help="malformed input lines: abort (raise), drop them (skip), "
        "or drop and report payloads (collect)",
    )

    entropy = sub.add_parser(
        "entropy", help="schema entropy of a stored JSON Schema"
    )
    entropy.add_argument("schema", help="JSON Schema document")
    entropy.add_argument(
        "--literal-collections",
        action="store_true",
        help="use the literal (compounding) collection count",
    )

    generate = sub.add_parser(
        "generate", help="materialize a synthetic dataset as JSON-lines"
    )
    generate.add_argument(
        "dataset", help="one of: " + ", ".join(dataset_names())
    )
    generate.add_argument("output", help="path of the .jsonl file to write")
    generate.add_argument("--records", type=int, default=0)
    generate.add_argument("--seed", type=int, default=0)

    diff = sub.add_parser(
        "diff", help="compare two stored JSON Schema documents"
    )
    diff.add_argument("old", help="baseline schema (from discover)")
    diff.add_argument("new", help="candidate schema (from discover)")
    diff.add_argument(
        "--breaking-only",
        action="store_true",
        help="report only changes that affect validation",
    )

    docs = sub.add_parser(
        "docs", help="render a stored schema as Markdown documentation"
    )
    docs.add_argument("schema", help="JSON Schema document")
    docs.add_argument("--title", default="Discovered schema")
    docs.add_argument(
        "--output", default=None, help="write Markdown here instead of stdout"
    )

    coref = sub.add_parser(
        "coref", help="find entities repeated at multiple schema paths"
    )
    coref.add_argument("schema", help="JSON Schema document")
    coref.add_argument(
        "--jaccard", type=float, default=0.8,
        help="near-equality threshold on key-set overlap",
    )

    lint = sub.add_parser(
        "lint",
        help="statically check the codebase's determinism / "
        "picklability / supervision laws",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings as readable text, a JSON report, or SARIF 2.1.0",
    )
    lint.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the report here (a text summary still prints)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="warning",
        help="exit non-zero when a non-baselined finding reaches this "
        "severity (default: warning)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings "
        "(default: lint-baseline.json when it exists)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings (pruning "
        "fingerprints that no longer occur) and exit 0",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file content-hash cache",
    )
    lint.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="cache file location (default: .repro-lint-cache.json)",
    )
    lint.add_argument(
        "--executor",
        default=None,
        metavar="SPEC",
        help="engine backend for the per-file fan-out "
        "(serial, threads[:N], processes[:N]; default: REPRO_EXECUTOR)",
    )
    lint.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings the baseline grandfathers",
    )

    sub.add_parser("datasets", help="list dataset generators")
    sub.add_parser("algorithms", help="list discovery algorithms")
    return parser


def _read_input(
    path: str, on_bad_record: str, ingest: str = "classic"
) -> list:
    if ingest == "fused":
        from repro.io.fastpath import ingest_jsonlines_fused

        records, report = ingest_jsonlines_fused(
            path, on_bad_record=on_bad_record
        )
    else:
        records, report = ingest_jsonlines(path, on_bad_record=on_bad_record)
    if not report.ok:
        print(f"warning: {report.summary()}", file=sys.stderr)
    return records


def _discover_overrides(args: argparse.Namespace) -> dict:
    overrides = {}
    if args.threshold is not None:
        overrides["entropy_threshold"] = args.threshold
    if args.similarity_depth is not None:
        overrides["similarity_depth"] = args.similarity_depth
    if args.strategy is not None:
        overrides["entity_strategy"] = EntityStrategy(args.strategy)
    if args.no_collections:
        overrides["detect_object_collections"] = False
        overrides["detect_array_tuples"] = False
    return overrides


def _emit_schema(schema, args: argparse.Namespace, state=None) -> None:
    if args.format == "json":
        document = to_json_schema(schema)
        enrichment = getattr(state, "enrichment", None)
        if enrichment is not None:
            from repro.schema import annotate_json_schema

            document = annotate_json_schema(document, enrichment)
            if enrichment.options.unions:
                decision = _extract_tagged_union(state)
                if decision is not None:
                    from repro.discovery.tagged_unions import (
                        tagged_union_json_schema,
                    )

                    document["x-repro-tagged-union"] = {
                        "key": decision.key,
                        "schema": tagged_union_json_schema(decision),
                    }
        text = json.dumps(document, indent=2, sort_keys=True)
    else:
        text = render(schema)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)


def _extract_tagged_union(state):
    """The state's best tagged-union decision, or ``None``.

    K-reduce states retain no type bag (branch schemas cannot be
    rebuilt), so extraction degrades to a warning instead of failing
    the run.
    """
    from repro.discovery.tagged_unions import extract_tagged_unions

    try:
        decisions = extract_tagged_unions(state)
    except ValueError as exc:
        print(f"warning: {exc}", file=sys.stderr)
        return None
    return decisions[0] if decisions else None


def _parse_count_or_auto(value: str, option: str):
    """``"auto"`` → None (adaptive), else a positive int; errors exit 2."""
    if value == "auto":
        return None
    try:
        count = int(value)
    except ValueError:
        print(
            f"error: {option} must be a positive integer or 'auto', "
            f"got {value!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if count < 1:
        print(f"error: {option} must be >= 1, got {count}", file=sys.stderr)
        raise SystemExit(2)
    return count


def _cmd_discover(args: argparse.Namespace) -> int:
    overrides = _discover_overrides(args)
    if args.shards is None and (
        args.workers is not None or args.merge_fanin is not None
    ):
        print(
            "error: --workers/--merge-fanin require --shards",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.enrich is not None:
        print(
            "error: --enrich cannot change a resumed state; enrichment "
            "was fixed when the checkpoint was created",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None:
        return _cmd_discover_sharded(args, overrides)
    # Fused ingestion yields record *types*, and the state core is the
    # layer that canonically consumes types for every algorithm — so
    # fused discovery always routes through it, exactly like
    # checkpointed/resumed and enriched runs do (enrichment lives on
    # the state).
    if (
        args.checkpoint
        or args.resume
        or args.append
        or args.enrich is not None
        or args.ingest == "fused"
    ):
        return _cmd_discover_incremental(args, overrides)
    if args.input is None:
        print(
            "error: discover needs an input file (or --resume)",
            file=sys.stderr,
        )
        return 2
    records = _read_input(args.input, args.on_bad_record)
    if not records:
        print("error: input contains no records", file=sys.stderr)
        return 2
    discoverer = make_discoverer(args.algorithm)
    if overrides:
        if not hasattr(discoverer, "config"):
            print(
                f"error: --threshold/--strategy options do not apply to "
                f"{args.algorithm}",
                file=sys.stderr,
            )
            return 2
        discoverer.config = discoverer.config.with_(**overrides)
    if args.num_partitions is not None:
        if not hasattr(discoverer, "num_partitions"):
            print(
                f"error: --num-partitions does not apply to "
                f"{args.algorithm}",
                file=sys.stderr,
            )
            return 2
        discoverer.num_partitions = _parse_count_or_auto(
            args.num_partitions, "--num-partitions"
        )
    schema = discoverer.discover(records)
    _emit_schema(schema, args)
    return 0


def _cmd_discover_sharded(args: argparse.Namespace, overrides: dict) -> int:
    """Sharded discovery: byte-range fan-out via the shard coordinator.

    Works for every algorithm (the coordinator goes through the state
    core), composes with --checkpoint/--resume/--append, and — when a
    checkpoint is requested — persists per-shard checkpoints so a
    killed run resumes from completed shards.
    """
    import hashlib
    import os
    import shutil

    from repro.discovery import JxplainConfig, load_state, save_state
    from repro.engine.sharding import ShardCoordinator
    from repro.errors import (
        CheckpointError,
        DatasetError,
        EmptyInputError,
        EngineError,
    )

    shards = _parse_count_or_auto(args.shards, "--shards")
    executor = None
    if args.workers is not None:
        from repro.engine.executor import ProcessExecutor

        executor = ProcessExecutor(max_workers=args.workers)
    algorithm = args.algorithm
    config = None
    state = None
    if args.resume:
        if not args.checkpoint:
            print("error: --resume requires --checkpoint", file=sys.stderr)
            return 2
        if overrides:
            print(
                "error: --threshold/--strategy options cannot change a "
                "resumed state; they were fixed when it was created",
                file=sys.stderr,
            )
            return 2
        try:
            state = load_state(args.checkpoint)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        algorithm = state.algorithm
        config = getattr(state, "config", None)
        # The checkpoint's enrichment (or its absence) governs: shard
        # partials must merge into it.
        enrich = (
            state.enrichment.options
            if state.enrichment is not None
            else None
        )
    else:
        if overrides:
            config = JxplainConfig().with_(**overrides)
        enrich = args.enrich
    sources = [args.input] if args.input else []
    sources.extend(args.append)
    fanin = (
        {} if args.merge_fanin is None else {"merge_fanin": args.merge_fanin}
    )
    used_shard_dirs = []
    try:
        for source in sources:
            shard_dir = None
            if args.checkpoint:
                digest = hashlib.sha256(
                    str(source).encode("utf-8")
                ).hexdigest()[:16]
                shard_dir = os.path.join(
                    f"{args.checkpoint}.shards", digest
                )
            coordinator = ShardCoordinator(
                algorithm,
                config,
                executor=executor,
                shards=shards,
                on_bad_record=args.on_bad_record,
                ingest=args.ingest,
                checkpoint_dir=shard_dir,
                enrich=enrich,
                **fanin,
            )
            run = coordinator.run(source)
            if not run.report.ok:
                print(f"warning: {run.report.summary()}", file=sys.stderr)
            state = run.state if state is None else state.merge(run.state)
            if shard_dir is not None:
                used_shard_dirs.append(shard_dir)
    except (ValueError, EngineError, CheckpointError, DatasetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if executor is not None:
            executor.close()
    if state is None or state.record_count == 0:
        print("error: input contains no records", file=sys.stderr)
        return 2
    try:
        schema = state.synthesize()
    except EmptyInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint:
        save_state(state, args.checkpoint)
        for shard_dir in used_shard_dirs:
            shutil.rmtree(shard_dir, ignore_errors=True)
        for shard_dir in used_shard_dirs:
            try:
                os.rmdir(os.path.dirname(shard_dir))
            except OSError:
                pass
    _emit_schema(schema, args, state=state)
    return 0


def _cmd_discover_incremental(
    args: argparse.Namespace, overrides: dict
) -> int:
    """Stateful discovery: checkpoint after the run, resume, append."""
    from repro.discovery import (
        JxplainConfig,
        load_state,
        save_state,
        state_for_algorithm,
    )
    from repro.errors import CheckpointError, EmptyInputError

    if args.resume:
        if not args.checkpoint:
            print("error: --resume requires --checkpoint", file=sys.stderr)
            return 2
        if overrides:
            print(
                "error: --threshold/--strategy options cannot change a "
                "resumed state; they were fixed when it was created",
                file=sys.stderr,
            )
            return 2
        try:
            state = load_state(args.checkpoint)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            config = None
            if overrides:
                config = JxplainConfig().with_(**overrides)
            state = state_for_algorithm(
                args.algorithm, config, enrich=args.enrich
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    sources = [args.input] if args.input else []
    sources.extend(args.append)
    for source in sources:
        if args.ingest == "fused":
            if state.enrichment is not None:
                # Sketches need the parsed values, so an enriched
                # fused run streams (type, value) pairs instead of
                # cache-accelerated bare types.
                from repro.io.fastpath import absorb_jsonlines_typed

                report = absorb_jsonlines_typed(
                    state, source, on_bad_record=args.on_bad_record
                )
                if not report.ok:
                    print(
                        f"warning: {report.summary()}", file=sys.stderr
                    )
            else:
                for tau in _read_input(source, args.on_bad_record, "fused"):
                    state.absorb_type(tau)
        else:
            state.absorb_many(_read_input(source, args.on_bad_record))
    if state.record_count == 0:
        print("error: input contains no records", file=sys.stderr)
        return 2
    try:
        schema = state.synthesize()
    except EmptyInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint:
        save_state(state, args.checkpoint)
    _emit_schema(schema, args, state=state)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    with open(args.schema, encoding="utf-8") as handle:
        schema = from_json_schema(json.load(handle))
    records = _read_input(args.input, args.on_bad_record)
    report = validate_records(schema, records)
    print(
        f"validated {report.total} records: "
        f"{report.valid_count} accepted, {report.invalid_count} rejected "
        f"(recall {report.recall:.4f})"
    )
    if args.explain > 0 and report.invalid_count:
        for index, violations in first_failures(
            schema, records, limit=args.explain
        ):
            print(f"record {index}:")
            for violation in violations:
                print(f"  {violation}")
    return 0 if report.invalid_count == 0 else 1


def _cmd_entropy(args: argparse.Namespace) -> int:
    with open(args.schema, encoding="utf-8") as handle:
        schema = from_json_schema(json.load(handle))
    value = schema_entropy(
        schema, literal_collections=args.literal_collections
    )
    print(f"{value:.4f}")
    return 0


def _load_schema(path: str):
    with open(path, encoding="utf-8") as handle:
        return from_json_schema(json.load(handle))


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.validation import diff_schemas

    diff = diff_schemas(_load_schema(args.old), _load_schema(args.new))
    changes = (
        diff.breaking_changes() if args.breaking_only else diff.changes
    )
    if not changes:
        print("schemas are structurally identical")
        return 0
    for change in changes:
        marker = "!" if change.breaking else " "
        print(f"{marker} {change}")
    return 1 if diff.breaking_changes() else 0


def _cmd_docs(args: argparse.Namespace) -> int:
    from repro.schema import schema_to_markdown

    text = schema_to_markdown(_load_schema(args.schema), title=args.title)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


def _cmd_coref(args: argparse.Namespace) -> int:
    from repro.discovery import find_coreferences

    groups = find_coreferences(
        _load_schema(args.schema), jaccard_threshold=args.jaccard
    )
    if not groups:
        print("no co-references found")
        return 0
    for group in groups:
        print(group.describe())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis import (
        Baseline,
        DEFAULT_BASELINE_PATH,
        DEFAULT_CACHE_PATH,
        LintError,
        Severity,
        render_json,
        render_text,
        run_lint,
        summary_line,
    )

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE_PATH):
        baseline_path = DEFAULT_BASELINE_PATH
    cache_path = None if args.no_cache else (args.cache or DEFAULT_CACHE_PATH)
    rules = None
    if args.rules:
        rules = [
            chunk.strip() for chunk in args.rules.split(",") if chunk.strip()
        ]
    try:
        result = run_lint(
            args.paths,
            rules=rules,
            executor=args.executor,
            cache_path=cache_path,
            baseline_path=(
                None if args.update_baseline else baseline_path
            ),
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE_PATH
        previous = Baseline.load(target)
        updated, added, removed = Baseline.updated(
            previous, result.findings, linted_files=result.files
        )
        updated.save(target)
        print(
            f"baseline {target}: {len(updated.entries)} entries "
            f"(+{len(added)} added, -{len(removed)} removed)"
        )
        for entry in added:
            print(f"  + {entry['fingerprint']}  {entry['file']} "
                  f"{entry['rule']}")
        for entry in removed:
            print(f"  - {entry['fingerprint']}  {entry['file']} "
                  f"{entry['rule']}")
        return 0
    if args.format == "sarif":
        import json as _json

        from repro.analysis import ANALYZER_VERSION
        from repro.analysis.sarif import sarif_report

        report = _json.dumps(
            sarif_report(
                result.findings,
                result.rules,
                tool_version=str(ANALYZER_VERSION),
            ),
            indent=2,
            sort_keys=True,
        )
    elif args.format == "json":
        report = render_json(result)
    else:
        report = render_text(result, show_baselined=args.show_baselined)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(summary_line(result))
    else:
        print(report)
    fail_on = (
        None
        if args.fail_on == "never"
        else Severity(args.fail_on)
    )
    return 1 if result.fails(fail_on) else 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = make_dataset(args.dataset)
    records = generator.generate(args.records, seed=args.seed)
    count = write_jsonlines(args.output, records)
    print(f"wrote {count} records to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``jxplain`` console script."""
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an
        # error from the user's point of view.
        import os

        try:
            sys.stdout.close()
        except Exception as exc:
            # Usually a second BrokenPipeError from flushing the
            # already-dead pipe.  Still accounted for: the counter
            # always ticks, and REPRO_VERBOSE surfaces the details.
            from repro.engine.instrument import counters

            counters.add("cli.stdout_close_errors")
            if os.environ.get("REPRO_VERBOSE"):
                print(
                    f"warning: stdout close failed: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
        os._exit(0)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "discover":
        return _cmd_discover(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "entropy":
        return _cmd_entropy(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "docs":
        return _cmd_docs(args)
    if args.command == "coref":
        return _cmd_coref(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "datasets":
        print("\n".join(dataset_names()))
        return 0
    if args.command == "algorithms":
        print("\n".join(discoverer_names()))
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
