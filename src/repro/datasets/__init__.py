"""Synthetic analogues of the paper's evaluation corpora (§7).

Importing this package registers every generator; use
:func:`make_dataset` / :func:`dataset_names` to enumerate them.  The
``PAPER_DATASETS`` tuple lists the names in the order the paper's
tables present them.
"""

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    dataset_names,
    make_dataset,
    register_dataset,
)
from repro.datasets.figure1 import FIGURE1_RECORDS, Figure1Events
from repro.datasets.github import GithubEvents
from repro.datasets.nyt import NytArchive
from repro.datasets.pharma import DRUG_VOCABULARY_SIZE, PharmaPrescriptions
from repro.datasets.synapse import SynapseEvents
from repro.datasets.twitter import TwitterStream
from repro.datasets.wikidata import WikidataDump
from repro.datasets.yelp import (
    YelpBusiness,
    YelpCheckin,
    YelpMerged,
    YelpPhotos,
    YelpReview,
    YelpTip,
    YelpUser,
)

#: Dataset names in the order the paper's tables present them.
PAPER_DATASETS = (
    "nyt",
    "synapse",
    "twitter",
    "github",
    "pharma",
    "wikidata",
    "yelp-merged",
    "yelp-business",
    "yelp-checkin",
    "yelp-photos",
    "yelp-review",
    "yelp-tip",
    "yelp-user",
)

__all__ = [
    "DRUG_VOCABULARY_SIZE",
    "DatasetGenerator",
    "FIGURE1_RECORDS",
    "Figure1Events",
    "GithubEvents",
    "LabeledRecord",
    "NytArchive",
    "PAPER_DATASETS",
    "PharmaPrescriptions",
    "SynapseEvents",
    "TwitterStream",
    "WikidataDump",
    "YelpBusiness",
    "YelpCheckin",
    "YelpMerged",
    "YelpPhotos",
    "YelpReview",
    "YelpTip",
    "YelpUser",
    "dataset_names",
    "make_dataset",
    "register_dataset",
]
