"""The paper's Figure 1 running example: login and serve events.

Two entities share the mandatory ``ts`` and ``event`` fields; a login
carries a ``user`` object with a 2-element ``geo`` coordinate tuple, a
serve carries a ``files`` string collection.  This tiny stream exhibits
all three ambiguities of Section 3 at once and is used throughout the
documentation and tests.
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    register_dataset,
    word,
)

#: The two records printed in Figure 1 of the paper.
FIGURE1_RECORDS = [
    {
        "ts": 7,
        "event": "login",
        "user": {"name": "alice", "geo": [41.9, -87.6]},
    },
    {
        "ts": 8,
        "event": "serve",
        "files": ["index.html", "favicon.ico"],
    },
]


@register_dataset
class Figure1Events(DatasetGenerator):
    """A stream of login/serve events shaped like Figure 1."""

    name = "figure1"
    default_size = 200
    entity_labels = ("login", "serve")

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        for index in range(n):
            if rng.random() < 0.5:
                record = {
                    "ts": index,
                    "event": "login",
                    "user": {
                        "name": word(rng, 6),
                        "geo": [
                            round(rng.uniform(-90, 90), 4),
                            round(rng.uniform(-180, 180), 4),
                        ],
                    },
                }
                records.append(("login", record))
            else:
                record = {
                    "ts": index,
                    "event": "serve",
                    "files": [
                        f"{word(rng, 5)}.txt"
                        for _ in range(rng.randint(0, 6))
                    ],
                }
                records.append(("serve", record))
        return records
