"""Synthetic Yelp Open Dataset (substitute for [35]).

Six tables plus the paper's synthetic **Yelp-Merged** union:

* ``business`` — heavy use of optional attributes, plus the soft
  functional dependency the paper describes: hair salons nearly always
  carry (and are nearly alone in carrying) ``by_appointment``, which
  makes Bimax-Merge split salons into their own entity (Table 4's
  2.6-entity average);
* ``checkin`` — a two-level pivot-table collection:
  ``time: {day: {hour: count}}`` with absent days/hours omitted;
* ``photos`` — 4 mandatory fields, the paper's "single clean entity";
* ``review`` / ``tip`` / ``user`` — flat tuples, ``user`` with
  collection-ish friend lists and a block of compliment counters;
* ``merged`` — the tag-free union of all six, joined by foreign keys
  (``business_id``, ``user_id``) that appear in several entities but
  not all — the ground-truth workload for Table 3.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    hex_id,
    register_dataset,
    sentence,
    word,
)

_DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

_CATEGORIES = (
    "Restaurants",
    "Bars",
    "Coffee & Tea",
    "Shopping",
    "Automotive",
    "Home Services",
    "Fitness",
)

#: Fraction of businesses that are hair salons (the soft-FD group).
SALON_FRACTION = 0.08

#: P(by_appointment present | salon) — "nearly always".
SALON_APPOINTMENT_RATE = 0.97

#: P(by_appointment present | not salon) — the soft FD is "so rarely
#: violated it is possible to miss even when training on 90% of the
#: data" (§7.3); at bench scale that means a violation usually never
#: appears in a sample at all.
NON_SALON_APPOINTMENT_RATE = 0.0002

#: Attributes common to every business.  ``BusinessParking`` is a
#: *nested object* (as in the real dataset), which keeps the
#: attributes map tuple-like: its values mix kinds, so Algorithm 5's
#: E_T check fires.
_COMMON_ATTRIBUTES = (
    ("WiFi", 0.6),
    ("BusinessParking", 0.55),
    ("BikeParking", 0.5),
    ("BusinessAcceptsCreditCards", 0.8),
    ("WheelchairAccessible", 0.25),
)

#: Attributes only non-salon businesses (eateries, shops) carry —
#: salons do not have price ranges or take-out, so neither entity's
#: attribute set is a superset of the other's.
_GENERAL_ATTRIBUTES = (
    ("RestaurantsPriceRange2", 0.7),
    ("GoodForKids", 0.4),
    ("OutdoorSeating", 0.35),
    ("RestaurantsDelivery", 0.3),
    ("RestaurantsTakeOut", 0.45),
    ("HasTV", 0.3),
    ("Ambience", 0.3),
    ("DogsAllowed", 0.15),
    ("NoiseLevel", 0.3),
    ("Alcohol", 0.25),
    ("Caters", 0.2),
)

#: Salon-specific optional attributes (present only for salons).
_SALON_ATTRIBUTES = (
    ("AcceptsInsurance", 0.4),
    ("HairSpecializesIn", 0.6),
)


def _business_id(rng: random.Random) -> str:
    return hex_id(rng, 22)


def _user_id(rng: random.Random) -> str:
    return hex_id(rng, 22)


def _attribute_value(rng: random.Random, name: str):
    if name == "RestaurantsPriceRange2":
        return str(rng.randint(1, 4))
    if name in ("WiFi", "NoiseLevel", "Alcohol"):
        return rng.choice(["'free'", "'no'", "'paid'", "'average'"])
    if name == "HairSpecializesIn":
        return {
            "coloring": rng.random() < 0.7,
            "perms": rng.random() < 0.3,
            "extensions": rng.random() < 0.2,
        }
    if name == "BusinessParking":
        return {
            "garage": rng.random() < 0.2,
            "street": rng.random() < 0.6,
            "lot": rng.random() < 0.4,
            "valet": rng.random() < 0.05,
        }
    if name == "Ambience":
        return {
            "romantic": rng.random() < 0.1,
            "casual": rng.random() < 0.6,
            "classy": rng.random() < 0.15,
        }
    return rng.choice(["True", "False"])


def business_record(rng: random.Random) -> Dict:
    """One row of the business table (with the salon soft FD)."""
    is_salon = rng.random() < SALON_FRACTION
    categories = ["Hair Salons", "Beauty & Spas"] if is_salon else (
        rng.sample(_CATEGORIES, rng.randint(1, 3))
    )
    attributes: Dict = {}
    pool = _COMMON_ATTRIBUTES + (
        _SALON_ATTRIBUTES if is_salon else _GENERAL_ATTRIBUTES
    )
    for name, probability in pool:
        if rng.random() < probability:
            attributes[name] = _attribute_value(rng, name)
    appointment_rate = (
        SALON_APPOINTMENT_RATE if is_salon else NON_SALON_APPOINTMENT_RATE
    )
    if rng.random() < appointment_rate:
        attributes["ByAppointmentOnly"] = "True"
    record = {
        "business_id": _business_id(rng),
        "name": sentence(rng, 2),
        "address": f"{rng.randint(1, 9999)} {word(rng, 7).capitalize()} St",
        "city": word(rng, 8).capitalize(),
        "state": rng.choice(["AZ", "NV", "OH", "PA", "NC", "ON"]),
        "postal_code": f"{rng.randint(10000, 99999)}",
        "latitude": round(rng.uniform(25, 49), 6),
        "longitude": round(rng.uniform(-124, -67), 6),
        "stars": rng.choice([1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0]),
        "review_count": rng.randint(3, 5000),
        "is_open": rng.choice([0, 1]),
        "categories": ", ".join(categories),
    }
    if attributes:
        record["attributes"] = attributes
    if rng.random() < 0.8:
        record["hours"] = {
            day: f"{rng.randint(6, 11)}:0-{rng.randint(17, 23)}:0"
            for day in _DAYS
            if rng.random() < 0.8
        }
    return record


def checkin_record(rng: random.Random) -> Dict:
    """One row of the checkin table: the day→hour→count pivot."""
    time: Dict = {}
    for day in _DAYS:
        if rng.random() < 0.7:
            hours = {
                str(hour): rng.randint(1, 40)
                for hour in range(24)
                if rng.random() < 0.3
            }
            if hours:
                time[day] = hours
    return {"business_id": _business_id(rng), "time": time}


def photo_record(rng: random.Random) -> Dict:
    """One row of the photos table: 4 mandatory fields, no options."""
    return {
        "photo_id": hex_id(rng, 22),
        "business_id": _business_id(rng),
        "caption": sentence(rng, 4),
        "label": rng.choice(["food", "inside", "outside", "drink", "menu"]),
    }


def review_record(rng: random.Random) -> Dict:
    """One row of the review table."""
    return {
        "review_id": hex_id(rng, 22),
        "user_id": _user_id(rng),
        "business_id": _business_id(rng),
        "stars": float(rng.randint(1, 5)),
        "useful": rng.randint(0, 200),
        "funny": rng.randint(0, 100),
        "cool": rng.randint(0, 100),
        "text": sentence(rng, rng.randint(10, 60)),
        "date": f"2018-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
    }


def tip_record(rng: random.Random) -> Dict:
    """One row of the tip table."""
    return {
        "user_id": _user_id(rng),
        "business_id": _business_id(rng),
        "text": sentence(rng, rng.randint(3, 20)),
        "date": f"2018-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        "compliment_count": rng.randint(0, 10),
    }


def user_record(rng: random.Random) -> Dict:
    """One row of the user table."""
    return {
        "user_id": _user_id(rng),
        "name": word(rng, 6).capitalize(),
        "review_count": rng.randint(0, 5000),
        "yelping_since": f"20{rng.randint(5, 18):02d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        "friends": [_user_id(rng) for _ in range(rng.randint(0, 20))],
        "useful": rng.randint(0, 20_000),
        "funny": rng.randint(0, 10_000),
        "cool": rng.randint(0, 10_000),
        "fans": rng.randint(0, 1000),
        "elite": [
            str(year)
            for year in range(2010, 2019)
            if rng.random() < 0.15
        ],
        "average_stars": round(rng.uniform(1.0, 5.0), 2),
        "compliment_hot": rng.randint(0, 500),
        "compliment_more": rng.randint(0, 200),
        "compliment_profile": rng.randint(0, 200),
        "compliment_cute": rng.randint(0, 200),
        "compliment_list": rng.randint(0, 100),
        "compliment_note": rng.randint(0, 500),
        "compliment_plain": rng.randint(0, 1000),
        "compliment_cool": rng.randint(0, 800),
        "compliment_funny": rng.randint(0, 800),
        "compliment_writer": rng.randint(0, 400),
        "compliment_photos": rng.randint(0, 400),
    }


_TABLE_MAKERS = {
    "business": business_record,
    "checkin": checkin_record,
    "photos": photo_record,
    "review": review_record,
    "tip": tip_record,
    "user": user_record,
}


class _YelpTable(DatasetGenerator):
    """Common machinery for the six single-table generators."""

    table: str = ""

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        maker = _TABLE_MAKERS[self.table]
        return [(self.table, maker(rng)) for _ in range(n)]


@register_dataset
class YelpBusiness(_YelpTable):
    name = "yelp-business"
    table = "business"
    default_size = 2000
    entity_labels = ("business",)


@register_dataset
class YelpCheckin(_YelpTable):
    name = "yelp-checkin"
    table = "checkin"
    default_size = 2000
    entity_labels = ("checkin",)


@register_dataset
class YelpPhotos(_YelpTable):
    name = "yelp-photos"
    table = "photos"
    default_size = 2000
    entity_labels = ("photos",)


@register_dataset
class YelpReview(_YelpTable):
    name = "yelp-review"
    table = "review"
    default_size = 2000
    entity_labels = ("review",)


@register_dataset
class YelpTip(_YelpTable):
    name = "yelp-tip"
    table = "tip"
    default_size = 2000
    entity_labels = ("tip",)


@register_dataset
class YelpUser(_YelpTable):
    name = "yelp-user"
    table = "user"
    default_size = 2000
    entity_labels = ("user",)


#: Mixture weights for the merged dataset (review-heavy, like Yelp).
_MERGED_MIX = (
    ("review", 35.0),
    ("user", 15.0),
    ("business", 15.0),
    ("checkin", 12.0),
    ("tip", 13.0),
    ("photos", 10.0),
)


@register_dataset
class YelpMerged(DatasetGenerator):
    """The paper's synthetic union of the six Yelp tables (§7)."""

    name = "yelp-merged"
    default_size = 3000
    entity_labels = tuple(label for label, _ in _MERGED_MIX)

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        labels = [label for label, _ in _MERGED_MIX]
        weights = [weight for _, weight in _MERGED_MIX]
        for _ in range(n):
            table = rng.choices(labels, weights=weights)[0]
            records.append((table, _TABLE_MAKERS[table](rng)))
        return records
