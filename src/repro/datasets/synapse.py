"""Synthetic Matrix Synapse event log (substitute for [19]).

The paper's Synapse table is a multi-year immutable history of state
events with ~36 observable protocol revisions.  The structural features
that matter:

* a two-level nested collection ``signatures: {server: {key_id: sig}}``
  whose outer *and* inner key domains grow with the data — the paper's
  showcase for collection-detection recall (§7.1);
* several event-type entities (``m.room.message``, ``m.room.member``,
  ``m.room.create``, ...) with type-specific ``content``;
* protocol revisions that add envelope fields over time, so the key
  sets drift across the stream.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    hex_id,
    mixture,
    register_dataset,
    sentence,
    word,
)

#: Event-type mixture, loosely matching a busy room's history.
EVENT_MIX = (
    ("m.room.message", 70.0),
    ("m.room.member", 15.0),
    ("m.room.name", 3.0),
    ("m.room.topic", 3.0),
    ("m.room.power_levels", 3.0),
    ("m.room.create", 2.0),
    ("m.room.redaction", 2.0),
    ("m.room.encryption", 2.0),
)

#: Number of simulated protocol revisions across the stream.
REVISIONS = 36

#: Number of distinct federated servers observed in the deployment.
SERVER_POOL = 150

#: Signing keys per server (each server's key ids are stable).
KEYS_PER_SERVER = (1, 2)


def _server_directory(seed: int = 777) -> "List[tuple]":
    """The deployment's server pool with each server's stable key ids.

    The local homeserver (index 0) signs every event; remote servers
    recur with Zipf-ish frequency, as in a real federation.
    """
    rng = random.Random(seed)
    directory = []
    for index in range(SERVER_POOL):
        server = f"{word(rng, 6)}.org" if index else "example.org"
        key_count = rng.randint(*KEYS_PER_SERVER)
        keys = [f"ed25519:a_{word(rng, 4)}" for _ in range(key_count)]
        directory.append((server, keys))
    return directory


_SERVERS = _server_directory()


def _member_pool(seed: int = 778, size: int = 400) -> "List[tuple]":
    """Stable pool of room members as ``(mxid, server_index)`` pairs.

    Members are spread across the federation Zipf-style: a third live
    on the local homeserver, the rest on remote servers, so the server
    that signs an event (the sender's) varies across the stream.
    """
    rng = random.Random(seed)
    members = []
    for _ in range(size):
        if rng.random() < 0.25:
            server_index = 0
        else:
            server_index = min(
                1 + int(rng.expovariate(0.035)), SERVER_POOL - 1
            )
        server_name = _SERVERS[server_index][0]
        members.append((f"@{word(rng, 6)}:{server_name}", server_index))
    return members


_MEMBERS = _member_pool()
_MEMBER_IDS = [mxid for mxid, _ in _MEMBERS]


def _content(rng: random.Random, event_type: str) -> Dict:
    if event_type == "m.room.message":
        content = {
            "msgtype": rng.choice(["m.text", "m.image", "m.notice"]),
            "body": sentence(rng, rng.randint(2, 20)),
        }
        if content["msgtype"] == "m.image":
            content["url"] = f"mxc://example.org/{hex_id(rng, 24)}"
            content["info"] = {
                "mimetype": "image/png",
                "w": rng.randint(100, 4000),
                "h": rng.randint(100, 4000),
                "size": rng.randint(1000, 10_000_000),
            }
        return content
    if event_type == "m.room.member":
        content = {
            "membership": rng.choice(["join", "leave", "invite"]),
            "displayname": word(rng, 7),
        }
        if rng.random() < 0.4:
            content["avatar_url"] = f"mxc://example.org/{hex_id(rng, 24)}"
        return content
    if event_type == "m.room.name":
        return {"name": sentence(rng, 3)}
    if event_type == "m.room.topic":
        return {"topic": sentence(rng, 8)}
    if event_type == "m.room.power_levels":
        return {
            "ban": 50,
            "kick": 50,
            "redact": 50,
            "invite": 0,
            "state_default": 50,
            "events_default": 0,
            "users_default": 0,
            # Collection-like: user id → power level.
            "users": {
                member: rng.choice([0, 50, 100])
                for member in rng.sample(_MEMBER_IDS, rng.randint(1, 6))
            },
            "events": {
                rng.choice(
                    ["m.room.name", "m.room.avatar", "m.room.topic"]
                ): 50
                for _ in range(rng.randint(1, 3))
            },
        }
    if event_type == "m.room.create":
        return {
            "creator": rng.choice(_MEMBER_IDS),
            "room_version": str(rng.randint(1, 9)),
        }
    if event_type == "m.room.redaction":
        return {"reason": sentence(rng, 4)} if rng.random() < 0.5 else {}
    if event_type == "m.room.encryption":
        return {
            "algorithm": "m.megolm.v1.aes-sha2",
            "rotation_period_ms": 604800000,
            "rotation_period_msgs": 100,
        }
    raise ValueError(f"unknown Synapse event type {event_type}")


def _signatures(rng: random.Random, sender_server: int) -> Dict:
    """The two-level nested collection highlighted in §7.1.

    The sender's homeserver signs every event it originates; the local
    homeserver co-signs remote events it relays.  Key ids are stable
    per server, so the inner key domain stays realistic (a few dozen,
    not thousands), while the outer server domain varies with the
    sender — which is what gives the path its high key-space entropy.
    """
    signing = [_SERVERS[sender_server]]
    if sender_server != 0 and rng.random() < 0.5:
        signing.append(_SERVERS[0])
    signatures: Dict = {}
    for server, key_ids in signing:
        keys = {}
        for key_id in key_ids:
            if len(keys) == 0 or rng.random() < 0.5:
                keys[key_id] = hex_id(rng, 86)
        signatures[server] = keys
    return signatures


@register_dataset
class SynapseEvents(DatasetGenerator):
    """Matrix state events with nested signature collections."""

    name = "synapse"
    default_size = 2500
    entity_labels = tuple(label for label, _ in EVENT_MIX)

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        for index in range(n):
            event_type = mixture(rng, EVENT_MIX)
            # The stream position determines the protocol revision;
            # later revisions add envelope fields.
            revision = (index * REVISIONS) // max(n, 1)
            sender, sender_server = rng.choice(_MEMBERS)
            record = {
                "event_id": f"${hex_id(rng, 32)}",
                "type": event_type,
                "room_id": f"!{hex_id(rng, 18)}:example.org",
                "sender": sender,
                "origin_server_ts": rng.randint(
                    1_400_000_000_000, 1_650_000_000_000
                ),
                "content": _content(rng, event_type),
                "signatures": _signatures(rng, sender_server),
                "hashes": {"sha256": hex_id(rng, 43)},
                "depth": rng.randint(1, 500_000),
                "prev_events": [
                    f"${hex_id(rng, 32)}" for _ in range(rng.randint(1, 2))
                ],
            }
            if revision >= 6:
                record["origin"] = "example.org"
            if revision >= 14:
                record["unsigned"] = {"age_ts": rng.randint(0, 10_000_000)}
            if revision >= 24:
                record["auth_events"] = [
                    f"${hex_id(rng, 32)}" for _ in range(rng.randint(1, 3))
                ]
            if event_type == "m.room.member" and revision >= 10:
                record["state_key"] = rng.choice(_MEMBER_IDS)
            records.append((event_type, record))
        return records
