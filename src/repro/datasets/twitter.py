"""Synthetic Twitter stream (substitute for the Decahose sample [32]).

Reproduces the structural hazards the paper calls out:

* **geo tuple arrays** — ``coordinates.coordinates`` is a GeoJSON
  ``[longitude, latitude]`` pair, always length 2 (§3.1's array-as-
  tuple ambiguity);
* **recursive schemas** — ``retweeted_status`` / ``quoted_status``
  nest a full tweet, to bounded depth;
* **multi-entity root** — the stream interleaves tweets with
  ``delete`` notices (a disjoint record shape);
* **object arrays** — ``entities.hashtags`` / ``urls`` /
  ``user_mentions`` are collections of small tuples.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    iso_timestamp,
    register_dataset,
    sentence,
    word,
)

#: Fraction of stream records that are delete notices.
DELETE_FRACTION = 0.08

#: Probability a tweet is a retweet (nests a full tweet one level).
RETWEET_PROBABILITY = 0.25

#: Probability a tweet quotes another tweet.
QUOTE_PROBABILITY = 0.10

#: Probability a tweet carries point coordinates.
GEO_PROBABILITY = 0.15


def _user(rng: random.Random) -> Dict:
    created = iso_timestamp(rng, year=rng.randint(2008, 2019))
    user = {
        "id": rng.randint(1, 3_000_000_000),
        "id_str": str(rng.randint(1, 3_000_000_000)),
        "name": word(rng, 8),
        "screen_name": word(rng, 9),
        "location": word(rng, 7) if rng.random() < 0.6 else None,
        "url": None,
        "description": sentence(rng, 8) if rng.random() < 0.7 else None,
        "verified": rng.random() < 0.02,
        "followers_count": rng.randint(0, 2_000_000),
        "friends_count": rng.randint(0, 10_000),
        "listed_count": rng.randint(0, 5_000),
        "favourites_count": rng.randint(0, 100_000),
        "statuses_count": rng.randint(1, 500_000),
        "created_at": created,
        "lang": rng.choice(["en", "es", "ja", "pt", None]),
    }
    return user


def _entities(rng: random.Random) -> Dict:
    return {
        "hashtags": [
            {"text": word(rng, 6), "indices": [rng.randint(0, 50), rng.randint(51, 140)]}
            for _ in range(rng.randint(0, 3))
        ],
        "urls": [
            {
                "url": f"https://t.co/{word(rng, 10)}",
                "expanded_url": f"https://example.com/{word(rng, 8)}",
                "display_url": f"example.com/{word(rng, 8)}",
                "indices": [rng.randint(0, 50), rng.randint(51, 140)],
            }
            for _ in range(rng.randint(0, 4))
        ],
        "user_mentions": [
            {
                "screen_name": word(rng, 8),
                "name": word(rng, 8),
                "id": rng.randint(1, 3_000_000_000),
                "id_str": str(rng.randint(1, 3_000_000_000)),
                "indices": [rng.randint(0, 50), rng.randint(51, 140)],
            }
            for _ in range(rng.randint(0, 4))
        ],
    }


def _tweet(rng: random.Random, depth: int) -> Dict:
    tweet_id = rng.randint(1_000_000_000_000, 9_999_999_999_999)
    tweet = {
        "created_at": iso_timestamp(rng),
        "id": tweet_id,
        "id_str": str(tweet_id),
        "text": sentence(rng, rng.randint(4, 18)),
        "source": '<a href="http://twitter.com">Twitter Web Client</a>',
        "truncated": rng.random() < 0.1,
        "user": _user(rng),
        "entities": _entities(rng),
        "retweet_count": rng.randint(0, 50_000),
        "favorite_count": rng.randint(0, 100_000),
        "favorited": False,
        "retweeted": False,
        "lang": rng.choice(["en", "es", "ja", "pt", "und"]),
    }
    if rng.random() < GEO_PROBABILITY:
        tweet["coordinates"] = {
            "type": "Point",
            # GeoJSON order: [longitude, latitude] — always 2 elements.
            "coordinates": [
                round(rng.uniform(-180, 180), 5),
                round(rng.uniform(-90, 90), 5),
            ],
        }
    else:
        tweet["coordinates"] = None
    if depth > 0 and rng.random() < RETWEET_PROBABILITY:
        tweet["retweeted_status"] = _tweet(rng, depth - 1)
    if depth > 0 and rng.random() < QUOTE_PROBABILITY:
        quoted = _tweet(rng, depth - 1)
        tweet["quoted_status"] = quoted
        tweet["quoted_status_id"] = quoted["id"]
        tweet["quoted_status_id_str"] = quoted["id_str"]
    return tweet


def _delete_notice(rng: random.Random) -> Dict:
    status_id = rng.randint(1_000_000_000_000, 9_999_999_999_999)
    user_id = rng.randint(1, 3_000_000_000)
    return {
        "delete": {
            "status": {
                "id": status_id,
                "id_str": str(status_id),
                "user_id": user_id,
                "user_id_str": str(user_id),
            },
            "timestamp_ms": str(rng.randint(1_500_000_000_000, 1_600_000_000_000)),
        }
    }


@register_dataset
class TwitterStream(DatasetGenerator):
    """Tweets interleaved with delete notices, recursive to depth 2."""

    name = "twitter"
    default_size = 1500
    entity_labels = ("tweet", "delete")

    #: Maximum retweet/quote nesting depth.
    max_depth = 2

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        for _ in range(n):
            if rng.random() < DELETE_FRACTION:
                records.append(("delete", _delete_notice(rng)))
            else:
                records.append(("tweet", _tweet(rng, self.max_depth)))
        return records
