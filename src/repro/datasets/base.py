"""Dataset generator infrastructure.

The paper evaluates on twelve real corpora plus one synthetic merge.
None are redistributable (and none are fetchable offline), so each is
replaced by a seeded generator that reproduces the *structural*
properties the algorithms consume: key sets, nesting shapes, optional-
field rates, collection key domains, entity mixes, and functional
dependencies.  DESIGN.md §2 documents each substitution.

Every generator is deterministic under ``(n, seed)`` and can label each
record with its ground-truth entity (used by the Table 3 and Table 4
experiments).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import DatasetError
from repro.jsontypes.types import JsonValue

#: A ground-truth-labelled record.
LabeledRecord = Tuple[str, JsonValue]


class DatasetGenerator:
    """Base class for the synthetic corpus generators."""

    #: Registry / CLI name, e.g. ``"github"``.
    name: str = "dataset"
    #: Record count used when none is requested.
    default_size: int = 2000
    #: Ground-truth entity labels (single-entity datasets have one).
    entity_labels: Tuple[str, ...] = ()

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        """``n`` records, each tagged with its ground-truth entity."""
        raise NotImplementedError

    def generate(self, n: int = 0, seed: int = 0) -> List[JsonValue]:
        """``n`` plain records (``n <= 0`` uses :attr:`default_size`)."""
        if n <= 0:
            n = self.default_size
        return [record for _, record in self.generate_labeled(n, seed)]

    def _check_n(self, n: int) -> None:
        if n <= 0:
            raise DatasetError(f"{self.name}: record count must be positive")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DatasetGenerator {self.name!r}>"


_REGISTRY: Dict[str, Callable[[], DatasetGenerator]] = {}


def register_dataset(factory: Callable[[], DatasetGenerator]) -> Callable:
    """Class decorator: register a generator under its ``name``."""
    instance = factory()
    _REGISTRY[instance.name] = factory
    return factory


def make_dataset(name: str) -> DatasetGenerator:
    """Instantiate a registered generator by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    return factory()


def dataset_names() -> List[str]:
    """All registered dataset names, sorted."""
    return sorted(_REGISTRY)


def mixture(
    rng: random.Random,
    weighted: Sequence[Tuple[str, float]],
) -> str:
    """Draw one label from a weighted mixture."""
    total = sum(weight for _, weight in weighted)
    pick = rng.random() * total
    for label, weight in weighted:
        pick -= weight
        if pick <= 0:
            return label
    return weighted[-1][0]


def maybe(rng: random.Random, probability: float) -> bool:
    """Bernoulli draw."""
    return rng.random() < probability


def word(rng: random.Random, length: int = 8) -> str:
    """A pronounceable-ish random token."""
    consonants = "bcdfghjklmnpqrstvwz"
    vowels = "aeiou"
    letters = []
    for index in range(length):
        source = consonants if index % 2 == 0 else vowels
        letters.append(rng.choice(source))
    return "".join(letters)


def sentence(rng: random.Random, words: int = 8) -> str:
    """A short random sentence."""
    return " ".join(word(rng, rng.randint(3, 9)) for _ in range(words))


def iso_timestamp(rng: random.Random, year: int = 2019) -> str:
    """A plausible ISO-8601 timestamp within ``year``."""
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    hour = rng.randint(0, 23)
    minute = rng.randint(0, 59)
    second = rng.randint(0, 59)
    return (
        f"{year:04d}-{month:02d}-{day:02d}"
        f"T{hour:02d}:{minute:02d}:{second:02d}Z"
    )


def hex_id(rng: random.Random, length: int = 22) -> str:
    """A random hexadecimal identifier."""
    return "".join(rng.choice("0123456789abcdef") for _ in range(length))
