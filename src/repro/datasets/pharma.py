"""Synthetic pharmaceutical prescriptions (substitute for [25]).

The Kaggle "prescription-based prediction" dataset: one record per
prescriber, dominated by a collection-like ``cms_prescription_counts``
object mapping **2 397 distinct drug names** to prescription counts.
Nearly every record has a unique type under tuple semantics, which is
what blows K-reduce up (Table 2: entropy ≈ 2 369 bits) and why the
collection-detection heuristic matters (Table 1: JXPLAIN generalizes
to unseen drugs even from a 1% sample).

The drug vocabulary is sampled Zipf-style so common drugs recur across
records while the long tail keeps key-space entropy high.
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    register_dataset,
    word,
)

#: Number of distinct drug names, matching the paper's figure.
DRUG_VOCABULARY_SIZE = 2397

#: Range of drugs prescribed per provider record.
DRUGS_PER_RECORD = (8, 60)

_SPECIALTIES = (
    "Internal Medicine",
    "Family Practice",
    "Cardiology",
    "Nephrology",
    "Psychiatry",
    "Neurology",
    "Urology",
    "Dermatology",
)

_REGIONS = ("Northeast", "South", "Midwest", "West")

_SUFFIXES = (
    "HCL",
    "MESYLATE",
    "SODIUM",
    "TARTRATE",
    "SULFATE",
    "ER",
    "XR",
)


def drug_vocabulary(seed: int = 12345) -> List[str]:
    """The deterministic vocabulary of 2 397 drug names."""
    rng = random.Random(seed)
    names: List[str] = []
    seen = set()
    while len(names) < DRUG_VOCABULARY_SIZE:
        base = word(rng, rng.randint(6, 11)).upper()
        if rng.random() < 0.55:
            candidate = f"{base} {rng.choice(_SUFFIXES)}"
        else:
            candidate = base
        if candidate not in seen:
            seen.add(candidate)
            names.append(candidate)
    return names


_VOCABULARY = drug_vocabulary()

# Zipf-ish cumulative weights: drug i drawn with weight 1 / (i + 10).
_WEIGHTS = [1.0 / (rank + 10.0) for rank in range(DRUG_VOCABULARY_SIZE)]


@register_dataset
class PharmaPrescriptions(DatasetGenerator):
    """Per-provider prescription statistics with a huge drug domain."""

    name = "pharma"
    default_size = 2400
    entity_labels = ("provider",)

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        for _ in range(n):
            low, high = DRUGS_PER_RECORD
            count = rng.randint(low, high)
            drugs = {}
            chosen = rng.choices(_VOCABULARY, weights=_WEIGHTS, k=count)
            for drug in chosen:
                drugs[drug] = rng.randint(11, 600)
            record = {
                "npi": rng.randint(1_000_000_000, 1_999_999_999),
                "provider_variables": {
                    "brand_name_rx_count": rng.randint(0, 800),
                    "generic_rx_count": rng.randint(0, 3000),
                    "specialty": rng.choice(_SPECIALTIES),
                    "years_practicing": rng.randint(1, 45),
                    "gender": rng.choice(["M", "F"]),
                    "region": rng.choice(_REGIONS),
                    "settlement_type": rng.choice(["urban", "non-urban"]),
                },
                "cms_prescription_counts": drugs,
            }
            records.append(("provider", record))
        return records
