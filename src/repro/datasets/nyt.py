"""Synthetic New York Times article archive (substitute for [31]).

The 2019 archive: ~70k articles whose ``multimedia`` arrays are
**multi-entity nested collections** (§3.3's example) — image,
slideshow and video summaries interleave in one array.  Headline and
byline sub-objects carry optional fields; ``keywords`` is a clean
single-entity object array.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    hex_id,
    iso_timestamp,
    register_dataset,
    sentence,
    word,
)

_SECTIONS = (
    "World",
    "U.S.",
    "Business Day",
    "Opinion",
    "Arts",
    "Science",
    "Sports",
    "Technology",
)

_MATERIAL = ("News", "Op-Ed", "Review", "Obituary", "Editorial")


def _multimedia_item(rng: random.Random) -> Dict:
    """One element of the multi-entity ``multimedia`` array."""
    kind = rng.choices(
        ["image", "slideshow", "video"], weights=[80, 12, 8]
    )[0]
    if kind == "image":
        return {
            "type": "image",
            "subtype": rng.choice(["photo", "thumbnail", "xlarge"]),
            "url": f"images/2019/{word(rng, 8)}.jpg",
            "height": rng.randint(50, 2048),
            "width": rng.randint(50, 2048),
            "caption": sentence(rng, 8),
        }
    if kind == "slideshow":
        return {
            "type": "slideshow",
            "url": f"slideshow/2019/{word(rng, 8)}",
            "slide_count": rng.randint(2, 20),
            "credit": word(rng, 10),
        }
    return {
        "type": "video",
        "url": f"video/2019/{word(rng, 8)}",
        "duration_ms": rng.randint(10_000, 600_000),
        "poster": f"images/2019/{word(rng, 8)}.jpg",
        "live": rng.random() < 0.05,
    }


def _headline(rng: random.Random) -> Dict:
    headline = {"main": sentence(rng, 7)}
    if rng.random() < 0.3:
        headline["kicker"] = sentence(rng, 2)
    if rng.random() < 0.5:
        headline["print_headline"] = sentence(rng, 6)
    return headline


def _byline(rng: random.Random) -> Dict:
    people = [
        {
            "firstname": word(rng, 6).capitalize(),
            "lastname": word(rng, 8).capitalize(),
            "role": "reported",
            "rank": index + 1,
        }
        for index in range(rng.randint(1, 3))
    ]
    byline = {
        "original": "By " + " and ".join(
            f"{p['firstname']} {p['lastname']}" for p in people
        ),
        "person": people,
    }
    if rng.random() < 0.1:
        byline["organization"] = "The Associated Press"
    return byline


@register_dataset
class NytArchive(DatasetGenerator):
    """NYT archive articles with multi-entity multimedia arrays."""

    name = "nyt"
    default_size = 1800
    entity_labels = ("article",)

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        for _ in range(n):
            record = {
                "_id": f"nyt://article/{hex_id(rng, 32)}",
                "web_url": f"https://www.nytimes.com/2019/{word(rng, 10)}.html",
                "snippet": sentence(rng, 12),
                "lead_paragraph": sentence(rng, 25),
                "abstract": sentence(rng, 12),
                "source": "The New York Times",
                "multimedia": [
                    _multimedia_item(rng)
                    for _ in range(rng.randint(0, 8))
                ],
                "headline": _headline(rng),
                "keywords": [
                    {
                        "name": rng.choice(
                            ["subject", "glocations", "persons", "organizations"]
                        ),
                        "value": sentence(rng, 2),
                        "rank": rank + 1,
                        "major": "N",
                    }
                    for rank in range(rng.randint(0, 6))
                ],
                "pub_date": iso_timestamp(rng, 2019),
                "document_type": "article",
                "news_desk": rng.choice(_SECTIONS),
                "section_name": rng.choice(_SECTIONS),
                "byline": _byline(rng),
                "type_of_material": rng.choice(_MATERIAL),
                "word_count": rng.randint(100, 5000),
                "uri": f"nyt://article/{hex_id(rng, 32)}",
            }
            if rng.random() < 0.25:
                record["print_page"] = str(rng.randint(1, 40))
            if rng.random() < 0.25:
                record["print_section"] = rng.choice(["A", "B", "C", "D"])
            if rng.random() < 0.15:
                record["subsection_name"] = rng.choice(_SECTIONS)
            records.append(("article", record))
        return records
