"""Synthetic Wikidata entity dump (substitute for [36]).

Wikidata entities are the deepest and widest structures in the paper's
corpus: ``labels`` / ``descriptions`` are language-keyed collection
objects, ``claims`` is a collection object keyed by *property ids*
(the "Linked Data Interface" integer keys) whose values are arrays of
deeply nested statement objects, and ``sitelinks`` is another
collection object.  L-reduce and Bimax-Naive exhaust resources here in
the paper; the generator keeps the same shape at laptop scale.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    hex_id,
    register_dataset,
    sentence,
)

_LANGUAGES = (
    "en", "de", "fr", "es", "it", "nl", "pt", "ru", "ja", "zh",
    "pl", "sv", "ar", "ko", "cs",
)

_SITES = ("enwiki", "dewiki", "frwiki", "eswiki", "itwiki", "ruwiki")

#: Size of the property-id pool for the ``claims`` collection object.
PROPERTY_POOL = 400


def _datavalue(rng: random.Random) -> Dict:
    roll = rng.random()
    if roll < 0.4:
        return {
            "value": {
                "entity-type": "item",
                "numeric-id": rng.randint(1, 90_000_000),
                "id": f"Q{rng.randint(1, 90_000_000)}",
            },
            "type": "wikibase-entityid",
        }
    if roll < 0.7:
        return {"value": sentence(rng, 3), "type": "string"}
    if roll < 0.85:
        return {
            "value": {
                "time": f"+{rng.randint(1400, 2020)}-00-00T00:00:00Z",
                "timezone": 0,
                "before": 0,
                "after": 0,
                "precision": rng.choice([9, 10, 11]),
                "calendarmodel": "http://www.wikidata.org/entity/Q1985727",
            },
            "type": "time",
        }
    return {
        "value": {
            "amount": f"+{rng.randint(1, 100000)}",
            "unit": "1",
        },
        "type": "quantity",
    }


def _statement(rng: random.Random, property_id: str) -> Dict:
    statement = {
        "mainsnak": {
            "snaktype": "value",
            "property": property_id,
            "datavalue": _datavalue(rng),
            "datatype": rng.choice(
                ["wikibase-item", "string", "time", "quantity"]
            ),
        },
        "type": "statement",
        "id": f"Q{rng.randint(1, 90_000_000)}${hex_id(rng, 32)}",
        "rank": rng.choice(["normal", "normal", "normal", "preferred"]),
    }
    if rng.random() < 0.3:
        qualifier_property = f"P{rng.randint(1, PROPERTY_POOL)}"
        statement["qualifiers"] = {
            qualifier_property: [
                {
                    "snaktype": "value",
                    "property": qualifier_property,
                    "datavalue": _datavalue(rng),
                }
            ]
        }
    return statement


@register_dataset
class WikidataDump(DatasetGenerator):
    """Deeply nested Wikidata entities with property-keyed claims."""

    name = "wikidata"
    default_size = 400
    entity_labels = ("item",)

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        for _ in range(n):
            languages = rng.sample(
                _LANGUAGES, rng.randint(2, len(_LANGUAGES))
            )
            labels = {
                lang: {"language": lang, "value": sentence(rng, 2)}
                for lang in languages
            }
            descriptions = {
                lang: {"language": lang, "value": sentence(rng, 6)}
                for lang in rng.sample(languages, rng.randint(1, len(languages)))
            }
            alias_count = rng.randint(0, min(3, len(languages)))
            aliases = {
                lang: [
                    {"language": lang, "value": sentence(rng, 2)}
                    for _ in range(rng.randint(1, 3))
                ]
                for lang in rng.sample(languages, alias_count)
            }
            claims = {}
            for _ in range(rng.randint(3, 15)):
                property_id = f"P{rng.randint(1, PROPERTY_POOL)}"
                claims[property_id] = [
                    _statement(rng, property_id)
                    for _ in range(rng.randint(1, 3))
                ]
            sitelinks = {
                site: {
                    "site": site,
                    "title": sentence(rng, 2),
                    "badges": [],
                }
                for site in rng.sample(_SITES, rng.randint(0, 4))
            }
            record = {
                "type": "item",
                "id": f"Q{rng.randint(1, 90_000_000)}",
                "labels": labels,
                "descriptions": descriptions,
                "aliases": aliases,
                "claims": claims,
                "sitelinks": sitelinks,
                "lastrevid": rng.randint(1, 1_500_000_000),
                "modified": f"2019-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}T00:00:00Z",
            }
            records.append(("item", record))
        return records
