"""Synthetic GitHub event stream (substitute for [15]).

The paper's trace holds 3M events of 10 observed types (of 49
documented).  Every event shares an envelope — ``id``, ``type``,
``actor``, ``repo``, ``payload``, ``public``, ``created_at`` — so the
types are distinguishable *only* through their ``payload`` structure,
which is exactly why entity discovery needs path-based feature vectors
(Section 6.4).  Following the paper's observations:

* GitHub entities have **few optional fields** (Table 4 finds
  Bimax-Naive ≡ Bimax-Merge here);
* several event types' key sets are **subsets** of another's
  (responsible for the "few minor errors" in Table 3);
* an optional ``org`` envelope field appears on a minority of events.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import (
    DatasetGenerator,
    LabeledRecord,
    hex_id,
    iso_timestamp,
    mixture,
    register_dataset,
    sentence,
    word,
)

#: The ten event types in the paper's trace, with stream weights.
EVENT_MIX = (
    ("PushEvent", 45.0),
    ("CreateEvent", 12.0),
    ("IssuesEvent", 8.0),
    ("IssueCommentEvent", 8.0),
    ("WatchEvent", 8.0),
    ("PullRequestEvent", 7.0),
    ("ForkEvent", 4.0),
    ("DeleteEvent", 3.5),
    ("ReleaseEvent", 2.5),
    ("MemberEvent", 2.0),
)


def _actor(rng: random.Random) -> Dict:
    return {
        "id": rng.randint(1, 10_000_000),
        "login": word(rng, 8),
        "gravatar_id": "",
        "url": f"https://api.github.com/users/{word(rng, 8)}",
        "avatar_url": f"https://avatars.githubusercontent.com/u/{rng.randint(1, 999999)}",
    }


def _repo(rng: random.Random) -> Dict:
    name = f"{word(rng, 6)}/{word(rng, 7)}"
    return {
        "id": rng.randint(1, 50_000_000),
        "name": name,
        "url": f"https://api.github.com/repos/{name}",
    }


def _org(rng: random.Random) -> Dict:
    return {
        "id": rng.randint(1, 1_000_000),
        "login": word(rng, 7),
        "url": f"https://api.github.com/orgs/{word(rng, 7)}",
    }


def _commit(rng: random.Random) -> Dict:
    return {
        "sha": hex_id(rng, 40),
        "author": {"email": f"{word(rng, 6)}@example.com", "name": word(rng, 7)},
        "message": sentence(rng, 6),
        "distinct": rng.random() < 0.9,
        "url": f"https://api.github.com/repos/x/y/commits/{hex_id(rng, 40)}",
    }


def _issue(rng: random.Random) -> Dict:
    return {
        "id": rng.randint(1, 900_000_000),
        "number": rng.randint(1, 20_000),
        "title": sentence(rng, 5),
        "state": rng.choice(["open", "closed"]),
        "locked": False,
        "user": _actor(rng),
        "body": sentence(rng, 20),
        "created_at": iso_timestamp(rng),
        "updated_at": iso_timestamp(rng),
        "comments": rng.randint(0, 50),
    }


def _pull_request(rng: random.Random) -> Dict:
    return {
        "id": rng.randint(1, 900_000_000),
        "number": rng.randint(1, 20_000),
        "state": rng.choice(["open", "closed"]),
        "title": sentence(rng, 5),
        "user": _actor(rng),
        "body": sentence(rng, 20),
        "merged": rng.random() < 0.4,
        "additions": rng.randint(0, 5000),
        "deletions": rng.randint(0, 5000),
        "changed_files": rng.randint(1, 60),
        "created_at": iso_timestamp(rng),
    }


def _payload(rng: random.Random, event_type: str) -> Dict:
    if event_type == "PushEvent":
        commits = [_commit(rng) for _ in range(rng.randint(1, 5))]
        return {
            "push_id": rng.randint(1, 10_000_000_000),
            "size": len(commits),
            "distinct_size": len(commits),
            "ref": f"refs/heads/{word(rng, 5)}",
            "head": hex_id(rng, 40),
            "before": hex_id(rng, 40),
            "commits": commits,
        }
    if event_type == "CreateEvent":
        # DeleteEvent's payload keys are a strict subset of these.
        return {
            "ref": word(rng, 6),
            "ref_type": rng.choice(["branch", "tag"]),
            "master_branch": "main",
            "description": sentence(rng, 6),
            "pusher_type": "user",
        }
    if event_type == "DeleteEvent":
        return {
            "ref": word(rng, 6),
            "ref_type": rng.choice(["branch", "tag"]),
            "pusher_type": "user",
        }
    if event_type == "IssuesEvent":
        return {
            "action": rng.choice(["opened", "closed", "reopened"]),
            "issue": _issue(rng),
        }
    if event_type == "IssueCommentEvent":
        return {
            "action": "created",
            "issue": _issue(rng),
            "comment": {
                "id": rng.randint(1, 900_000_000),
                "user": _actor(rng),
                "body": sentence(rng, 15),
                "created_at": iso_timestamp(rng),
            },
        }
    if event_type == "WatchEvent":
        return {"action": "started"}
    if event_type == "PullRequestEvent":
        return {
            "action": rng.choice(["opened", "closed", "synchronize"]),
            "number": rng.randint(1, 20_000),
            "pull_request": _pull_request(rng),
        }
    if event_type == "ForkEvent":
        return {"forkee": _repo(rng) | {"fork": True, "private": False}}
    if event_type == "ReleaseEvent":
        return {
            "action": "published",
            "release": {
                "id": rng.randint(1, 90_000_000),
                "tag_name": f"v{rng.randint(0, 9)}.{rng.randint(0, 20)}",
                "name": word(rng, 6),
                "draft": False,
                "prerelease": rng.random() < 0.2,
                "created_at": iso_timestamp(rng),
                "assets": [
                    {
                        "name": f"{word(rng, 6)}.tar.gz",
                        "size": rng.randint(1000, 10_000_000),
                        "download_count": rng.randint(0, 100_000),
                    }
                    for _ in range(rng.randint(0, 3))
                ],
            },
        }
    if event_type == "MemberEvent":
        return {"action": "added", "member": _actor(rng)}
    raise ValueError(f"unknown GitHub event type {event_type}")


@register_dataset
class GithubEvents(DatasetGenerator):
    """A stream of 10 GitHub event entities sharing one envelope."""

    name = "github"
    default_size = 3000
    entity_labels = tuple(label for label, _ in EVENT_MIX)

    #: Fraction of events carrying the optional ``org`` envelope field.
    org_probability = 0.15

    def generate_labeled(self, n: int, seed: int = 0) -> List[LabeledRecord]:
        self._check_n(n)
        rng = random.Random(seed)
        records: List[LabeledRecord] = []
        for _ in range(n):
            event_type = mixture(rng, EVENT_MIX)
            record = {
                "id": str(rng.randint(10_000_000_000, 99_999_999_999)),
                "type": event_type,
                "actor": _actor(rng),
                "repo": _repo(rng),
                "payload": _payload(rng, event_type),
                "public": True,
                "created_at": iso_timestamp(rng),
            }
            if rng.random() < self.org_probability:
                record["org"] = _org(rng)
            records.append((event_type, record))
        return records
