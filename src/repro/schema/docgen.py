"""Generate Markdown documentation from a discovered schema.

Section 6 opens with GitHub's hand-curated page of 49 event schemas —
and a footnote noting it was out of date at the time of writing.  This
module closes that loop: given a discovered schema, it renders the
page a human would have written — one section per entity, a field
table with requiredness and types, collections called out with their
observed domains.

    from repro.schema.docgen import schema_to_markdown
    print(schema_to_markdown(schema, title="GitHub events"))
"""

from __future__ import annotations

from typing import List, Optional

from repro.schema.entropy import schema_entropy
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    iter_branches,
)
from repro.schema.render import render


def _inline_type(schema: Schema) -> str:
    """A short inline type expression for field tables."""
    if isinstance(schema, PrimitiveSchema):
        return f"`{schema.kind.value}`"
    if isinstance(schema, ArrayCollection):
        return f"array of {_inline_type(schema.element)}"
    if isinstance(schema, ObjectCollection):
        return f"map of {_inline_type(schema.value)}"
    if isinstance(schema, ArrayTuple):
        inner = ", ".join(_inline_type(c) for c in schema.elements)
        return f"tuple [{inner}]"
    if isinstance(schema, ObjectTuple):
        return f"object ({len(schema.all_keys)} fields)"
    if schema is NEVER:
        return "`never`"
    alternatives = list(iter_branches(schema))
    return " or ".join(_inline_type(b) for b in alternatives)


def _entity_name(entity: Schema, index: int) -> str:
    """A readable section name; uses a discriminator-ish field if any.

    Heuristic: single-valued string fields named like discriminators
    (``type``, ``event``, ``kind``) do not survive discovery (values
    are erased), so entities are numbered with their key fingerprint.
    """
    if isinstance(entity, ObjectTuple):
        keys = sorted(entity.required_keys) or sorted(entity.all_keys)
        fingerprint = ", ".join(keys[:3])
        return f"Entity {index + 1} ({fingerprint}, ...)"
    return f"Alternative {index + 1}"


def _field_rows(entity: ObjectTuple) -> List[str]:
    rows = ["| field | required | type |", "|---|---|---|"]
    entries = [(key, child, True) for key, child in entity.required]
    entries += [(key, child, False) for key, child in entity.optional]
    for key, child, required in sorted(entries):
        marker = "yes" if required else "no"
        rows.append(f"| `{key}` | {marker} | {_inline_type(child)} |")
    return rows


def _document_node(
    schema: Schema, heading: str, depth: int, out: List[str]
) -> None:
    prefix = "#" * min(depth, 6)
    if isinstance(schema, ObjectTuple):
        out.append(f"{prefix} {heading}")
        out.append("")
        out.extend(_field_rows(schema))
        out.append("")
        # Document non-trivial nested structures beneath.
        for key, child in schema.required + schema.optional:
            if isinstance(child, ObjectTuple) and child.all_keys:
                _document_node(child, f"`{key}`", depth + 1, out)
            elif isinstance(child, (ObjectCollection, ArrayCollection)):
                _document_collection(child, f"`{key}`", depth + 1, out)
        return
    if isinstance(schema, (ObjectCollection, ArrayCollection)):
        _document_collection(schema, heading, depth, out)
        return
    out.append(f"{prefix} {heading}")
    out.append("")
    out.append(f"Type: {_inline_type(schema)}")
    out.append("")


def _document_collection(
    schema: Schema, heading: str, depth: int, out: List[str]
) -> None:
    prefix = "#" * min(depth, 6)
    out.append(f"{prefix} {heading}")
    out.append("")
    if isinstance(schema, ObjectCollection):
        out.append(
            f"A key/value collection ({schema.domain_size} distinct keys "
            "observed); any key is accepted. Values:"
        )
        out.append("")
        sample = sorted(schema.domain)[:5]
        if sample:
            rendered = ", ".join(f"`{key}`" for key in sample)
            out.append(f"Example keys: {rendered}")
            out.append("")
        out.append(f"Value type: {_inline_type(schema.value)}")
        out.append("")
        if isinstance(schema.value, ObjectTuple) and schema.value.all_keys:
            _document_node(schema.value, "Collection values", depth + 1, out)
    else:
        out.append(
            f"An array collection (up to {schema.max_length_seen} elements "
            "observed); any length is accepted."
        )
        out.append("")
        out.append(f"Element type: {_inline_type(schema.element)}")
        out.append("")
        if isinstance(schema.element, ObjectTuple) and schema.element.all_keys:
            _document_node(
                schema.element, "Array elements", depth + 1, out
            )


def schema_to_markdown(
    schema: Schema,
    *,
    title: str = "Discovered schema",
    description: Optional[str] = None,
) -> str:
    """Render a schema as a Markdown documentation page."""
    out: List[str] = [f"# {title}", ""]
    if description:
        out.append(description)
        out.append("")
    entities = list(iter_branches(schema))
    entropy = schema_entropy(schema)
    out.append(
        f"*{len(entities)} top-level alternative(s); schema entropy "
        f"{entropy:.1f} bits.*"
    )
    out.append("")
    for index, entity in enumerate(entities):
        _document_node(entity, _entity_name(entity, index), 2, out)
    out.append("---")
    out.append("")
    out.append("Raw schema:")
    out.append("")
    out.append("```")
    out.append(render(schema))
    out.append("```")
    return "\n".join(out)
