"""Schema entropy: the log2 number of types a schema admits (§7.2).

The paper's precision proxy, computed in log space — the counts
involved reach 2^2369 (the Pharmaceutical dataset), far beyond floating
point, and arbitrary-precision integers would be astronomical.

Counting rules, following §7.2 ("treating each optional path as a
binary decision ... for collections, we range over the active domain of
the matched object, or over arrays of length up to the longest present
in the data"):

* a primitive admits exactly 1 type;
* a **required** field multiplies by its nested count ``c``; an
  **optional** field is a binary decision: a factor ``1 + c``;
* an ``ObjectCollection`` with an observed active domain of ``D`` keys
  contributes one presence bit per domain key plus the *shared* nested
  schema's choices counted once: ``2^D · c``.  A collection has a
  single nested schema for every key (that is what makes it a
  collection), so its nested decisions are one set of choices — this
  matches the paper's tables, where a collection of primitives scores
  exactly like the same keys as optional primitive fields (Table 2's
  Pharma rows are identical across extractors);
* an ``ArrayCollection`` ranges over lengths ``0..L`` (the longest
  observed): ``(L + 1) · c``;
* a union admits the sum of its branches (branches produced by the
  discovery algorithms are disjoint by construction: distinct
  primitives, or tuple entities with distinct key sets).

:func:`log2_type_count` also offers ``literal_collections=True``: the
fully literal count in which every collection key independently picks
a nested type (``(1 + c)^D``), which compounds doubly-nested
collections into astronomically larger counts.  The ablation benchmark
contrasts the two conventions.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import UnsupportedSchemaError
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    Union,
)

#: log2 of zero admitted types.
LOG2_ZERO = float("-inf")


def log2_add(first: float, second: float) -> float:
    """``log2(2^first + 2^second)``, numerically stable."""
    if first == LOG2_ZERO:
        return second
    if second == LOG2_ZERO:
        return first
    high, low = (first, second) if first >= second else (second, first)
    return high + math.log2(1.0 + 2.0 ** (low - high))


def log2_sum(values: Iterable[float]) -> float:
    """log2 of the sum of ``2^v`` over ``values`` (stable fold)."""
    total = LOG2_ZERO
    for value in values:
        total = log2_add(total, value)
    return total


def log2_one_plus(log_count: float) -> float:
    """``log2(1 + 2^log_count)`` — the optional-field factor."""
    return log2_add(0.0, log_count)


def log2_geometric_sum(log_ratio: float, max_exponent: int) -> float:
    """``log2( sum_{n=0}^{L} c^n )`` where ``log_ratio = log2(c)``.

    Uses the closed form ``(c^(L+1) - 1) / (c - 1)`` when numerically
    safe, falling back to a direct log-sum-exp for small or near-1
    ratios.  Used by the literal-collections counting convention.
    """
    if max_exponent < 0:
        return LOG2_ZERO
    if max_exponent == 0:
        return 0.0
    if log_ratio == LOG2_ZERO:
        # c == 0: only the empty array.
        return 0.0
    if abs(log_ratio) < 1e-12:
        # c == 1: L + 1 equal terms.
        return math.log2(max_exponent + 1)
    if log_ratio > 0 and (max_exponent + 1) * log_ratio > 64:
        # c^(L+1) dwarfs 1; the series is c^(L+1) / (c - 1) to within
        # double precision.
        ratio = 2.0 ** log_ratio if log_ratio < 1020 else None
        if ratio is not None and math.isfinite(ratio):
            return (max_exponent + 1) * log_ratio - math.log2(ratio - 1.0)
        # Enormous ratio: the top term dominates completely.
        return max_exponent * log_ratio
    return log2_sum(n * log_ratio for n in range(max_exponent + 1))


def log2_type_count(
    schema: Schema, *, literal_collections: bool = False
) -> float:
    """log2 of the number of types ``schema`` admits.

    ``literal_collections=False`` (default) uses the paper's decision
    counting for collections; ``True`` uses the fully literal count.
    """
    return _count(schema, literal_collections)


def _count(schema: Schema, literal: bool) -> float:
    if schema is NEVER:
        return LOG2_ZERO
    if isinstance(schema, PrimitiveSchema):
        return 0.0
    if isinstance(schema, Union):
        return log2_sum(_count(b, literal) for b in schema.branches)
    if isinstance(schema, ObjectTuple):
        total = 0.0
        for _, child in schema.required:
            child_count = _count(child, literal)
            if child_count == LOG2_ZERO:
                return LOG2_ZERO
            total += child_count
        for _, child in schema.optional:
            total += log2_one_plus(_count(child, literal))
        return total
    if isinstance(schema, ArrayTuple):
        # Sum over allowed lengths of the product of position counts.
        prefix = 0.0
        prefixes = [0.0]
        dead = False
        for child in schema.elements:
            child_count = _count(child, literal)
            if child_count == LOG2_ZERO:
                dead = True
            if dead:
                prefixes.append(LOG2_ZERO)
                continue
            prefix += child_count
            prefixes.append(prefix)
        allowed = prefixes[schema.min_length : len(schema.elements) + 1]
        return log2_sum(allowed)
    if isinstance(schema, ArrayCollection):
        element_count = _count(schema.element, literal)
        if element_count == LOG2_ZERO:
            return 0.0  # only the empty array
        if literal:
            return log2_geometric_sum(element_count, schema.max_length_seen)
        # Decision counting: a length choice 0..L times one shared set
        # of element choices.
        return math.log2(schema.max_length_seen + 1) + element_count
    if isinstance(schema, ObjectCollection):
        value_count = _count(schema.value, literal)
        if value_count == LOG2_ZERO:
            return 0.0  # only the empty object
        if literal:
            return schema.domain_size * log2_one_plus(value_count)
        # Decision counting: one presence bit per domain key plus the
        # shared value schema's choices counted once.
        return float(schema.domain_size) + value_count
    raise UnsupportedSchemaError(f"not a schema: {schema!r}")


def schema_entropy(
    schema: Schema, *, literal_collections: bool = False
) -> float:
    """Schema entropy as reported in Table 2: ``log2 |schema|``.

    Returns ``-inf`` for the empty schema.
    """
    return log2_type_count(
        schema, literal_collections=literal_collections
    )
