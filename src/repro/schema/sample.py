"""Sampling random values from a schema.

Inverts validation: :func:`sample_value` draws a JSON value the schema
admits.  Uses:

* a *direct* precision measurement — draw records from a discovered
  schema and ask how many a ground-truth oracle accepts (the paper
  measures precision only via the admitted-type count; sampling gives
  the complementary false-positive-rate view, used by the precision
  bench);
* fuzzing validators and generating fixtures in tests (the property
  suite checks every sampled value is admitted by its schema).

Collections range over their observed statistics: object collections
draw keys from their recorded domain (inventing fresh keys with small
probability — which they also admit), array collections draw lengths
up to the observed maximum.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import UnsupportedSchemaError
from repro.jsontypes.kinds import Kind
from repro.jsontypes.types import JsonValue
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    Union,
)

#: Probability an optional field is present in a sampled object.
OPTIONAL_PRESENCE = 0.5

#: Probability a sampled collection key is invented rather than drawn
#: from the observed domain.
FRESH_KEY_RATE = 0.1


def _sample_primitive(kind: Kind, rng: random.Random) -> JsonValue:
    if kind == Kind.NULL:
        return None
    if kind == Kind.BOOLEAN:
        return rng.random() < 0.5
    if kind == Kind.NUMBER:
        if rng.random() < 0.5:
            return rng.randint(-1000, 1000)
        return round(rng.uniform(-1000.0, 1000.0), 4)
    if kind == Kind.STRING:
        alphabet = "abcdefghijklmnopqrstuvwxyz "
        return "".join(
            rng.choice(alphabet) for _ in range(rng.randint(0, 12))
        )
    raise UnsupportedSchemaError(f"not a primitive kind: {kind}")


def sample_value(
    schema: Schema, rng: Optional[random.Random] = None
) -> JsonValue:
    """Draw one JSON value admitted by ``schema``.

    Deterministic given the ``rng``.  Raises
    :class:`~repro.errors.UnsupportedSchemaError` for :data:`NEVER`
    (nothing to sample) and for collections whose element schema is
    NEVER only when a non-empty draw is forced (they yield the empty
    container instead).
    """
    rng = rng or random.Random()
    if schema is NEVER:
        raise UnsupportedSchemaError("cannot sample from the empty schema")
    if isinstance(schema, PrimitiveSchema):
        return _sample_primitive(schema.kind, rng)
    if isinstance(schema, Union):
        return sample_value(rng.choice(schema.branches), rng)
    if isinstance(schema, ObjectTuple):
        value = {}
        for key, child in schema.required:
            value[key] = sample_value(child, rng)
        for key, child in schema.optional:
            if rng.random() < OPTIONAL_PRESENCE:
                value[key] = sample_value(child, rng)
        return value
    if isinstance(schema, ArrayTuple):
        length = rng.randint(schema.min_length, len(schema.elements))
        return [
            sample_value(schema.elements[i], rng) for i in range(length)
        ]
    if isinstance(schema, ArrayCollection):
        if schema.element is NEVER:
            return []
        length = rng.randint(0, max(schema.max_length_seen, 1))
        return [sample_value(schema.element, rng) for _ in range(length)]
    if isinstance(schema, ObjectCollection):
        if schema.value is NEVER:
            return {}
        domain = sorted(schema.domain)
        count = rng.randint(0, max(1, min(len(domain), 8)) if domain else 3)
        value = {}
        for _ in range(count):
            if domain and rng.random() > FRESH_KEY_RATE:
                key = rng.choice(domain)
            else:
                key = "key_" + "".join(
                    rng.choice("abcdefghij") for _ in range(6)
                )
            value[key] = sample_value(schema.value, rng)
        return value
    raise UnsupportedSchemaError(f"not a schema: {schema!r}")


def sample_values(
    schema: Schema, count: int, seed: int = 0
) -> List[JsonValue]:
    """Draw ``count`` admitted values, deterministic under ``seed``."""
    rng = random.Random(seed)
    return [sample_value(schema, rng) for _ in range(count)]


def estimate_false_positive_rate(
    schema: Schema,
    oracle,
    *,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Fraction of schema-sampled records an oracle rejects.

    ``oracle`` is any callable mapping a JSON value to bool (commonly
    another schema's ``admits_value``, or a ground-truth check).  This
    is the sampling counterpart of Table 2's admitted-type count: a
    schema that admits many types its ground truth does not will show
    a high false-positive rate.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = random.Random(seed)
    rejected = 0
    for _ in range(samples):
        value = sample_value(schema, rng)
        if not oracle(value):
            rejected += 1
    return rejected / samples
