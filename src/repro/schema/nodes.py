"""The schema grammar of Section 4 of the paper.

A :class:`Schema` denotes a *set of JSON types* (Definition 1).  The
grammar mirrors the paper's:

* primitives — :class:`PrimitiveSchema`;
* ``ArrayTuple(S, S, ...)`` — fixed positions, possibly with an
  optional suffix (the array analogue of optional fields);
* ``ObjectTuple(k: S, ..., k?: S, ...)`` — required and optional
  fields;
* ``ArrayCollection(S)`` / ``ObjectCollection(S)`` — homogeneous
  collections of any length / over any key set;
* ``Union(S, S, ...)`` — alternatives; the empty union is
  :data:`NEVER`, which admits nothing.

Collection nodes additionally carry the *observed* key domain or
maximum length from the training data.  Admission ignores these (a
collection admits any keys / any length — that is the point of a
collection), but schema-entropy computation (Section 7.2) ranges over
them, so storing them makes entropy a function of the schema alone.

All nodes are immutable and hashable; :func:`union` normalizes
(flattens nested unions, deduplicates, drops :data:`NEVER`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import SchemaConstructionError
from repro.jsontypes.kinds import Kind
from repro.jsontypes.types import (
    ArrayType,
    JsonType,
    JsonValue,
    ObjectType,
    PrimitiveType,
    type_of,
)


class Schema:
    """Base class: a set of admitted JSON types."""

    __slots__ = ()

    def admits_type(self, tau: JsonType) -> bool:
        """Is ``tau`` an element of this schema (Definition 1)?"""
        raise NotImplementedError

    def admits_value(self, value: JsonValue) -> bool:
        """Does the schema admit the type of ``value``?"""
        return self.admits_type(type_of(value))

    def children(self) -> Iterator["Schema"]:
        """Directly nested schemas."""
        return iter(())

    def node_count(self) -> int:
        """Number of schema nodes, a proxy for description size."""
        return 1 + sum(child.node_count() for child in self.children())

    def depth(self) -> int:
        child_depth = max(
            (child.depth() for child in self.children()), default=0
        )
        return 1 + child_depth

    def walk(self) -> Iterator["Schema"]:
        """Iterate over every node of the schema tree, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for klass in type(self).__mro__
            for slot in getattr(klass, "__slots__", ())
        }

    def __setstate__(self, state):
        # Schemas ship to worker processes inside entity-merge tasks.
        # The immutability guard blocks plain setattr, so restoration
        # goes through object.__setattr__, exactly like __init__.
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def __repr__(self) -> str:
        from repro.schema.render import render

        return render(self, compact=True)


class _Never(Schema):
    """The empty schema: admits no type.  The identity of union."""

    __slots__ = ()
    _instance: Optional["_Never"] = None

    def __new__(cls) -> "_Never":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def admits_type(self, tau: JsonType) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash("repro.schema.NEVER")


#: The empty schema.
NEVER = _Never()


class PrimitiveSchema(Schema):
    """A singleton schema for one primitive type."""

    __slots__ = ("kind",)

    _interned: dict = {}

    def __new__(cls, kind: Kind) -> "PrimitiveSchema":
        if not kind.is_primitive:
            raise SchemaConstructionError(
                f"{kind} is not a primitive kind"
            )
        cached = cls._interned.get(kind)
        if cached is None:
            cached = super().__new__(cls)
            object.__setattr__(cached, "kind", kind)
            cls._interned[kind] = cached
        return cached

    def __setattr__(self, name, value):
        raise AttributeError("PrimitiveSchema is immutable")

    def admits_type(self, tau: JsonType) -> bool:
        return isinstance(tau, PrimitiveType) and tau.kind == self.kind

    def __eq__(self, other) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash((PrimitiveSchema, self.kind))

    def __reduce__(self):
        # Unpickling re-enters __new__, which re-interns: primitive
        # schema singletons survive a round trip to a worker process
        # (the default reduce calls __new__ with no arguments and
        # breaks instead).
        return (PrimitiveSchema, (self.kind,))


#: Primitive schema singletons.
BOOLEAN_S = PrimitiveSchema(Kind.BOOLEAN)
NUMBER_S = PrimitiveSchema(Kind.NUMBER)
STRING_S = PrimitiveSchema(Kind.STRING)
NULL_S = PrimitiveSchema(Kind.NULL)

PRIMITIVE_SCHEMAS: Mapping[Kind, PrimitiveSchema] = {
    Kind.BOOLEAN: BOOLEAN_S,
    Kind.NUMBER: NUMBER_S,
    Kind.STRING: STRING_S,
    Kind.NULL: NULL_S,
}


class ObjectTuple(Schema):
    """Tuple-like objects: required and optional fields.

    Admits any object type with all required keys, no keys outside
    ``required ∪ optional``, and every present field's type admitted by
    the corresponding nested schema.
    """

    __slots__ = ("required", "optional", "_hash")

    def __init__(
        self,
        required: Mapping[str, Schema] = (),
        optional: Mapping[str, Schema] = (),
    ):
        req = tuple(sorted(dict(required).items()))
        opt = tuple(sorted(dict(optional).items()))
        req_keys = {key for key, _ in req}
        overlap = req_keys & {key for key, _ in opt}
        if overlap:
            raise SchemaConstructionError(
                f"fields cannot be both required and optional: {sorted(overlap)}"
            )
        for key, child in req + opt:
            if not isinstance(child, Schema):
                raise SchemaConstructionError(
                    f"field {key!r} maps to non-schema {child!r}"
                )
        object.__setattr__(self, "required", req)
        object.__setattr__(self, "optional", opt)
        object.__setattr__(self, "_hash", hash((ObjectTuple, req, opt)))

    def __setattr__(self, name, value):
        raise AttributeError("ObjectTuple is immutable")

    @property
    def required_keys(self) -> frozenset:
        return frozenset(key for key, _ in self.required)

    @property
    def optional_keys(self) -> frozenset:
        return frozenset(key for key, _ in self.optional)

    @property
    def all_keys(self) -> frozenset:
        return self.required_keys | self.optional_keys

    def field_schema(self, key: str) -> Schema:
        """The nested schema for ``key`` (required or optional)."""
        for name, child in self.required + self.optional:
            if name == key:
                return child
        raise KeyError(key)

    def admits_type(self, tau: JsonType) -> bool:
        if not isinstance(tau, ObjectType):
            return False
        present = tau.key_set()
        if not self.required_keys <= present:
            return False
        if not present <= self.all_keys:
            return False
        return all(
            self.field_schema(key).admits_type(value)
            for key, value in tau.items()
        )

    def children(self) -> Iterator[Schema]:
        for _, child in self.required + self.optional:
            yield child

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ObjectTuple)
            and self.required == other.required
            and self.optional == other.optional
        )

    def __hash__(self) -> int:
        return self._hash


class ArrayTuple(Schema):
    """Tuple-like arrays: fixed positions with an optional suffix.

    ``elements[i]`` is the schema of position ``i``; arrays of any
    length between ``min_length`` and ``len(elements)`` are admitted
    (positions past ``min_length`` are optional, trailing-only — the
    natural array analogue of optional object fields).
    """

    __slots__ = ("elements", "min_length", "_hash")

    def __init__(self, elements: Sequence[Schema], min_length: Optional[int] = None):
        items = tuple(elements)
        for child in items:
            if not isinstance(child, Schema):
                raise SchemaConstructionError(
                    f"array position maps to non-schema {child!r}"
                )
        if min_length is None:
            min_length = len(items)
        if not 0 <= min_length <= len(items):
            raise SchemaConstructionError(
                f"min_length {min_length} out of range 0..{len(items)}"
            )
        object.__setattr__(self, "elements", items)
        object.__setattr__(self, "min_length", min_length)
        object.__setattr__(
            self, "_hash", hash((ArrayTuple, items, min_length))
        )

    def __setattr__(self, name, value):
        raise AttributeError("ArrayTuple is immutable")

    def admits_type(self, tau: JsonType) -> bool:
        if not isinstance(tau, ArrayType):
            return False
        if not self.min_length <= len(tau) <= len(self.elements):
            return False
        return all(
            self.elements[i].admits_type(tau.elements[i])
            for i in range(len(tau))
        )

    def children(self) -> Iterator[Schema]:
        return iter(self.elements)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayTuple)
            and self.elements == other.elements
            and self.min_length == other.min_length
        )

    def __hash__(self) -> int:
        return self._hash


class ArrayCollection(Schema):
    """Collection-like arrays: ``[S]*``.

    Admits any array type, of any length, whose elements are all
    admitted by ``element``.  ``max_length_seen`` records the longest
    array observed in training; admission ignores it, schema entropy
    ranges over it.
    """

    __slots__ = ("element", "max_length_seen", "_hash")

    def __init__(self, element: Schema, max_length_seen: int = 0):
        if not isinstance(element, Schema):
            raise SchemaConstructionError(
                f"collection element is not a schema: {element!r}"
            )
        if max_length_seen < 0:
            raise SchemaConstructionError("max_length_seen must be >= 0")
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "max_length_seen", int(max_length_seen))
        object.__setattr__(
            self, "_hash", hash((ArrayCollection, element, max_length_seen))
        )

    def __setattr__(self, name, value):
        raise AttributeError("ArrayCollection is immutable")

    def admits_type(self, tau: JsonType) -> bool:
        if not isinstance(tau, ArrayType):
            return False
        return all(self.element.admits_type(item) for item in tau.elements)

    def children(self) -> Iterator[Schema]:
        yield self.element

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayCollection)
            and self.element == other.element
            and self.max_length_seen == other.max_length_seen
        )

    def __hash__(self) -> int:
        return self._hash


class ObjectCollection(Schema):
    """Collection-like objects: ``{*: S}*``.

    Admits any object type, over any key set, whose field types are all
    admitted by ``value``.  ``domain`` records the active key domain
    observed in training; admission ignores it, entropy ranges over it.
    """

    __slots__ = ("value", "domain", "_hash")

    def __init__(self, value: Schema, domain: Iterable[str] = ()):
        if not isinstance(value, Schema):
            raise SchemaConstructionError(
                f"collection value is not a schema: {value!r}"
            )
        dom = frozenset(domain)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "domain", dom)
        object.__setattr__(
            self, "_hash", hash((ObjectCollection, value, dom))
        )

    def __setattr__(self, name, value):
        raise AttributeError("ObjectCollection is immutable")

    @property
    def domain_size(self) -> int:
        return len(self.domain)

    def admits_type(self, tau: JsonType) -> bool:
        if not isinstance(tau, ObjectType):
            return False
        return all(
            self.value.admits_type(child) for _, child in tau.items()
        )

    def children(self) -> Iterator[Schema]:
        yield self.value

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ObjectCollection)
            and self.value == other.value
            and self.domain == other.domain
        )

    def __hash__(self) -> int:
        return self._hash


class Union(Schema):
    """A union of alternative schemas.

    Construct through :func:`union`, which normalizes; the raw
    constructor requires at least two distinct, non-union branches.
    """

    __slots__ = ("branches", "_hash")

    def __init__(self, branches: Sequence[Schema]):
        items = tuple(branches)
        if len(items) < 2:
            raise SchemaConstructionError(
                "Union requires >= 2 branches; use union() to normalize"
            )
        for child in items:
            if not isinstance(child, Schema):
                raise SchemaConstructionError(
                    f"union branch is not a schema: {child!r}"
                )
            if isinstance(child, (Union, _Never)):
                raise SchemaConstructionError(
                    "Union branches must be normalized; use union()"
                )
        object.__setattr__(self, "branches", items)
        object.__setattr__(self, "_hash", hash((Union, frozenset(items))))

    def __setattr__(self, name, value):
        raise AttributeError("Union is immutable")

    def admits_type(self, tau: JsonType) -> bool:
        return any(branch.admits_type(tau) for branch in self.branches)

    def children(self) -> Iterator[Schema]:
        return iter(self.branches)

    def __eq__(self, other) -> bool:
        # Branch order is presentation only; the denoted set is the same.
        return isinstance(other, Union) and frozenset(self.branches) == frozenset(
            other.branches
        )

    def __hash__(self) -> int:
        return self._hash


def union(*branches: Schema) -> Schema:
    """Normalized union: flatten, deduplicate, drop NEVER.

    Returns :data:`NEVER` for an empty union and the branch itself for
    a singleton.
    """
    flat: list = []
    seen = set()

    def emit(node: Schema) -> None:
        if node is NEVER:
            return
        if isinstance(node, Union):
            for child in node.branches:
                emit(child)
            return
        if node not in seen:
            seen.add(node)
            flat.append(node)

    for branch in branches:
        emit(branch)
    if not flat:
        return NEVER
    if len(flat) == 1:
        return flat[0]
    return Union(flat)


def union_of(branches: Iterable[Schema]) -> Schema:
    """:func:`union` over an iterable."""
    return union(*branches)


def exact_schema(tau: JsonType) -> Schema:
    """The singleton schema admitting exactly ``tau``.

    This is the record-level building block of the L-reduction: objects
    become all-required :class:`ObjectTuple`, arrays become
    fixed-length :class:`ArrayTuple`.
    """
    if isinstance(tau, PrimitiveType):
        return PRIMITIVE_SCHEMAS[tau.kind]
    if isinstance(tau, ObjectType):
        return ObjectTuple(
            {key: exact_schema(value) for key, value in tau.items()}
        )
    if isinstance(tau, ArrayType):
        return ArrayTuple(tuple(exact_schema(item) for item in tau.elements))
    raise SchemaConstructionError(f"not a JSON type: {tau!r}")


def iter_branches(schema: Schema) -> Iterator[Schema]:
    """Iterate over the top-level alternatives of a schema."""
    if schema is NEVER:
        return
    if isinstance(schema, Union):
        yield from schema.branches
    else:
        yield schema


def entity_count(schema: Schema) -> int:
    """Number of tuple-like *entities* in a schema (Section 4.3).

    Counts every :class:`ObjectTuple` and :class:`ArrayTuple` node in
    the whole schema tree.
    """
    return sum(
        1
        for node in schema.walk()
        if isinstance(node, (ObjectTuple, ArrayTuple))
    )


def top_level_entity_count(schema: Schema) -> int:
    """Number of tuple-like entities among the top-level alternatives."""
    return sum(
        1
        for node in iter_branches(schema)
        if isinstance(node, (ObjectTuple, ArrayTuple))
    )
