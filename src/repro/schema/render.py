"""Human-readable rendering of schemas.

The output mirrors the paper's shorthand notation:

* ``{ts: number, user?: {...}}`` — object tuples with ``?`` marking
  optional fields;
* ``[number, number]`` — array tuples (an optional suffix is marked
  with ``?`` on each optional position);
* ``[string]*`` and ``{*: number}*`` — collections;
* ``A | B`` — unions;
* ``never`` — the empty schema.
"""

from __future__ import annotations

from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    Union,
)

_INDENT = "  "


def render(schema: Schema, *, compact: bool = False, indent: int = 0) -> str:
    """Render a schema as text.

    ``compact=True`` produces a single line; otherwise nested objects
    are pretty-printed across lines.
    """
    if schema is NEVER:
        return "never"
    if isinstance(schema, PrimitiveSchema):
        return schema.kind.value
    if isinstance(schema, Union):
        parts = [
            render(branch, compact=compact, indent=indent)
            for branch in schema.branches
        ]
        return " | ".join(parts)
    if isinstance(schema, ArrayCollection):
        inner = render(schema.element, compact=compact, indent=indent)
        return f"[{inner}]*"
    if isinstance(schema, ObjectCollection):
        inner = render(schema.value, compact=compact, indent=indent)
        return f"{{*: {inner}}}*"
    if isinstance(schema, ArrayTuple):
        parts = []
        for position, child in enumerate(schema.elements):
            text = render(child, compact=compact, indent=indent)
            if position >= schema.min_length:
                text += "?"
            parts.append(text)
        return "[" + ", ".join(parts) + "]"
    if isinstance(schema, ObjectTuple):
        return _render_object_tuple(schema, compact=compact, indent=indent)
    raise TypeError(f"not a schema: {schema!r}")


def _render_object_tuple(
    schema: ObjectTuple, *, compact: bool, indent: int
) -> str:
    entries = [(key, child, False) for key, child in schema.required]
    entries += [(key, child, True) for key, child in schema.optional]
    entries.sort(key=lambda item: item[0])
    if not entries:
        return "{}"
    rendered = []
    for key, child, is_optional in entries:
        marker = "?" if is_optional else ""
        text = render(child, compact=compact, indent=indent + 1)
        rendered.append(f"{key}{marker}: {text}")
    if compact:
        return "{" + ", ".join(rendered) + "}"
    pad = _INDENT * (indent + 1)
    close_pad = _INDENT * indent
    body = (",\n" + pad).join(rendered)
    return "{\n" + pad + body + "\n" + close_pad + "}"


def summary(schema: Schema) -> str:
    """A one-line summary: node count, depth, entity count."""
    from repro.schema.nodes import entity_count

    return (
        f"<schema nodes={schema.node_count()} depth={schema.depth()} "
        f"entities={entity_count(schema)}>"
    )
