"""Schema subsumption and union simplification.

``subsumes(a, b)`` decides (conservatively) whether every type admitted
by ``b`` is admitted by ``a`` — i.e. ``b ⊆ a`` as sets of types.  It is
sound but not complete: a ``True`` answer is always correct, while some
true containments involving unions distributed over object fields
return ``False``.  That is the right trade-off for its two uses:

* :func:`simplify_union` — drop union branches admitted by a sibling
  (discovery can produce an entity whose types another entity already
  covers, e.g. the all-optional K-reduce tuple next to L-reduce exact
  branches);
* regression checks of the form "the JXPLAIN schema admits no type the
  K-reduce schema does not" in tests and benches.
"""

from __future__ import annotations

from typing import List

from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    Union,
    union,
)


def subsumes(wider: Schema, narrower: Schema) -> bool:
    """Conservatively decide whether ``narrower ⊆ wider``.

    ``True`` guarantees every type admitted by ``narrower`` is admitted
    by ``wider``; ``False`` is inconclusive.
    """
    if narrower is NEVER:
        return True
    if wider is NEVER:
        return False
    if wider == narrower:
        return True
    # A union on the narrow side must be covered branch by branch.
    if isinstance(narrower, Union):
        return all(subsumes(wider, branch) for branch in narrower.branches)
    # A union on the wide side covers if any branch does (sound but
    # incomplete: cross-branch coverage is not attempted).
    if isinstance(wider, Union):
        return any(subsumes(branch, narrower) for branch in wider.branches)
    if isinstance(wider, PrimitiveSchema) or isinstance(
        narrower, PrimitiveSchema
    ):
        return wider == narrower
    if isinstance(wider, ObjectTuple) and isinstance(narrower, ObjectTuple):
        return _object_tuple_subsumes(wider, narrower)
    if isinstance(wider, ArrayTuple) and isinstance(narrower, ArrayTuple):
        return _array_tuple_subsumes(wider, narrower)
    if isinstance(wider, ObjectCollection):
        return _object_collection_subsumes(wider, narrower)
    if isinstance(wider, ArrayCollection):
        return _array_collection_subsumes(wider, narrower)
    return False


def _object_tuple_subsumes(wider: ObjectTuple, narrower: ObjectTuple) -> bool:
    # Every key the narrow schema may produce must be allowed...
    if not narrower.all_keys <= wider.all_keys:
        return False
    # ... every key the wide schema demands must always be present ...
    if not wider.required_keys <= narrower.required_keys:
        return False
    # ... and each shared field's types must be contained.
    return all(
        subsumes(wider.field_schema(key), narrower.field_schema(key))
        for key in narrower.all_keys
    )


def _array_tuple_subsumes(wider: ArrayTuple, narrower: ArrayTuple) -> bool:
    if narrower.min_length < wider.min_length:
        return False
    if len(narrower.elements) > len(wider.elements):
        return False
    return all(
        subsumes(wider.elements[i], narrower.elements[i])
        for i in range(len(narrower.elements))
    )


def _object_collection_subsumes(
    wider: ObjectCollection, narrower: Schema
) -> bool:
    if isinstance(narrower, ObjectCollection):
        return subsumes(wider.value, narrower.value)
    if isinstance(narrower, ObjectTuple):
        return all(
            subsumes(wider.value, child)
            for _, child in narrower.required + narrower.optional
        )
    return False


def _array_collection_subsumes(
    wider: ArrayCollection, narrower: Schema
) -> bool:
    if isinstance(narrower, ArrayCollection):
        return subsumes(wider.element, narrower.element)
    if isinstance(narrower, ArrayTuple):
        return all(
            subsumes(wider.element, child) for child in narrower.elements
        )
    return False


def simplify_union(schema: Schema) -> Schema:
    """Drop union branches another branch already subsumes.

    Applied recursively to nested schemas.  The result admits exactly
    the same set of types (subsumption is sound), with a smaller
    description.
    """
    schema = _simplify_children(schema)
    if not isinstance(schema, Union):
        return schema
    branches: List[Schema] = list(schema.branches)
    kept: List[Schema] = []
    for index, branch in enumerate(branches):
        covered = False
        for other_index, other in enumerate(branches):
            if other_index == index or not subsumes(other, branch):
                continue
            # Mutual subsumption (two spellings of the same set):
            # keep only the earliest spelling.
            if subsumes(branch, other) and other_index > index:
                continue
            covered = True
            break
        if not covered:
            kept.append(branch)
    return union(*kept)


def _simplify_children(schema: Schema) -> Schema:
    if isinstance(schema, Union):
        return union(*(simplify_union(b) for b in schema.branches))
    if isinstance(schema, ObjectTuple):
        return ObjectTuple(
            {k: simplify_union(v) for k, v in schema.required},
            {k: simplify_union(v) for k, v in schema.optional},
        )
    if isinstance(schema, ArrayTuple):
        return ArrayTuple(
            tuple(simplify_union(child) for child in schema.elements),
            schema.min_length,
        )
    if isinstance(schema, ArrayCollection):
        return ArrayCollection(
            simplify_union(schema.element), schema.max_length_seen
        )
    if isinstance(schema, ObjectCollection):
        return ObjectCollection(simplify_union(schema.value), schema.domain)
    return schema
