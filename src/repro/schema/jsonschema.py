"""Export / import between the internal grammar and JSON Schema.

The internal grammar is the subset of the json-schema.org specification
identified in Section 4 of the paper, so the mapping is direct:

========================  =============================================
internal node             JSON Schema
========================  =============================================
``PrimitiveSchema``       ``{"type": "number" | "string" | ...}``
``ObjectTuple``           ``{"type": "object", "properties": ...,
                          "required": [...],
                          "additionalProperties": false}``
``ArrayTuple``            ``{"type": "array", "prefixItems": [...],
                          "minItems": m, "maxItems": n, "items": false}``
``ObjectCollection``      ``{"type": "object",
                          "additionalProperties": S}``
``ArrayCollection``       ``{"type": "array", "items": S}``
``Union``                 ``{"anyOf": [...]}``
``NEVER``                 ``false``
========================  =============================================

Collection statistics (active domain, longest observed array) ride
along in an ``x-repro`` extension object so export → import round-trips
exactly, including schema entropy.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import UnsupportedSchemaError
from repro.jsontypes.kinds import Kind
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PRIMITIVE_SCHEMAS,
    PrimitiveSchema,
    Schema,
    Union,
    union,
)

_KIND_TO_NAME = {
    Kind.BOOLEAN: "boolean",
    Kind.NUMBER: "number",
    Kind.STRING: "string",
    Kind.NULL: "null",
}
_NAME_TO_KIND = {name: kind for kind, name in _KIND_TO_NAME.items()}

#: ``$schema`` identifier attached to exported root documents.
DIALECT = "https://json-schema.org/draft/2020-12/schema"


def to_json_schema(schema: Schema, *, root: bool = True) -> Any:
    """Convert an internal schema to a JSON Schema document (a dict).

    ``root=True`` attaches the ``$schema`` dialect marker.
    """
    document = _node_to_json(schema)
    if root and isinstance(document, dict):
        document = {"$schema": DIALECT, **document}
    return document


def _node_to_json(schema: Schema) -> Any:
    if schema is NEVER:
        return False
    if isinstance(schema, PrimitiveSchema):
        return {"type": _KIND_TO_NAME[schema.kind]}
    if isinstance(schema, Union):
        return {"anyOf": [_node_to_json(b) for b in schema.branches]}
    if isinstance(schema, ObjectTuple):
        properties: Dict[str, Any] = {}
        for key, child in schema.required + schema.optional:
            properties[key] = _node_to_json(child)
        document: Dict[str, Any] = {
            "type": "object",
            "properties": properties,
            "additionalProperties": False,
        }
        required = sorted(schema.required_keys)
        if required:
            document["required"] = required
        return document
    if isinstance(schema, ArrayTuple):
        document = {
            "type": "array",
            "prefixItems": [_node_to_json(c) for c in schema.elements],
            "minItems": schema.min_length,
            "maxItems": len(schema.elements),
            "items": False,
        }
        return document
    if isinstance(schema, ArrayCollection):
        return {
            "type": "array",
            "items": _node_to_json(schema.element),
            "x-repro": {"maxLengthSeen": schema.max_length_seen},
        }
    if isinstance(schema, ObjectCollection):
        return {
            "type": "object",
            "additionalProperties": _node_to_json(schema.value),
            "x-repro": {"domain": sorted(schema.domain)},
        }
    raise UnsupportedSchemaError(f"not a schema: {schema!r}")


def from_json_schema(document: Any) -> Schema:
    """Parse a JSON Schema document produced by :func:`to_json_schema`.

    Only the subset emitted by this module is accepted; anything else
    raises :class:`~repro.errors.UnsupportedSchemaError`.
    """
    if document is False:
        return NEVER
    if not isinstance(document, dict):
        raise UnsupportedSchemaError(
            f"unsupported JSON Schema document: {document!r}"
        )
    body = {k: v for k, v in document.items() if k != "$schema"}
    if "anyOf" in body:
        return union(*(from_json_schema(b) for b in body["anyOf"]))
    type_name = body.get("type")
    if type_name in _NAME_TO_KIND:
        return PRIMITIVE_SCHEMAS[_NAME_TO_KIND[type_name]]
    if type_name == "object":
        extra = body.get("additionalProperties", True)
        # ``additionalProperties: false`` is ambiguous: it closes an
        # object tuple, but it is also how a collection whose value
        # schema is NEVER (only the empty object) exports.  The
        # ``x-repro`` domain marker — written only for collections —
        # resolves it, so both forms round-trip exactly.
        if extra is False and "domain" not in body.get("x-repro", {}):
            properties = body.get("properties", {})
            required_keys = set(body.get("required", ()))
            unknown = required_keys - set(properties)
            if unknown:
                raise UnsupportedSchemaError(
                    f"required keys without properties: {sorted(unknown)}"
                )
            required = {
                key: from_json_schema(value)
                for key, value in properties.items()
                if key in required_keys
            }
            optional = {
                key: from_json_schema(value)
                for key, value in properties.items()
                if key not in required_keys
            }
            return ObjectTuple(required, optional)
        domain = body.get("x-repro", {}).get("domain", ())
        return ObjectCollection(from_json_schema(extra), domain)
    if type_name == "array":
        if "prefixItems" in body:
            elements = tuple(
                from_json_schema(value) for value in body["prefixItems"]
            )
            min_length = body.get("minItems", len(elements))
            return ArrayTuple(elements, min_length)
        items = body.get("items")
        if items is None:
            raise UnsupportedSchemaError(
                "array schema requires items or prefixItems"
            )
        max_seen = body.get("x-repro", {}).get("maxLengthSeen", 0)
        return ArrayCollection(from_json_schema(items), max_seen)
    raise UnsupportedSchemaError(
        f"unsupported JSON Schema fragment: {document!r}"
    )
