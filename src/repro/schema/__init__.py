"""Schema grammar, admission, entropy, rendering, and JSON Schema IO.

Implements Section 4's grammar with the admission semantics of
Definition 1, plus the schema-entropy measure of Section 7.2.
"""

from repro.schema.entropy import (
    LOG2_ZERO,
    log2_add,
    log2_geometric_sum,
    log2_one_plus,
    log2_sum,
    log2_type_count,
    schema_entropy,
)
from repro.schema.docgen import schema_to_markdown
from repro.schema.enrich import annotate_json_schema
from repro.schema.jsonschema import DIALECT, from_json_schema, to_json_schema
from repro.schema.subsume import simplify_union, subsumes
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    BOOLEAN_S,
    NEVER,
    NULL_S,
    NUMBER_S,
    ObjectCollection,
    ObjectTuple,
    PRIMITIVE_SCHEMAS,
    PrimitiveSchema,
    STRING_S,
    Schema,
    Union,
    entity_count,
    exact_schema,
    iter_branches,
    top_level_entity_count,
    union,
    union_of,
)
from repro.schema.render import render, summary
from repro.schema.sample import (
    estimate_false_positive_rate,
    sample_value,
    sample_values,
)

__all__ = [
    "ArrayCollection",
    "ArrayTuple",
    "BOOLEAN_S",
    "DIALECT",
    "LOG2_ZERO",
    "NEVER",
    "NULL_S",
    "NUMBER_S",
    "ObjectCollection",
    "ObjectTuple",
    "PRIMITIVE_SCHEMAS",
    "PrimitiveSchema",
    "STRING_S",
    "Schema",
    "Union",
    "annotate_json_schema",
    "entity_count",
    "estimate_false_positive_rate",
    "exact_schema",
    "from_json_schema",
    "iter_branches",
    "log2_add",
    "log2_geometric_sum",
    "log2_one_plus",
    "log2_sum",
    "log2_type_count",
    "render",
    "sample_value",
    "sample_values",
    "schema_entropy",
    "schema_to_markdown",
    "simplify_union",
    "subsumes",
    "summary",
    "to_json_schema",
    "top_level_entity_count",
    "union",
    "union_of",
]
