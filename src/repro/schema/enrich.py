"""Value-domain annotations for exported JSON Schema documents.

Structural discovery says what *shapes* the data takes; the PR-8
enrichment sidecar (:mod:`repro.discovery.sketches`) additionally
remembers, per leaf path, what *values* lived there.  This module
joins the two: :func:`annotate_json_schema` walks a document produced
by :func:`~repro.schema.jsonschema.to_json_schema` in lockstep with an
:class:`~repro.discovery.sketches.EnrichmentState` and decorates every
scalar position with the standard keywords the sketches support —
``minimum``/``maximum`` from the min/max sketch and ``format`` from
the dominant-format sketch — plus two ``x-repro-`` extensions:

``x-repro-cardinality``
    The HyperLogLog distinct-value estimate (a float; relative error
    ~1.04/sqrt(2^precision)).

``x-repro-bloom``
    The Bloom membership filter — geometry, absorbed count, expected
    false-positive rate, and the bit array base64-encoded — enough for
    a reader to answer "was this value ever observed here?".

Annotations are strictly additive: every keyword this module writes
is ignored by :func:`~repro.schema.jsonschema.from_json_schema`, so
``from_json_schema(annotate_json_schema(doc, e)) ==
from_json_schema(doc)`` — the round-trip invariant the enriched
differential oracle checks.

Path alignment mirrors ``EnrichmentState.observe``: object properties
descend by key, arrays descend by ``STAR``.  A map-like
``additionalProperties`` position fans out to every observed key at
that point, merging their sketch bundles (sketches are monoids, so the
merge is exact, not an approximation of an approximation).
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional

from repro.discovery.sketches import EnrichmentState, PathSketches
from repro.jsontypes.paths import Path, STAR

__all__ = ["annotate_json_schema"]


def annotate_json_schema(document: Any, enrichment: Optional[EnrichmentState]) -> Any:
    """Return a copy of ``document`` decorated with sketch annotations.

    ``document`` must come from
    :func:`~repro.schema.jsonschema.to_json_schema`.  ``enrichment``
    may be ``None`` or sketch-less (``--enrich unions``), in which
    case the document is returned unchanged (same object).  The input
    document is never mutated.
    """
    if enrichment is None or not enrichment.options.sketches:
        return document
    return _annotate(document, [()], enrichment.paths)


def _annotate(
    document: Any,
    prefixes: List[Path],
    paths: Dict[Path, PathSketches],
) -> Any:
    if not isinstance(document, dict):
        # ``false`` (NEVER) has no interior to annotate.
        return document
    annotated = dict(document)
    if "anyOf" in annotated:
        annotated["anyOf"] = [
            _annotate(branch, prefixes, paths)
            for branch in annotated["anyOf"]
        ]
        return annotated
    type_name = annotated.get("type")
    if type_name == "object":
        properties = annotated.get("properties")
        if isinstance(properties, dict):
            annotated["properties"] = {
                key: _annotate(
                    child,
                    [prefix + (key,) for prefix in prefixes],
                    paths,
                )
                for key, child in properties.items()
            }
        extra = annotated.get("additionalProperties")
        if isinstance(extra, (dict, bool)) and extra is not False:
            annotated["additionalProperties"] = _annotate(
                extra, _map_key_prefixes(prefixes, paths), paths
            )
        return annotated
    if type_name == "array":
        starred = [prefix + (STAR,) for prefix in prefixes]
        items = annotated.get("items")
        if isinstance(items, dict):
            annotated["items"] = _annotate(items, starred, paths)
        prefix_items = annotated.get("prefixItems")
        if isinstance(prefix_items, list):
            # Tuple elements were still absorbed under STAR (the
            # enrichment walker does not know pass-1 designations), so
            # every element position shares the starred bundle.
            annotated["prefixItems"] = [
                _annotate(element, starred, paths)
                for element in prefix_items
            ]
        return annotated
    bundle = _merged_bundle(prefixes, paths)
    if bundle is None:
        return annotated
    if type_name == "number":
        if bundle.numbers.count:
            annotated["minimum"] = bundle.numbers.minimum
            annotated["maximum"] = bundle.numbers.maximum
    elif type_name == "string":
        dominant = bundle.strings.dominant()
        if dominant is not None:
            annotated["format"] = dominant
    if bundle.members.count:
        annotated["x-repro-cardinality"] = bundle.cardinality.estimate()
        annotated["x-repro-bloom"] = {
            "size": bundle.members.size,
            "hashes": bundle.members.hashes,
            "count": bundle.members.count,
            "fpr": bundle.members.false_positive_rate(),
            "bits": base64.b64encode(
                bundle.members.bits.to_bytes(
                    bundle.members.size // 8, "little"
                )
            ).decode("ascii"),
        }
    return annotated


def _map_key_prefixes(
    prefixes: List[Path], paths: Dict[Path, PathSketches]
) -> List[Path]:
    """One-step extensions of ``prefixes`` by every observed map key.

    The observed keys are recovered from the sketch path table itself:
    any recorded path that strictly extends a prefix names, at the
    prefix's depth, a key that occurred there.  Sorted for determinism.
    """
    extended = set()
    for prefix in prefixes:
        depth = len(prefix)
        for path in paths:
            if len(path) > depth and path[:depth] == prefix:
                step = path[depth]
                if isinstance(step, str):
                    extended.add(prefix + (step,))
    return sorted(extended)


def _merged_bundle(
    prefixes: List[Path], paths: Dict[Path, PathSketches]
) -> Optional[PathSketches]:
    bundles = [paths[prefix] for prefix in prefixes if prefix in paths]
    if not bundles:
        return None
    merged = bundles[0]
    for bundle in bundles[1:]:
        merged = merged.merge(bundle)
    return merged
