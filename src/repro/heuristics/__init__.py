"""Ambiguity-resolving heuristics (Sections 5 and 6 of the paper)."""

from repro.heuristics.collection import (
    CollectionEvidence,
    DEFAULT_ENTROPY_THRESHOLD,
    Designation,
    decide_designation,
    is_collection_arrays,
    is_collection_objects,
    key_space_entropy,
    length_entropy,
    shannon_entropy,
)

__all__ = [
    "CollectionEvidence",
    "DEFAULT_ENTROPY_THRESHOLD",
    "Designation",
    "decide_designation",
    "is_collection_arrays",
    "is_collection_objects",
    "key_space_entropy",
    "length_entropy",
    "shannon_entropy",
]
