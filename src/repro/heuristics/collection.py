"""Collection-vs-tuple detection (Section 5, Algorithm 5).

A bag of like-kinded complex types is ruled a **collection** when

1. all nested element types are pairwise *similar* (Section 5.2's
   constraint, checked in one scan via
   :class:`~repro.jsontypes.similarity.SimilarityAccumulator`), and
2. its *key-space entropy* exceeds a threshold.

Key-space entropy for objects is the entropy of key membership:
``E_K = -Σ_k P_k ln P_k`` where ``P_k`` is the fraction of instances
containing key ``k``.  For arrays, the distribution of array lengths
plays the same role.  The paper uses natural logarithms (its worked
example has ``-½ ln ½ ≈ 0.35``) and a threshold of 1, to which the
decision is minimally sensitive because observed entropies are strongly
bimodal (Figure 4).

Algorithm 5 additionally short-circuits to **Tuple** when any single
instance mixes value *kinds* across its fields (its ``E_T > 0`` check);
that is a cheap first-level approximation of the similarity constraint
and is kept as an independent signal here.  ``null`` values are
transparent to the kind check, mirroring null's role in similarity.

Statistics are gathered in a mergeable :class:`CollectionEvidence`
accumulator so that JXPLAIN's pass ① can fold them associatively over
a partitioned dataset.
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.jsontypes.kinds import Kind
from repro.jsontypes.similarity import SimilarityAccumulator
from repro.jsontypes.types import ArrayType, JsonType, ObjectType

#: The key-space entropy threshold used throughout the paper's
#: experiments ("Our experiments arbitrarily use a threshold of 1").
DEFAULT_ENTROPY_THRESHOLD = 1.0


class Designation(enum.Enum):
    """The outcome of collection detection for one path."""

    COLLECTION = "collection"
    TUPLE = "tuple"


def shannon_entropy(counts: Iterable[int], total: int) -> float:
    """``-Σ (c/total) ln (c/total)`` over nonzero counts.

    ``total`` need not equal ``sum(counts)``: for key-space entropy the
    probabilities are per-key membership fractions, which do not sum
    to 1.
    """
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count <= 0:
            continue
        probability = count / total
        if probability < 1.0:
            entropy -= probability * math.log(probability)
    return entropy


def key_space_entropy(
    key_counts: Mapping[str, int], record_count: int
) -> float:
    """Key-space entropy ``E_K`` of a bag of objects (Section 5.1)."""
    return shannon_entropy(key_counts.values(), record_count)


def length_entropy(
    length_counts: Mapping[int, int], record_count: int
) -> float:
    """Array-length entropy (Section 5.4).

    Here the counts *do* form a distribution over lengths, so the
    probabilities sum to 1.
    """
    return shannon_entropy(length_counts.values(), record_count)


@dataclass
class CollectionEvidence:
    """Mergeable statistics for one complex-kinded path.

    Accumulates everything the detection decision needs: instance
    count, per-key membership counts (objects), length distribution
    (arrays), a mixed-kind flag (Algorithm 5's ``E_T > 0`` check), and
    a similarity accumulator over nested element types.
    """

    kind: Kind
    record_count: int = 0
    key_counts: Counter = field(default_factory=Counter)
    length_counts: Counter = field(default_factory=Counter)
    mixed_kinds: bool = False
    similarity: SimilarityAccumulator = field(
        default_factory=SimilarityAccumulator
    )

    @classmethod
    def with_depth(
        cls, kind: Kind, similarity_depth: "Optional[int]" = None
    ) -> "CollectionEvidence":
        """Evidence whose similarity check is depth-bounded."""
        evidence = cls(kind)
        evidence.similarity = SimilarityAccumulator(similarity_depth)
        return evidence

    def add(self, tau: JsonType, count: int = 1) -> None:
        """Fold one object- or array-kinded type into the evidence.

        ``count`` folds ``count`` identical instances at once (the
        counted-bag fast path): every statistic below is a function of
        final counts, and re-adding a type already folded into the
        similarity accumulator is a no-op there (its maximal type
        already subsumes it), so this is exactly equivalent to calling
        ``add`` ``count`` times.
        """
        if tau.kind != self.kind:
            raise ValueError(
                f"evidence tracks {self.kind}, got {tau.kind} type"
            )
        self.record_count += count
        if isinstance(tau, ObjectType):
            children = [child for _, child in tau.items()]
            for key, _ in tau.items():
                self.key_counts[key] += count
        elif isinstance(tau, ArrayType):
            children = list(tau.elements)
            self.length_counts[len(children)] += count
        else:  # pragma: no cover - guarded by the kind check above
            raise ValueError(f"not a complex type: {tau!r}")
        kinds = {
            child.kind for child in children if child.kind != Kind.NULL
        }
        if len(kinds) > 1:
            self.mixed_kinds = True
        for child in children:
            self.similarity.add(child, count)

    def merge(self, other: "CollectionEvidence") -> "CollectionEvidence":
        """Combine evidence from two partitions (associative)."""
        if self.kind != other.kind:
            raise ValueError("cannot merge evidence of different kinds")
        merged = CollectionEvidence(self.kind)
        merged.record_count = self.record_count + other.record_count
        merged.key_counts = self.key_counts + other.key_counts
        merged.length_counts = self.length_counts + other.length_counts
        merged.mixed_kinds = self.mixed_kinds or other.mixed_kinds
        merged.similarity = self.similarity.merge(other.similarity)
        return merged

    @property
    def entropy(self) -> float:
        """Key-space entropy (objects) or length entropy (arrays)."""
        if self.kind == Kind.OBJECT:
            return key_space_entropy(self.key_counts, self.record_count)
        return length_entropy(self.length_counts, self.record_count)

    @property
    def elements_similar(self) -> bool:
        """Did every pair of nested element types pass similarity?"""
        return self.similarity.all_similar

    @property
    def distinct_keys(self) -> int:
        return len(self.key_counts)

    @property
    def max_length(self) -> int:
        return max(self.length_counts, default=0)


def decide_designation(
    evidence: CollectionEvidence,
    threshold: float = DEFAULT_ENTROPY_THRESHOLD,
) -> Designation:
    """Algorithm 5: designate a path Collection or Tuple.

    Tuples win when (i) any instance mixes nested kinds, (ii) nested
    types fail pairwise similarity, or (iii) key-space entropy is at or
    below ``threshold``.
    """
    if evidence.mixed_kinds:
        return Designation.TUPLE
    if not evidence.elements_similar:
        return Designation.TUPLE
    if evidence.entropy <= threshold:
        return Designation.TUPLE
    return Designation.COLLECTION


def _gather(kind: Kind, types: Iterable[JsonType]) -> CollectionEvidence:
    evidence = CollectionEvidence(kind)
    for tau in types:
        evidence.add(tau)
    return evidence


def is_collection_objects(
    types: Iterable[JsonType],
    threshold: float = DEFAULT_ENTROPY_THRESHOLD,
    evidence_out: Optional[list] = None,
) -> bool:
    """Is this bag of object-kinded types collection-like?

    ``evidence_out``, when given, receives the accumulated
    :class:`CollectionEvidence` (useful for reusing the statistics in
    the subsequent merge).
    """
    evidence = _gather(Kind.OBJECT, types)
    if evidence_out is not None:
        evidence_out.append(evidence)
    return decide_designation(evidence, threshold) is Designation.COLLECTION


def is_collection_arrays(
    types: Iterable[JsonType],
    threshold: float = DEFAULT_ENTROPY_THRESHOLD,
    evidence_out: Optional[list] = None,
) -> bool:
    """Is this bag of array-kinded types collection-like?"""
    evidence = _gather(Kind.ARRAY, types)
    if evidence_out is not None:
        evidence_out.append(evidence)
    return decide_designation(evidence, threshold) is Designation.COLLECTION
