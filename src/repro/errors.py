"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidJsonValueError(ReproError, TypeError):
    """A Python value does not correspond to any JSON value.

    Raised by :func:`repro.jsontypes.type_of` when handed a value outside
    the JSON data model (e.g. a ``set`` or a custom object).
    """


class SchemaConstructionError(ReproError, ValueError):
    """A schema node was constructed with inconsistent arguments."""


class EmptyInputError(ReproError, ValueError):
    """A discovery algorithm was invoked on an empty collection."""


class UnsupportedSchemaError(ReproError, ValueError):
    """An operation was applied to a schema node it does not support."""


class DatasetError(ReproError, ValueError):
    """A dataset generator was configured with invalid parameters."""


class EngineError(ReproError, RuntimeError):
    """The dataflow engine was used incorrectly."""


class RecursionDepthError(ReproError, RecursionError):
    """A JSON value or schema exceeded the configured nesting depth."""


class StateCodecError(ReproError, ValueError):
    """A serialized discovery-state payload could not be decoded.

    Raised for truncated data, a bad magic number, an unsupported
    codec version, or a payload-kind mismatch.
    """


class CheckpointError(StateCodecError):
    """A checkpoint file is missing, unreadable, or incompatible."""
