"""Immutable JSON types (Figure 2 of the paper).

A :class:`JsonType` is the *type* of a single JSON value: primitive
types are atoms, while the type of an object (resp. array) records the
type of the value nested under every key (resp. position).  Types are
immutable and hashable, so bags of types can be stored in
``collections.Counter`` and deduplicated for free — this is what makes
the L-reduction ("naive discovery") a one-liner.

The module also provides :func:`type_of`, which extracts the type of a
parsed JSON value (the output of ``json.loads``), and a hash-consing
intern table: with interning enabled (the default), structurally equal
complex types built by :func:`type_of` / :func:`intern_type` are the
*same object*.  Interning is a pure optimisation — equality semantics
are unchanged — but it collapses equality checks and dict lookups over
types to pointer comparisons, which is what makes the counted-bag
merge fast path (:mod:`repro.jsontypes.bag`) cheap on corpora with
heavy structural repetition.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Sequence, Union

from repro.errors import InvalidJsonValueError, RecursionDepthError
from repro.jsontypes.kinds import Kind

#: A parsed JSON value, as produced by ``json.loads``.
JsonValue = Union[None, bool, int, float, str, list, dict]

#: Default bound on value/type nesting depth; prevents pathological
#: inputs from exhausting the interpreter stack.
MAX_DEPTH = 256


class JsonType:
    """Base class for all JSON types.

    Subclasses are immutable value objects: equality, hashing and
    ordering are structural.
    """

    __slots__ = ()

    #: Overridden by subclasses.
    kind: Kind

    @property
    def is_primitive(self) -> bool:
        return self.kind.is_primitive

    @property
    def is_complex(self) -> bool:
        return self.kind.is_complex

    def keys(self) -> tuple:
        """The keys mapped by this type (``keys(τ)`` in the paper).

        Objects return their field names; arrays return their valid
        indices; primitives return the empty tuple.
        """
        return ()

    def field(self, key) -> "JsonType":
        """The type nested under ``key`` (``τ.k`` in the paper)."""
        raise KeyError(key)

    def children(self) -> Iterator["JsonType"]:
        """Iterate over all directly nested types."""
        return iter(())

    def depth(self) -> int:
        """Nesting depth of the type (primitives have depth 1)."""
        child_depth = max((c.depth() for c in self.children()), default=0)
        return 1 + child_depth

    def node_count(self) -> int:
        """Total number of type nodes, including this one."""
        return 1 + sum(c.node_count() for c in self.children())


class PrimitiveType(JsonType):
    """A primitive JSON type: 𝔹, ℝ, 𝕊, or null.

    Instances are interned — there are exactly four of them, exposed as
    module-level constants :data:`BOOLEAN`, :data:`NUMBER`,
    :data:`STRING`, and :data:`NULL`.
    """

    __slots__ = ("kind",)

    _interned: dict = {}

    def __new__(cls, kind: Kind) -> "PrimitiveType":
        if not kind.is_primitive:
            raise InvalidJsonValueError(f"{kind} is not a primitive kind")
        cached = cls._interned.get(kind)
        if cached is None:
            cached = super().__new__(cls)
            object.__setattr__(cached, "kind", kind)
            cls._interned[kind] = cached
        return cached

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("PrimitiveType is immutable")

    def __eq__(self, other) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash(self.kind)

    def __reduce__(self):
        # Unpickling re-enters __new__, which re-interns: primitive
        # singletons survive a round trip to a worker process.
        return (PrimitiveType, (self.kind,))

    def __repr__(self) -> str:
        return self.kind.value


#: The four primitive type singletons.
BOOLEAN = PrimitiveType(Kind.BOOLEAN)
NUMBER = PrimitiveType(Kind.NUMBER)
STRING = PrimitiveType(Kind.STRING)
NULL = PrimitiveType(Kind.NULL)

#: Mapping from primitive kind to its singleton type.
PRIMITIVES: Mapping[Kind, PrimitiveType] = {
    Kind.BOOLEAN: BOOLEAN,
    Kind.NUMBER: NUMBER,
    Kind.STRING: STRING,
    Kind.NULL: NULL,
}


class ObjectType(JsonType):
    """The type of a JSON object: ``{ k1: τ1, ..., kN: τN }``.

    Fields are stored as a tuple of ``(key, type)`` pairs sorted by key,
    which gives structural equality and hashing independent of the
    original key order.
    """

    __slots__ = ("fields", "_hash")

    kind = Kind.OBJECT

    def __init__(self, fields: Mapping[str, JsonType]):
        for key, value in fields.items():
            if not isinstance(key, str):
                raise InvalidJsonValueError(
                    f"object keys must be strings, got {key!r}"
                )
            if not isinstance(value, JsonType):
                raise InvalidJsonValueError(
                    f"field {key!r} maps to non-type {value!r}"
                )
        items = tuple(sorted(fields.items()))
        object.__setattr__(self, "fields", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, name, value):
        raise AttributeError("ObjectType is immutable")

    def keys(self) -> tuple:
        return tuple(key for key, _ in self.fields)

    def key_set(self) -> frozenset:
        """The field names as a frozenset (used by entity discovery)."""
        return frozenset(key for key, _ in self.fields)

    def field(self, key: str) -> JsonType:
        for name, value in self.fields:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default=None):
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def items(self) -> tuple:
        return self.fields

    def children(self) -> Iterator[JsonType]:
        return (value for _, value in self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, key: str) -> bool:
        return any(name == key for name, _ in self.fields)

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, ObjectType) and self.fields == other.fields

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (ObjectType, (dict(self.fields),))

    def __repr__(self) -> str:
        body = ", ".join(f"{key}: {value!r}" for key, value in self.fields)
        return "{" + body + "}"


class ArrayType(JsonType):
    """The type of a JSON array: ``[ τ1, ..., τN ]``."""

    __slots__ = ("elements", "_hash")

    kind = Kind.ARRAY

    def __init__(self, elements: Sequence[JsonType]):
        items = tuple(elements)
        for value in items:
            if not isinstance(value, JsonType):
                raise InvalidJsonValueError(
                    f"array element is not a type: {value!r}"
                )
        object.__setattr__(self, "elements", items)
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, name, value):
        raise AttributeError("ArrayType is immutable")

    def keys(self) -> tuple:
        return tuple(range(len(self.elements)))

    def field(self, key: int) -> JsonType:
        try:
            return self.elements[key]
        except (IndexError, TypeError) as exc:
            raise KeyError(key) from exc

    def children(self) -> Iterator[JsonType]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, ArrayType) and self.elements == other.elements

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (ArrayType, (self.elements,))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(value) for value in self.elements) + "]"


#: The type of the empty object / empty array, exposed for convenience.
EMPTY_OBJECT = ObjectType({})
EMPTY_ARRAY = ArrayType(())


# -- hash-consing -------------------------------------------------------------

_INTERN_ENABLED = True
_INTERN_TABLE: Dict[JsonType, JsonType] = {}
_INTERN_HITS = 0
_INTERN_MISSES = 0


def set_interning(enabled: bool) -> bool:
    """Enable/disable hash-consing of complex types; returns the old
    setting.  Disabling does not clear the table, so re-enabling keeps
    previously interned nodes."""
    global _INTERN_ENABLED
    previous = _INTERN_ENABLED
    _INTERN_ENABLED = bool(enabled)
    return previous


def interning_enabled() -> bool:
    return _INTERN_ENABLED


def clear_intern_table() -> None:
    """Drop every interned node (frees memory between corpora)."""
    _INTERN_TABLE.clear()


def intern_stats() -> Dict[str, int]:
    """``hits`` / ``misses`` / ``size`` of the intern table."""
    return {
        "hits": _INTERN_HITS,
        "misses": _INTERN_MISSES,
        "size": len(_INTERN_TABLE),
    }


def reset_intern_stats() -> None:
    global _INTERN_HITS, _INTERN_MISSES
    _INTERN_HITS = 0
    _INTERN_MISSES = 0


def _intern(tau: JsonType) -> JsonType:
    """Return the canonical instance structurally equal to ``tau``."""
    global _INTERN_HITS, _INTERN_MISSES
    cached = _INTERN_TABLE.get(tau)
    if cached is not None:
        _INTERN_HITS += 1
        return cached
    _INTERN_MISSES += 1
    _INTERN_TABLE[tau] = tau
    return tau


def intern_type(tau: JsonType) -> JsonType:
    """Recursively hash-cons a type: equal types become identical.

    Primitives are already singletons; complex nodes are rebuilt
    bottom-up over interned children, so interned trees share all
    repeated substructure.  A no-op when interning is disabled.
    """
    if not _INTERN_ENABLED or isinstance(tau, PrimitiveType):
        return tau
    cached = _INTERN_TABLE.get(tau)
    if cached is not None:
        global _INTERN_HITS
        _INTERN_HITS += 1
        return cached
    if isinstance(tau, ArrayType):
        rebuilt = ArrayType(
            tuple(intern_type(item) for item in tau.elements)
        )
    elif isinstance(tau, ObjectType):
        rebuilt = ObjectType(
            {key: intern_type(value) for key, value in tau.fields}
        )
    else:
        raise InvalidJsonValueError(f"not a JSON type: {tau!r}")
    return _intern(rebuilt)


def type_of(value: JsonValue, *, max_depth: int = MAX_DEPTH) -> JsonType:
    """Extract the :class:`JsonType` of a parsed JSON value.

    ``value`` must be a value in the JSON data model as produced by
    ``json.loads``: ``None``, ``bool``, ``int``/``float``, ``str``,
    ``list``, or ``dict`` with string keys.

    With interning enabled (the default), ``type_of(v1) is
    type_of(v2)`` whenever the extracted types are equal.

    Raises :class:`~repro.errors.InvalidJsonValueError` for anything
    else and :class:`~repro.errors.RecursionDepthError` when nesting
    exceeds ``max_depth``.
    """
    if max_depth <= 0:
        raise RecursionDepthError("value exceeds maximum nesting depth")
    if value is None:
        return NULL
    # bool must be tested before int: ``isinstance(True, int)`` holds.
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, (int, float)):
        return NUMBER
    if isinstance(value, str):
        return STRING
    if isinstance(value, list):
        built = ArrayType(
            tuple(type_of(item, max_depth=max_depth - 1) for item in value)
        )
        return _intern(built) if _INTERN_ENABLED else built
    if isinstance(value, dict):
        built = ObjectType(
            {
                key: type_of(item, max_depth=max_depth - 1)
                for key, item in value.items()
            }
        )
        return _intern(built) if _INTERN_ENABLED else built
    raise InvalidJsonValueError(
        f"not a JSON value: {value!r} (type {type(value).__name__})"
    )


def kind_of(value: JsonValue) -> Kind:
    """The :class:`Kind` of a parsed JSON value, without building a type."""
    if value is None:
        return Kind.NULL
    if isinstance(value, bool):
        return Kind.BOOLEAN
    if isinstance(value, (int, float)):
        return Kind.NUMBER
    if isinstance(value, str):
        return Kind.STRING
    if isinstance(value, list):
        return Kind.ARRAY
    if isinstance(value, dict):
        return Kind.OBJECT
    raise InvalidJsonValueError(
        f"not a JSON value: {value!r} (type {type(value).__name__})"
    )
