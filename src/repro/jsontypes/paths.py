"""Paths into JSON values and types.

A *path* is a sequence of steps from the root of a record down to a
nested value: object keys (strings), array indices (ints), or the
wildcard :data:`STAR`, which stands for "any element of a collection".
Paths label the nodes of the statistics tree used by JXPLAIN's pass ①
and the features used by entity discovery (Section 6.4 of the paper).
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

from repro.jsontypes.types import ArrayType, JsonType, JsonValue, ObjectType


class _Star:
    """Singleton wildcard path step: any element of a collection."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __lt__(self, other) -> bool:
        # Sorts after every concrete step, so rendered paths are stable.
        return False

    def __gt__(self, other) -> bool:
        return not isinstance(other, _Star)


#: The wildcard step.
STAR = _Star()

#: One step of a path.
PathStep = Union[str, int, _Star]

#: A path: a tuple of steps.  The empty tuple is the root path.
Path = Tuple[PathStep, ...]

#: The root path.
ROOT: Path = ()


def render_path(path: Path) -> str:
    """Render a path in a compact dotted notation.

    Object keys print as ``.key``, array indices as ``[i]``, and the
    wildcard as ``[*]``.  The root renders as ``$``.
    """
    parts = ["$"]
    for step in path:
        if step is STAR:
            parts.append("[*]")
        elif isinstance(step, int):
            parts.append(f"[{step}]")
        else:
            parts.append(f".{step}")
    return "".join(parts)


def parse_path(text: str) -> Path:
    """Parse the dotted notation produced by :func:`render_path`."""
    if not text.startswith("$"):
        raise ValueError(f"path must start with '$': {text!r}")
    steps: list = []
    i = 1
    while i < len(text):
        char = text[i]
        if char == ".":
            j = i + 1
            while j < len(text) and text[j] not in ".[":
                j += 1
            key = text[i + 1 : j]
            if not key:
                raise ValueError(f"empty key in path: {text!r}")
            steps.append(key)
            i = j
        elif char == "[":
            j = text.index("]", i)
            token = text[i + 1 : j]
            steps.append(STAR if token == "*" else int(token))
            i = j + 1
        else:
            raise ValueError(f"unexpected character {char!r} in path {text!r}")
    return tuple(steps)


def iter_type_paths(
    tau: JsonType, prefix: Path = ROOT
) -> Iterator[Tuple[Path, JsonType]]:
    """Yield ``(path, nested type)`` for every node of ``tau``.

    The root itself is yielded first with the empty path.
    """
    yield prefix, tau
    if isinstance(tau, ObjectType):
        for key, value in tau.items():
            yield from iter_type_paths(value, prefix + (key,))
    elif isinstance(tau, ArrayType):
        for index, value in enumerate(tau.elements):
            yield from iter_type_paths(value, prefix + (index,))


def iter_value_paths(
    value: JsonValue, prefix: Path = ROOT
) -> Iterator[Tuple[Path, JsonValue]]:
    """Yield ``(path, nested value)`` for every node of a JSON value."""
    yield prefix, value
    if isinstance(value, dict):
        for key, item in value.items():
            yield from iter_value_paths(item, prefix + (key,))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            yield from iter_value_paths(item, prefix + (index,))


def value_at(value: JsonValue, path: Path) -> JsonValue:
    """Follow ``path`` down a JSON value.  Raises ``KeyError`` on a miss."""
    current = value
    for step in path:
        if step is STAR:
            raise KeyError("cannot follow a wildcard step into a value")
        if isinstance(current, dict):
            current = current[step]
        elif isinstance(current, list):
            if not isinstance(step, int):
                raise KeyError(step)
            try:
                current = current[step]
            except IndexError as exc:
                raise KeyError(step) from exc
        else:
            raise KeyError(step)
    return current


def generalize(path: Path, collection_paths: frozenset) -> Path:
    """Replace steps nested under detected collections with :data:`STAR`.

    ``collection_paths`` is a set of (generalized) paths that have been
    ruled collections; any step that descends *out of* one of these
    paths is replaced by the wildcard, so instances of a collection
    share a single generalized path.
    """
    out: list = []
    for step in path:
        if tuple(out) in collection_paths:
            out.append(STAR)
        else:
            out.append(step)
    return tuple(out)
