"""Kinds of JSON types (Figure 2 of the paper).

A *kind* collapses a JSON type to its outermost constructor: one of the
four primitive kinds, or the symbols ``OBJECT`` / ``ARRAY`` for complex
types.  Kinds drive the top-level dispatch of every merge algorithm in
the paper: primitives merge naively, arrays merge as collections or
tuples, objects merge as tuples or collections.
"""

from __future__ import annotations

import enum


class Kind(enum.Enum):
    """The kind of a JSON type: ``kind(τ)`` in the paper's notation."""

    BOOLEAN = "boolean"
    NUMBER = "number"
    STRING = "string"
    NULL = "null"
    OBJECT = "object"
    ARRAY = "array"

    @property
    def is_primitive(self) -> bool:
        """True for the four primitive kinds (𝔹, ℝ, 𝕊, null)."""
        return self not in (Kind.OBJECT, Kind.ARRAY)

    @property
    def is_complex(self) -> bool:
        """True for object and array kinds (O and A in the paper)."""
        return not self.is_primitive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kind.{self.name}"


#: The four primitive kinds, in the order the paper lists them.
PRIMITIVE_KINDS = (Kind.BOOLEAN, Kind.NUMBER, Kind.STRING, Kind.NULL)

#: The two complex kinds.
COMPLEX_KINDS = (Kind.OBJECT, Kind.ARRAY)
