"""JSON type system: kinds, immutable types, paths, and similarity.

This package implements the type algebra of Section 2 (Figure 2) of the
paper, plus the similarity relation of Section 5.2.
"""

from repro.jsontypes.kinds import COMPLEX_KINDS, Kind, PRIMITIVE_KINDS
from repro.jsontypes.paths import (
    Path,
    PathStep,
    ROOT,
    STAR,
    generalize,
    iter_type_paths,
    iter_value_paths,
    parse_path,
    render_path,
    value_at,
)
from repro.jsontypes.similarity import (
    SimilarityAccumulator,
    all_pairwise_similar,
    similar,
    union_types,
)
from repro.jsontypes.types import (
    ArrayType,
    BOOLEAN,
    EMPTY_ARRAY,
    EMPTY_OBJECT,
    JsonType,
    JsonValue,
    MAX_DEPTH,
    NULL,
    NUMBER,
    ObjectType,
    PRIMITIVES,
    PrimitiveType,
    STRING,
    kind_of,
    type_of,
)

__all__ = [
    "ArrayType",
    "BOOLEAN",
    "COMPLEX_KINDS",
    "EMPTY_ARRAY",
    "EMPTY_OBJECT",
    "JsonType",
    "JsonValue",
    "Kind",
    "MAX_DEPTH",
    "NULL",
    "NUMBER",
    "ObjectType",
    "PRIMITIVES",
    "PRIMITIVE_KINDS",
    "Path",
    "PathStep",
    "PrimitiveType",
    "ROOT",
    "STAR",
    "STRING",
    "SimilarityAccumulator",
    "all_pairwise_similar",
    "generalize",
    "iter_type_paths",
    "iter_value_paths",
    "kind_of",
    "parse_path",
    "render_path",
    "similar",
    "type_of",
    "union_types",
    "value_at",
]
