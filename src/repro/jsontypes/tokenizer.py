"""Bytes-to-type scanning: build interned :class:`JsonType`\\ s from
raw JSON-lines bytes without materializing the value tree.

Classic ingestion runs every line through ``json.loads`` (building a
Python dict/list tree) and then :func:`~repro.jsontypes.types.type_of`
(walking that tree to build the type, then discarding the tree).  For
schema discovery the tree is pure waste — only the type survives.
This module removes it in two layers:

**The type scanner** (:func:`scan_type`) parses a line with a
``json.JSONDecoder`` whose hooks construct interned types *during*
parsing: every object literal becomes an interned
:class:`~repro.jsontypes.types.ObjectType` the moment its closing
brace is consumed, every number collapses to the ``NUMBER`` singleton
without ever becoming a float.  The C scanner still does the
tokenizing, so error positions and messages are byte-for-byte those of
``json.loads`` — which is what keeps the fused reader's error channel
identical to the classic one.

**The structural skeleton** (:func:`structural_skeleton`) is the fast
path over the scanner: a cheap, collision-safe summary of a line's
*key shape* computed with a handful of C-level string operations (one
``translate`` guard, one ``split`` on quotes, one number-normalizing
regex).  Its contract is::

    skeleton(a) == skeleton(b)  and  both not None
        implies  scan_type(a) is scan_type(b)   (valid lines)
        and      a malformed iff b malformed    (invalid lines)

so a bounded :class:`ShapeCache` keyed on skeletons can serve repeated
record shapes without re-parsing, and a malformed line can never hit a
cache entry left by a valid one.  The contract is *conservative*:
lines containing escapes, control bytes, or non-ASCII bytes get no
skeleton (``None``) and simply take the scanner path — a hit-rate
loss, never a correctness loss.

Why the skeleton is collision-safe (each rule maps to a guard below):

* Quotes, backslashes, and control bytes never occur inside UTF-8
  multi-byte sequences, and the guard rejects any line containing a
  backslash, a control byte, or a non-ASCII byte — so splitting the
  raw bytes on ``"`` exactly alternates outside-string and
  inside-string spans, and byte equality coincides with text equality.
* An even split count means an unterminated string: no skeleton.
* Outside-string spans are kept verbatim (punctuation, ``true`` /
  ``false`` / ``null``, *and any garbage*), except that number
  literals are normalized to ``0`` by a regex that matches exactly the
  JSON number grammar — so two lines share a skeleton only if they
  agree on everything outside strings up to valid-number spelling.
  Invalid almost-numbers (``00``, ``1.``, ``+5``) are *not* fully
  absorbed by the regex and stay distinct from every valid spelling.
* Inside-string spans that are object keys (the following outside
  span starts with ``:`` after optional spaces) are kept verbatim;
  value-string contents are dropped.  Which positions are keys is
  itself a function of the outside spans, which the skeleton already
  pins.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Optional, Tuple

from repro.jsontypes import types as _types
from repro.jsontypes.types import (
    ArrayType,
    BOOLEAN,
    JsonType,
    MAX_DEPTH,
    NULL,
    NUMBER,
    ObjectType,
    STRING,
    _intern,
)

#: Bytes whose presence disqualifies a line from skeletonization:
#: control bytes (string escapes / malformed strings / exotic
#: whitespace), the backslash (escape sequences break quote
#: alternation), and everything non-ASCII (multi-byte text and invalid
#: UTF-8 must reach the real decoder).  Deleting these via
#: ``bytes.translate`` and comparing lengths is a single C scan.
UNSAFE_BYTES = bytes(range(0x20)) + b"\\" + bytes(range(0x80, 0x100))

#: Exactly the JSON number grammar (RFC 8259 §6), over bytes.
NUMBER_RE = re.compile(rb"-?(?:0|[1-9]\d*)(?:\.\d+)?(?:[eE][+-]?\d+)?")

#: Joins outside-string spans in skeletons; cannot occur in a
#: skeletonizable line (it is a control byte).
_SPAN_SEP = b"\x01"

#: A skeleton: (normalized outside-string text, object-key tuple).
Skeleton = Tuple[bytes, Tuple[bytes, ...]]


def structural_skeleton(line: bytes) -> Optional[Skeleton]:
    """The key-shape skeleton of one stripped JSON-lines line.

    Returns ``None`` when the line is not eligible (escapes, control
    bytes, non-ASCII, unterminated string) — callers treat that as a
    cache miss.  See the module docstring for the safety argument.
    """
    if len(line.translate(None, UNSAFE_BYTES)) != len(line):
        return None
    parts = line.split(b'"')
    if len(parts) % 2 == 0:
        return None
    outs = parts[0::2]
    keys = tuple(
        span
        for span, nxt in zip(parts[1::2], outs[1:])
        if nxt[:1] == b":" or (nxt[:1] == b" " and nxt.lstrip()[:1] == b":")
    )
    return NUMBER_RE.sub(b"0", _SPAN_SEP.join(outs)), keys


def line_token_count(line: bytes) -> int:
    """String + number token count of a line (throughput metric).

    Counts quote-delimited strings and valid number literals outside
    strings; punctuation and keyword literals are not counted.  For
    escape-bearing or non-ASCII lines this is approximate (escaped
    quotes split strings), which is fine for a rate denominator.
    """
    parts = line.split(b'"')
    outside = _SPAN_SEP.join(parts[0::2])
    return len(parts) // 2 + len(NUMBER_RE.findall(outside))


# ---------------------------------------------------------------------------
# The hooked decoder: parse straight into interned types.
# ---------------------------------------------------------------------------


def _as_type(value) -> JsonType:
    # Hook outputs arrive here either as already-built JsonTypes
    # (nested objects), raw lists (arrays — json has no array hook),
    # or raw primitives the parse hooks could not intercept.
    if type(value) is list:
        return _list_type(value)
    if isinstance(value, JsonType):
        return value
    if value is None:
        return NULL
    if value is True or value is False:
        return BOOLEAN
    # Strings are the only other value the hooks let through.
    return STRING


def _list_type(root: list) -> JsonType:
    # Post-order over an explicit stack: the C scanner parses arrays
    # nested as deep as its own recursion allows (matching the classic
    # reader), and converting them must not re-impose a smaller Python
    # recursion bound.  Frame: [source list, next index, built types].
    frames = [[root, 0, []]]
    while True:
        frame = frames[-1]
        source, index, converted = frame
        if index < len(source):
            frame[1] = index + 1
            item = source[index]
            if type(item) is list:
                frames.append([item, 0, []])
            else:
                converted.append(_as_type(item))
        else:
            frames.pop()
            built = ArrayType(tuple(converted))
            tau = _intern(built) if _types._INTERN_ENABLED else built
            if not frames:
                return tau
            frames[-1][2].append(tau)


def _pairs_hook(pairs) -> JsonType:
    built = ObjectType({key: _as_type(value) for key, value in pairs})
    return _intern(built) if _types._INTERN_ENABLED else built


def _number_hook(_literal: str) -> JsonType:
    return NUMBER


_DECODER = json.JSONDecoder(
    object_pairs_hook=_pairs_hook,
    parse_float=_number_hook,
    parse_int=_number_hook,
    parse_constant=_number_hook,
)


def scan_type(text: str) -> JsonType:
    """Parse one JSON document into its (interned) :class:`JsonType`.

    Equivalent to ``type_of(json.loads(text))`` — same result object
    under interning, same ``ValueError`` / ``RecursionError`` with the
    same message on malformed input — but never builds the value tree.
    The ``type_of`` depth bound is *not* applied here; callers that
    need it use :func:`depth_exceeds` after a successful scan.
    """
    return _as_type(_DECODER.decode(text))


# ---------------------------------------------------------------------------
# The typed scanner: one parse producing the value AND its type.
# ---------------------------------------------------------------------------
#
# Enriched discovery needs the values structural discovery discards,
# so this second hooked decoder builds both trees in a single C-scanner
# pass.  Hooks pass ``(value, type)`` tuples upward — unambiguous,
# since the stock decoder never produces a tuple itself.


def _as_typed(item) -> tuple:
    if type(item) is tuple:
        return item
    if type(item) is list:
        return _list_typed(item)
    if item is None:
        return (None, NULL)
    if item is True or item is False:
        return (item, BOOLEAN)
    return (item, STRING)


def _list_typed(root: list) -> tuple:
    # Same explicit-stack post-order as _list_type, carrying the value
    # list alongside the type tuple.  Frame: [source, next index,
    # built values, built types].
    frames = [[root, 0, [], []]]
    while True:
        frame = frames[-1]
        source, index, values, element_types = frame
        if index < len(source):
            frame[1] = index + 1
            item = source[index]
            if type(item) is list:
                frames.append([item, 0, [], []])
            else:
                value, tau = _as_typed(item)
                values.append(value)
                element_types.append(tau)
        else:
            frames.pop()
            built = ArrayType(tuple(element_types))
            tau = _intern(built) if _types._INTERN_ENABLED else built
            if not frames:
                return (values, tau)
            frames[-1][2].append(values)
            frames[-1][3].append(tau)


def _typed_pairs_hook(pairs) -> tuple:
    values = {}
    fields = {}
    for key, item in pairs:
        value, tau = _as_typed(item)
        values[key] = value
        fields[key] = tau
    built = ObjectType(fields)
    return (values, _intern(built) if _types._INTERN_ENABLED else built)


def _typed_int_hook(literal: str) -> tuple:
    return (int(literal), NUMBER)


def _typed_float_hook(literal: str) -> tuple:
    return (float(literal), NUMBER)


_TYPED_CONSTANTS = {
    "NaN": float("nan"),
    "Infinity": float("inf"),
    "-Infinity": float("-inf"),
}


def _typed_constant_hook(literal: str) -> tuple:
    return (_TYPED_CONSTANTS[literal], NUMBER)


_TYPED_DECODER = json.JSONDecoder(
    object_pairs_hook=_typed_pairs_hook,
    parse_float=_typed_float_hook,
    parse_int=_typed_int_hook,
    parse_constant=_typed_constant_hook,
)


def scan_typed(text: str):
    """Parse one JSON document into ``(type, value)`` in one pass.

    The type is exactly ``scan_type(text)`` (same interned object);
    the value is exactly ``json.loads(text)``; errors match both.
    There is no shape-cache fast path here — a cache hit skips the
    parse, and the whole point is that enrichment needs the values.
    """
    value, tau = _as_typed(_TYPED_DECODER.decode(text))
    return tau, value


def depth_exceeds(tau: JsonType, max_depth: int = MAX_DEPTH) -> bool:
    """Whether a type nests deeper than ``max_depth``, iteratively.

    Mirrors the bound ``type_of`` enforces during extraction; iterative
    so a pathological 900-deep type cannot overflow the checker itself.
    """
    stack = [(tau, 1)]
    while stack:
        node, depth = stack.pop()
        if depth > max_depth:
            return True
        for child in node.children():
            stack.append((child, depth + 1))
    return False


# ---------------------------------------------------------------------------
# The bounded shape cache.
# ---------------------------------------------------------------------------

#: Default bound on distinct shapes retained by a :class:`ShapeCache`.
DEFAULT_SHAPE_CACHE_SIZE = 65536


class ShapeCache:
    """A bounded skeleton → interned-type map with eviction stats.

    Eviction is deterministic insertion-order FIFO: when the bound is
    hit, the oldest-inserted shape is dropped.  Hits do not refresh
    recency — a hit needs no bookkeeping at all, which keeps the fast
    path at one dict lookup — so the policy is a pure function of the
    miss sequence.  Evicting is always safe: a dropped shape's next
    occurrence re-parses and re-interns to the same type object.
    """

    __slots__ = ("max_size", "hits", "misses", "evictions", "_table")

    def __init__(self, max_size: int = DEFAULT_SHAPE_CACHE_SIZE):
        if max_size <= 0:
            raise ValueError("ShapeCache max_size must be positive")
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._table: Dict[Skeleton, JsonType] = {}

    def get(self, skeleton: Skeleton) -> Optional[JsonType]:
        return self._table.get(skeleton)

    def put(self, skeleton: Skeleton, tau: JsonType) -> None:
        table = self._table
        if skeleton not in table and len(table) >= self.max_size:
            del table[next(iter(table))]
            self.evictions += 1
        table[skeleton] = tau

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, skeleton: Skeleton) -> bool:
        return skeleton in self._table

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._table),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShapeCache size={len(self._table)}/{self.max_size}"
            f" hits={self.hits} misses={self.misses}>"
        )
