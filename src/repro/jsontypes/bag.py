"""Counted bags of types: the mergers' distinct-type fast path.

Both extractors consume *bags* of :class:`~repro.jsontypes.types.JsonType`
— one type per record, with massive structural repetition on real
corpora (a few dozen distinct record types for tens of thousands of
records).  The seed implementation threads plain lists through every
merge level, so merge cost is proportional to **corpus size**.

:class:`CountedBag` replaces the list with an insertion-ordered
``type → multiplicity`` map.  Every merge-level operation (evidence
gathering, entity partitioning, per-key grouping) then touches each
*distinct* type once and carries its count, so merge cost becomes
proportional to **distinct structure**.  Interning
(:func:`~repro.jsontypes.types.type_of`'s hash-consing) makes the bag
cheap to build: equal types are identical objects, so the dict lookup
is a pointer comparison.

:class:`ListBag` is the compatibility representation: it preserves
duplicates and yields each element with count 1, reproducing the
seed's exact traversal order and cost.  Both representations satisfy
the same small protocol, so the mergers have a single code path; which
one :func:`as_bag` builds is controlled by :func:`set_counted_merge`
(on by default).  The two are schema-equivalent: every statistic the
heuristics consume (record counts, key membership counts, length
distributions) is a function of final multiplicities, and duplicate
types are no-ops for the similarity accumulator once their first
occurrence is folded in.

Distinct iteration order is the order of **first occurrence**, which
matches the order in which a list traversal first meets each distinct
type — this keeps every order-sensitive downstream (primitive branch
order, cluster discovery order) byte-identical between
representations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.jsontypes.types import JsonType

#: One bag entry: a type and its multiplicity.
BagItem = Tuple[JsonType, int]


class TypeBag:
    """Common protocol of :class:`CountedBag` and :class:`ListBag`."""

    def add(self, tau: JsonType, count: int = 1) -> None:
        raise NotImplementedError

    def items(self) -> Iterator[BagItem]:
        """Iterate ``(type, multiplicity)`` pairs."""
        raise NotImplementedError

    def distinct(self) -> List[JsonType]:
        """The bag's support, in iteration order."""
        return [tau for tau, _ in self.items()]

    def counts(self) -> List[int]:
        """Multiplicities aligned with :meth:`distinct`."""
        return [count for _, count in self.items()]

    @property
    def total(self) -> int:
        """Number of elements, counting multiplicity."""
        raise NotImplementedError

    @property
    def distinct_count(self) -> int:
        """Number of distinct entries (``total`` for a :class:`ListBag`)."""
        raise NotImplementedError

    def spawn(self) -> "TypeBag":
        """An empty bag of the same representation."""
        return type(self)()

    def merge(self, other: "TypeBag") -> "TypeBag":
        """A new bag holding both sides' contents.

        First-occurrence order is preserved: ``self``'s distinct order
        comes first, then ``other``'s novel types in their order —
        exactly the order a single traversal of the concatenated input
        would produce.
        """
        merged = self.spawn()
        for tau, count in self.items():
            merged.add(tau, count)
        for tau, count in other.items():
            merged.add(tau, count)
        return merged

    def __contains__(self, tau: JsonType) -> bool:
        return any(member == tau for member in self.distinct())

    def subset(self, members: Sequence[JsonType]) -> "TypeBag":
        """A bag restricted to ``members`` (with their multiplicities)."""
        raise NotImplementedError

    def __bool__(self) -> bool:
        return self.total > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} total={self.total}"
            f" distinct={self.distinct_count}>"
        )


class CountedBag(TypeBag):
    """Insertion-ordered multiset: ``type → multiplicity``."""

    __slots__ = ("_counts", "_total")

    def __init__(self) -> None:
        self._counts: Dict[JsonType, int] = {}
        self._total = 0

    @classmethod
    def from_types(cls, types: Iterable[JsonType]) -> "CountedBag":
        bag = cls()
        counts = bag._counts
        for tau in types:
            counts[tau] = counts.get(tau, 0) + 1
            bag._total += 1
        return bag

    def add(self, tau: JsonType, count: int = 1) -> None:
        self._counts[tau] = self._counts.get(tau, 0) + count
        self._total += count

    def items(self) -> Iterator[BagItem]:
        return iter(self._counts.items())

    def distinct(self) -> List[JsonType]:
        return list(self._counts)

    @property
    def total(self) -> int:
        return self._total

    @property
    def distinct_count(self) -> int:
        return len(self._counts)

    def subset(self, members: Sequence[JsonType]) -> "CountedBag":
        bag = CountedBag()
        for tau in members:
            bag.add(tau, self._counts[tau])
        return bag

    def __contains__(self, tau: JsonType) -> bool:
        return tau in self._counts


class ListBag(TypeBag):
    """Duplicate-preserving bag: the seed's list semantics, verbatim."""

    __slots__ = ("_items",)

    def __init__(self, items: Union[List[JsonType], None] = None) -> None:
        self._items: List[JsonType] = items if items is not None else []

    @classmethod
    def from_types(cls, types: Iterable[JsonType]) -> "ListBag":
        return cls(list(types))

    def add(self, tau: JsonType, count: int = 1) -> None:
        self._items.extend([tau] * count)

    def items(self) -> Iterator[BagItem]:
        return ((tau, 1) for tau in self._items)

    def distinct(self) -> List[JsonType]:
        return list(self._items)

    def counts(self) -> List[int]:
        return [1] * len(self._items)

    @property
    def total(self) -> int:
        return len(self._items)

    @property
    def distinct_count(self) -> int:
        return len(self._items)

    def subset(self, members: Sequence[JsonType]) -> "ListBag":
        return ListBag(list(members))

    def __contains__(self, tau: JsonType) -> bool:
        return tau in self._items


_COUNTED_ENABLED = True


def set_counted_merge(enabled: bool) -> bool:
    """Select the representation :func:`as_bag` builds; returns the old
    setting.  ``False`` restores the seed's duplicate-preserving lists."""
    global _COUNTED_ENABLED
    previous = _COUNTED_ENABLED
    _COUNTED_ENABLED = bool(enabled)
    return previous


def counted_merge_enabled() -> bool:
    return _COUNTED_ENABLED


def as_bag(types: Union[TypeBag, Iterable[JsonType]]) -> TypeBag:
    """Coerce an iterable of types (or an existing bag) to a bag."""
    if isinstance(types, TypeBag):
        return types
    if _COUNTED_ENABLED:
        return CountedBag.from_types(types)
    return ListBag.from_types(types)
