"""The type-similarity relation of Section 5.2 and its accumulator.

Two types are *similar* (``τ1 ≈ τ2``) when:

* either is ``null`` (nulls are similar to anything);
* both are the same primitive type; or
* both are like-kinded complex types whose nested types at every
  *shared* key (or array position) are similar.

Similarity is reflexive and symmetric but **not** transitive.  It is,
however, *subsumptive*: if ``τ1 ≈ τ2`` and ``union(τ1, τ2) ≈ τ3`` then
both ``τ1 ≈ τ3`` and ``τ2 ≈ τ3``.  This lets a single linear scan check
pairwise similarity for a whole bag of types by accumulating a running
*maximal type* — the union of everything seen so far — and testing each
new type only against the maximal one.  :class:`SimilarityAccumulator`
packages that scan, and merges associatively so JXPLAIN's pass ① can be
a single fold over the data.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, Optional

from repro.jsontypes.types import (
    ArrayType,
    JsonType,
    NULL,
    ObjectType,
    PrimitiveType,
)

#: Entries kept by each of the two memo caches.  Types hash in O(1)
#: (hashes are precomputed at construction), and with interning on the
#: key comparison is a pointer check, so lookups are effectively free.
SIMILARITY_CACHE_SIZE = 1 << 16

_CACHE_ENABLED = True


def set_similarity_cache(enabled: bool) -> bool:
    """Enable/disable the similarity memo caches; returns the old
    setting.  Used by benchmarks to measure the uncached baseline."""
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


def similarity_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the ``similar`` / ``union_types`` caches."""
    similar_info = _similar_cached.cache_info()
    union_info = _union_cached.cache_info()
    return {
        "similar_hits": similar_info.hits,
        "similar_misses": similar_info.misses,
        "union_hits": union_info.hits,
        "union_misses": union_info.misses,
    }


def reset_similarity_cache_stats() -> None:
    """Clear both memo caches (and thereby their hit/miss counters)."""
    _similar_cached.cache_clear()
    _union_cached.cache_clear()


def similar(
    first: JsonType, second: JsonType, max_depth: Optional[int] = None
) -> bool:
    """Decide ``first ≈ second`` per the paper's similarity rule.

    ``max_depth`` bounds how deep the comparison descends: pairs nested
    deeper than the bound are assumed similar.  ``None`` (the default)
    is the paper's literal rule.  Bounding is useful for corpora whose
    kind-mixing lives only at great depth (Wikidata's
    ``datavalue.value`` is a string or an object depending on the
    property's datatype), where the literal rule rules out every
    enclosing collection.

    Results are memoized (including every recursive sub-pair), so
    re-checking the handful of distinct types a real corpus repeats is
    a cache hit rather than a structural walk.
    """
    if first is second:
        return True
    if _CACHE_ENABLED:
        return _similar_cached(first, second, max_depth)
    return _similar_impl(first, second, max_depth)


def _similar_impl(
    first: JsonType, second: JsonType, max_depth: Optional[int]
) -> bool:
    if max_depth is not None and max_depth <= 0:
        return True
    next_depth = None if max_depth is None else max_depth - 1
    if first is NULL or second is NULL:
        return True
    if isinstance(first, PrimitiveType) or isinstance(second, PrimitiveType):
        return first == second
    if isinstance(first, ObjectType) and isinstance(second, ObjectType):
        shared = set(first.keys()) & set(second.keys())
        return all(
            similar(first.field(k), second.field(k), next_depth)
            for k in shared
        )
    if isinstance(first, ArrayType) and isinstance(second, ArrayType):
        overlap = min(len(first), len(second))
        return all(
            similar(first.elements[i], second.elements[i], next_depth)
            for i in range(overlap)
        )
    # Object vs. array: unlike kinds are never similar.
    return False


_similar_cached = lru_cache(maxsize=SIMILARITY_CACHE_SIZE)(_similar_impl)


def union_types(
    first: JsonType, second: JsonType, max_depth: Optional[int] = None
) -> JsonType:
    """The *maximal type* of two similar types.

    Unions the key sets of like-kinded complex types, recursing on
    shared keys; ``null`` is absorbed by the other side.  The result is
    similar to any type that is similar to both inputs (subsumption).

    ``max_depth`` mirrors :func:`similar`'s bound: pairs nested deeper
    than the bound keep the first side as the representative.

    Raises ``ValueError`` when the inputs are dissimilar (within the
    bound), since no maximal type exists in that case.  Results are
    memoized alongside :func:`similar`'s.
    """
    if first is second:
        return first
    if _CACHE_ENABLED:
        return _union_cached(first, second, max_depth)
    return _union_impl(first, second, max_depth)


def _union_impl(
    first: JsonType, second: JsonType, max_depth: Optional[int]
) -> JsonType:
    if max_depth is not None and max_depth <= 0:
        return first
    next_depth = None if max_depth is None else max_depth - 1
    if first is NULL:
        return second
    if second is NULL:
        return first
    if isinstance(first, PrimitiveType) and first == second:
        return first
    if isinstance(first, ObjectType) and isinstance(second, ObjectType):
        fields = dict(first.items())
        for key, value in second.items():
            if key in fields:
                fields[key] = union_types(fields[key], value, next_depth)
            else:
                fields[key] = value
        return ObjectType(fields)
    if isinstance(first, ArrayType) and isinstance(second, ArrayType):
        longer, shorter = (
            (first, second) if len(first) >= len(second) else (second, first)
        )
        elements = [
            union_types(longer.elements[i], shorter.elements[i], next_depth)
            if i < len(shorter)
            else longer.elements[i]
            for i in range(len(longer))
        ]
        return ArrayType(elements)
    raise ValueError(f"cannot union dissimilar types {first!r} and {second!r}")


_union_cached = lru_cache(maxsize=SIMILARITY_CACHE_SIZE)(_union_impl)


def all_pairwise_similar(types: Iterable[JsonType]) -> bool:
    """Check pairwise similarity for a whole bag via one linear scan."""
    acc = SimilarityAccumulator()
    for tau in types:
        acc.add(tau)
        if not acc.all_similar:
            return False
    return acc.all_similar


class SimilarityAccumulator:
    """Streaming pairwise-similarity check with a running maximal type.

    Usage::

        acc = SimilarityAccumulator()
        for tau in bag:
            acc.add(tau)
        acc.all_similar   # were all pairs similar?
        acc.maximal       # the union of every type seen (if similar)

    Accumulators form a commutative monoid under :meth:`merge`, so a
    partitioned dataset can build one per partition and combine them.
    """

    __slots__ = ("maximal", "all_similar", "count", "max_depth")

    def __init__(self, max_depth: Optional[int] = None) -> None:
        self.maximal: Optional[JsonType] = None
        self.all_similar: bool = True
        self.count: int = 0
        self.max_depth = max_depth

    def add(self, tau: JsonType, count: int = 1) -> None:
        """Fold ``count`` identical instances of one type in.

        Exactly equivalent to ``count`` sequential calls: after the
        first fold of ``tau`` the running maximal already subsumes it,
        so repeats only move :attr:`count` — which is why the weighted
        form preserves byte-identical serialization with the
        per-record form.
        """
        self.count += count
        if not self.all_similar:
            return
        if self.maximal is None:
            self.maximal = tau
            return
        if similar(self.maximal, tau, self.max_depth):
            self.maximal = union_types(self.maximal, tau, self.max_depth)
        else:
            self.all_similar = False
            self.maximal = None

    def merge(self, other: "SimilarityAccumulator") -> "SimilarityAccumulator":
        """Combine two accumulators (associative, commutative)."""
        result = SimilarityAccumulator(self.max_depth)
        result.count = self.count + other.count
        if not (self.all_similar and other.all_similar):
            result.all_similar = False
            return result
        if self.maximal is None:
            result.maximal = other.maximal
            return result
        if other.maximal is None:
            result.maximal = self.maximal
            return result
        if similar(self.maximal, other.maximal, self.max_depth):
            result.maximal = union_types(
                self.maximal, other.maximal, self.max_depth
            )
        else:
            result.all_similar = False
        return result

    def copy(self) -> "SimilarityAccumulator":
        dup = SimilarityAccumulator(self.max_depth)
        dup.maximal = self.maximal
        dup.all_similar = self.all_similar
        dup.count = self.count
        return dup
