"""Programmatic reproduction runner: ``python -m repro.experiments``.

The pytest benches under ``benchmarks/`` are the canonical, asserted
reproduction; this module exposes the same experiments as a library
API and a small CLI for users who want the tables without a test
harness::

    python -m repro.experiments --experiment table1 --datasets pharma synapse
    python -m repro.experiments --experiment all --scale 0.5 --output report.txt

Each experiment function returns the formatted table text; ``run_all``
concatenates every table and figure into one report.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.datasets import make_dataset
from repro.discovery import (
    Jxplain,
    JxplainNaive,
    JxplainPipeline,
    KReduce,
    LReduce,
)
from repro.discovery.stat_tree import StatTree, entropy_profile
from repro.io.sampling import uniform_sample
from repro.jsontypes.types import type_of
from repro.metrics.conciseness import (
    ConcisenessRow,
    count_entities,
    format_conciseness_table,
)
from repro.metrics.entity_accuracy import (
    evaluate_entity_detection,
    format_entity_table,
)
from repro.metrics.recall import format_sweep_table, run_sweep

#: Default record counts (scaled by ``--scale``).
DEFAULT_SIZES: Dict[str, int] = {
    "nyt": 800,
    "synapse": 1000,
    "twitter": 600,
    "github": 1000,
    "pharma": 800,
    "wikidata": 200,
    "yelp-merged": 1200,
    "yelp-business": 800,
    "yelp-checkin": 800,
    "yelp-photos": 800,
    "yelp-review": 800,
    "yelp-tip": 800,
    "yelp-user": 800,
}

SWEEP_DATASETS = [name for name in DEFAULT_SIZES if name != "wikidata"]

FRACTIONS = (0.05, 0.10, 0.50, 0.90)
TRIALS = 2


def _records(dataset: str, scale: float, seed: int = 0) -> list:
    size = max(30, int(DEFAULT_SIZES[dataset] * scale))
    return make_dataset(dataset).generate(size, seed=seed)


def _sweep(dataset: str, scale: float):
    discoverers = [KReduce(), Jxplain(), JxplainNaive(), LReduce()]
    return run_sweep(
        dataset,
        _records(dataset, scale),
        discoverers,
        fractions=FRACTIONS,
        trials=TRIALS,
        seed=13,
    )


def table1_recall(
    datasets: Optional[Sequence[str]] = None, scale: float = 1.0
) -> str:
    """Table 1 — held-out recall per dataset / algorithm / sample."""
    blocks = []
    for dataset in datasets or SWEEP_DATASETS:
        sweep = _sweep(dataset, scale)
        blocks.append(format_sweep_table(sweep, "recall"))
    return "\n\n".join(blocks)


def table2_entropy(
    datasets: Optional[Sequence[str]] = None, scale: float = 1.0
) -> str:
    """Table 2 — schema entropy per dataset / algorithm / sample."""
    blocks = []
    for dataset in datasets or SWEEP_DATASETS:
        sweep = _sweep(dataset, scale)
        blocks.append(format_sweep_table(sweep, "entropy", precision=2))
    return "\n\n".join(blocks)


def table3_entities(
    datasets: Optional[Sequence[str]] = None, scale: float = 1.0
) -> str:
    """Table 3 — entity detection vs ground truth."""
    blocks = []
    for dataset in datasets or ("yelp-merged", "github"):
        labeled = make_dataset(dataset).generate_labeled(
            max(30, int(DEFAULT_SIZES.get(dataset, 800) * scale)), seed=21
        )
        results = evaluate_entity_detection(labeled)
        blocks.append(format_entity_table(results, dataset=dataset))
    return "\n\n".join(blocks)


def table4_conciseness(
    datasets: Optional[Sequence[str]] = None, scale: float = 1.0
) -> str:
    """Table 4 — predicted entity counts at 90% training."""
    rows: List[ConcisenessRow] = []
    for dataset in datasets or SWEEP_DATASETS:
        records = _records(dataset, scale, seed=31)
        row = ConcisenessRow(dataset=dataset)
        for trial in range(TRIALS):
            sample = uniform_sample(records, 0.9, seed=100 + trial)
            counts = count_entities(sample)
            row.l_reduce.append(counts["l-reduce"])
            row.bimax_naive.append(counts["bimax-naive"])
            row.bimax_merge.append(counts["bimax-merge"])
        rows.append(row)
    return format_conciseness_table(rows)


def table5_runtime(
    datasets: Optional[Sequence[str]] = None, scale: float = 1.0
) -> str:
    """Table 5 — runtime by algorithm and training fraction."""
    lines = [
        "dataset".ljust(14)
        + "  "
        + "  ".join(
            f"{int(f * 100)}%: kreduce   jxplain" for f in FRACTIONS
        )
    ]
    for dataset in datasets or SWEEP_DATASETS:
        records = _records(dataset, scale, seed=41)
        cells = [dataset.ljust(14)]
        for fraction in FRACTIONS:
            sample = uniform_sample(records, fraction, seed=7)
            start = time.perf_counter()
            KReduce().discover(sample)
            kreduce_ms = 1000.0 * (time.perf_counter() - start)
            start = time.perf_counter()
            JxplainPipeline().discover(sample)
            jxplain_ms = 1000.0 * (time.perf_counter() - start)
            cells.append(f"{kreduce_ms:9.1f} {jxplain_ms:9.1f}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def figure4_histogram(
    datasets: Optional[Sequence[str]] = None, scale: float = 1.0
) -> str:
    """Figure 4 — key-space entropy histogram across complex paths."""
    datasets = datasets or ("yelp-merged", "yelp-checkin", "pharma", "twitter")
    points = []
    for dataset in datasets:
        records = _records(dataset, scale, seed=51)
        tree = StatTree.from_types([type_of(r) for r in records])
        points.extend(entropy_profile(tree))
    buckets = ((0.0, 0.1), (0.1, 0.5), (0.5, 1.0), (1.0, 2.0), (2.0, 4.0),
               (4.0, float("inf")))
    lines = ["key-space entropy histogram (self-similar complex paths)"]
    for low, high in buckets:
        count = sum(1 for p in points if low <= p.entropy < high)
        label = f"[{low:.1f}, {'inf' if high == float('inf') else f'{high:.1f}'})"
        lines.append(f"{label:>12}  {'#' * min(count, 60)} {count}")
    return "\n".join(lines)


EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "table1": table1_recall,
    "table2": table2_entropy,
    "table3": table3_entities,
    "table4": table4_conciseness,
    "table5": table5_runtime,
    "figure4": figure4_histogram,
}


def run_all(
    datasets: Optional[Sequence[str]] = None, scale: float = 1.0
) -> str:
    """Every experiment, concatenated into one report."""
    sections = []
    for name, runner in EXPERIMENTS.items():
        sections.append(f"=== {name} ===")
        sections.append(runner(datasets, scale))
        sections.append("")
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "--experiment",
        default="all",
        choices=sorted(EXPERIMENTS) + ["all"],
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="restrict to these datasets (default: the paper's set)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply the default record counts",
    )
    parser.add_argument(
        "--output", default=None, help="write the report to this file"
    )
    args = parser.parse_args(argv)
    if args.experiment == "all":
        report = run_all(args.datasets, args.scale)
    else:
        report = EXPERIMENTS[args.experiment](args.datasets, args.scale)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote report to {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
