"""Greedy schema repair and the §7.5 edit-count upper bound.

Section 7.5 devises "a greedy algorithm to obtain an upper bound of the
number of schema edits needed to achieve 100% recall".  This module
realizes it constructively: :func:`repair_schema` edits a schema just
enough to admit one offending record, counting each edit:

* make a required field optional;
* add a new optional field (with the exact schema of the observed
  value);
* relax an array tuple's length bounds / add trailing positions;
* add a new union branch for an unseen kind;
* recursive versions of all of the above beneath collections.

:func:`edits_to_full_recall` loops repair over every rejected record —
greedy, so an upper bound — and returns both the edited schema (which
is verified to admit everything) and the edit count the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.jsontypes.paths import Path, ROOT, render_path
from repro.jsontypes.types import ArrayType, JsonType, ObjectType
from repro.schema.nodes import (
    ArrayCollection,
    ArrayTuple,
    NEVER,
    ObjectCollection,
    ObjectTuple,
    PrimitiveSchema,
    Schema,
    Union,
    exact_schema,
    union,
)
from repro.validation.validator import _collect_violations


@dataclass
class EditLog:
    """The individual edits applied during a repair."""

    entries: List[str] = field(default_factory=list)

    def note(self, path: Path, action: str) -> None:
        self.entries.append(f"{render_path(path)}: {action}")

    @property
    def count(self) -> int:
        return len(self.entries)

    def extend(self, other: "EditLog") -> None:
        self.entries.extend(other.entries)


def repair_schema(schema: Schema, tau: JsonType) -> Tuple[Schema, EditLog]:
    """Minimally edit ``schema`` so it admits ``tau``.

    Greedy: repairs the closest branch (fewest violations) rather than
    searching all repair plans, hence an upper bound on edits.
    """
    log = EditLog()
    repaired = _repair(schema, tau, ROOT, log)
    return repaired, log


def _repair(schema: Schema, tau: JsonType, path: Path, log: EditLog) -> Schema:
    if schema.admits_type(tau):
        return schema
    if schema is NEVER:
        log.note(path, f"add branch for {tau.kind.value}")
        return exact_schema(tau)
    if isinstance(schema, Union):
        branches = list(schema.branches)
        scored = [
            (len(_collect_violations(branch, tau, path)), index)
            for index, branch in enumerate(branches)
        ]
        _, closest = min(scored)
        branches[closest] = _repair(branches[closest], tau, path, log)
        return union(*branches)
    if isinstance(schema, PrimitiveSchema):
        log.note(path, f"add branch for {tau.kind.value}")
        return union(schema, exact_schema(tau))
    if isinstance(schema, ObjectTuple):
        if not isinstance(tau, ObjectType):
            log.note(path, f"add branch for {tau.kind.value}")
            return union(schema, exact_schema(tau))
        return _repair_object_tuple(schema, tau, path, log)
    if isinstance(schema, ArrayTuple):
        if not isinstance(tau, ArrayType):
            log.note(path, f"add branch for {tau.kind.value}")
            return union(schema, exact_schema(tau))
        return _repair_array_tuple(schema, tau, path, log)
    if isinstance(schema, ArrayCollection):
        if not isinstance(tau, ArrayType):
            log.note(path, f"add branch for {tau.kind.value}")
            return union(schema, exact_schema(tau))
        element = schema.element
        for value in tau.elements:
            element = _repair(element, value, path + (0,), log)
        return ArrayCollection(
            element, max(schema.max_length_seen, len(tau))
        )
    if isinstance(schema, ObjectCollection):
        if not isinstance(tau, ObjectType):
            log.note(path, f"add branch for {tau.kind.value}")
            return union(schema, exact_schema(tau))
        value_schema = schema.value
        for key, value in tau.items():
            value_schema = _repair(value_schema, value, path + (key,), log)
        return ObjectCollection(
            value_schema, schema.domain | tau.key_set()
        )
    raise TypeError(f"not a schema: {schema!r}")


def _repair_object_tuple(
    schema: ObjectTuple, tau: ObjectType, path: Path, log: EditLog
) -> Schema:
    required = dict(schema.required)
    optional = dict(schema.optional)
    present = tau.key_set()
    for key in sorted(schema.required_keys - present):
        log.note(path, f"make field {key!r} optional")
        optional[key] = required.pop(key)
    for key, value in tau.items():
        if key in required:
            required[key] = _repair(required[key], value, path + (key,), log)
        elif key in optional:
            optional[key] = _repair(optional[key], value, path + (key,), log)
        else:
            log.note(path, f"add optional field {key!r}")
            optional[key] = exact_schema(value)
    return ObjectTuple(required, optional)


def _repair_array_tuple(
    schema: ArrayTuple, tau: ArrayType, path: Path, log: EditLog
) -> Schema:
    elements = list(schema.elements)
    min_length = schema.min_length
    if len(tau) < min_length:
        log.note(path, f"lower minimum length to {len(tau)}")
        min_length = len(tau)
    while len(elements) < len(tau):
        position = len(elements)
        log.note(path, f"add optional position {position}")
        elements.append(exact_schema(tau.elements[position]))
    for index, value in enumerate(tau.elements):
        elements[index] = _repair(
            elements[index], value, path + (index,), log
        )
    return ArrayTuple(elements, min_length)


@dataclass
class EditReport:
    """The outcome of :func:`edits_to_full_recall`."""

    schema: Schema
    edit_count: int
    repaired_records: int
    log: EditLog

    @property
    def edits_per_failure(self) -> float:
        if self.repaired_records == 0:
            return 0.0
        return self.edit_count / self.repaired_records


def edits_to_full_recall(
    schema: Schema, test_types: Iterable[JsonType]
) -> EditReport:
    """Greedy upper bound on edits to accept every test type (§7.5).

    Processes rejects in input order, repairing the schema after each;
    later rejects are validated against the already-repaired schema, so
    shared fixes are counted once.
    """
    log = EditLog()
    repaired = 0
    current = schema
    for tau in test_types:
        if current.admits_type(tau):
            continue
        current, record_log = repair_schema(current, tau)
        if not current.admits_type(tau):  # pragma: no cover - invariant
            raise AssertionError("repair failed to admit the record")
        log.extend(record_log)
        repaired += 1
    return EditReport(
        schema=current,
        edit_count=log.count,
        repaired_records=repaired,
        log=log,
    )
