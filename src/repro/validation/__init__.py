"""Validation, iterative refinement, and greedy schema repair."""

from repro.validation.diff import (
    BREAKING_KINDS,
    ChangeKind,
    SchemaChange,
    SchemaDiff,
    diff_schemas,
)
from repro.validation.edits import (
    EditLog,
    EditReport,
    edits_to_full_recall,
    repair_schema,
)
from repro.validation.refine import (
    RefinementResult,
    RefinementRound,
    iterative_refinement,
)
from repro.validation.validator import (
    RecordOutcome,
    ValidationReport,
    Violation,
    explain_rejection,
    first_failures,
    recall_against,
    validate_records,
    validate_type,
)

__all__ = [
    "BREAKING_KINDS",
    "ChangeKind",
    "SchemaChange",
    "SchemaDiff",
    "diff_schemas",
    "EditLog",
    "EditReport",
    "RecordOutcome",
    "RefinementResult",
    "RefinementRound",
    "ValidationReport",
    "Violation",
    "edits_to_full_recall",
    "explain_rejection",
    "first_failures",
    "iterative_refinement",
    "recall_against",
    "repair_schema",
    "validate_records",
    "validate_type",
]
