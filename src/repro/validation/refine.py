"""Iterative sample-validate-augment refinement (Section 4.2).

Multiple passes make JXPLAIN more expensive than single-pass
extractors; the paper's mitigation is to train on a small sample and
iterate:

1. derive a schema from a small sample of the training data;
2. validate the remainder of the training data against it;
3. add the records that failed validation to the sample and repeat.

Entropy-based collection detection is robust even at 1% samples; the
failures the loop mops up are rare optional fields, rare array
lengths, and rare collection-nested types.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.discovery.base import Discoverer
from repro.errors import EmptyInputError
from repro.jsontypes.types import JsonValue, type_of
from repro.schema.nodes import Schema


@dataclass
class RefinementRound:
    """Diagnostics for one iteration of the loop."""

    round_index: int
    sample_size: int
    failures: int
    recall_on_rest: float


@dataclass
class RefinementResult:
    """The refined schema plus per-round diagnostics."""

    schema: Schema
    rounds: List[RefinementRound] = field(default_factory=list)
    converged: bool = False

    @property
    def total_rounds(self) -> int:
        return len(self.rounds)

    @property
    def final_sample_size(self) -> int:
        return self.rounds[-1].sample_size if self.rounds else 0


def iterative_refinement(
    discoverer: Discoverer,
    records: Sequence[JsonValue],
    *,
    initial_fraction: float = 0.01,
    max_rounds: int = 10,
    max_failures_per_round: Optional[int] = None,
    seed: int = 0,
) -> RefinementResult:
    """Run the sample → validate → augment loop to convergence.

    ``max_failures_per_round`` caps how many failing records are folded
    back into the sample each round (None = all of them).  Convergence
    means a round with zero failures on the held-back remainder.
    """
    if not records:
        raise EmptyInputError("iterative_refinement: no input records")
    if not 0.0 < initial_fraction <= 1.0:
        raise ValueError("initial_fraction must be in (0, 1]")
    if max_rounds <= 0:
        raise ValueError("max_rounds must be positive")

    rng = random.Random(seed)
    indices = list(range(len(records)))
    rng.shuffle(indices)
    sample_count = max(1, int(round(initial_fraction * len(records))))
    in_sample = set(indices[:sample_count])

    result = RefinementResult(schema=None)  # type: ignore[arg-type]
    for round_index in range(max_rounds):
        sample = [records[i] for i in sorted(in_sample)]
        schema = discoverer.discover(sample)
        rest = [i for i in range(len(records)) if i not in in_sample]
        failing: List[int] = []
        for i in rest:
            if not schema.admits_type(type_of(records[i])):
                failing.append(i)
        recall = 1.0 if not rest else 1.0 - len(failing) / len(rest)
        result.schema = schema
        result.rounds.append(
            RefinementRound(
                round_index=round_index,
                sample_size=len(in_sample),
                failures=len(failing),
                recall_on_rest=recall,
            )
        )
        if not failing:
            result.converged = True
            break
        if max_failures_per_round is not None:
            failing = failing[:max_failures_per_round]
        in_sample.update(failing)
    return result
